//! Linear Threshold model.
//!
//! Each node `u` draws a threshold `θ_u ~ U[0,1]`; it activates once the
//! total incoming weight from active neighbors reaches `θ_u` (§2). The sum
//! of incoming weights must be ≤ 1.
//!
//! Two samplers are provided:
//!
//! * [`LtModel::simulate`] — the direct threshold process. Thresholds are
//!   drawn lazily, the first time a node receives weight, which is
//!   distributionally identical to drawing them all upfront and touches
//!   only the frontier.
//! * [`LtModel::simulate_live_edge`] — Kempe et al.'s equivalence: each
//!   node pre-selects at most one in-edge (edge `(v,u)` with probability
//!   `w_{v,u}`, none with the remainder); the cascade equals reachability
//!   over selected edges. Used as a cross-check oracle in tests.

use crate::probs::EdgeProbabilities;
use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::Rng;

/// Linear Threshold simulator over a weighted graph.
#[derive(Clone, Copy, Debug)]
pub struct LtModel<'a> {
    graph: &'a DirectedGraph,
    weights: &'a EdgeProbabilities,
}

/// Reusable scratch for LT simulations (epoch-stamped to avoid O(n) clears).
#[derive(Clone, Debug)]
pub struct LtScratch {
    /// Accumulated active in-weight per node.
    acc: Vec<f64>,
    /// Lazily drawn threshold per node.
    theta: Vec<f64>,
    /// Epoch stamps for `acc`/`theta` validity.
    stamp: Vec<u32>,
    /// Active markers.
    active: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
    /// Live-edge choice per node (in-aligned edge position + 1; 0 = none).
    choice: Vec<u32>,
}

impl LtScratch {
    /// Creates scratch for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        LtScratch {
            acc: vec![0.0; n],
            theta: vec![0.0; n],
            stamp: vec![0; n],
            active: vec![0; n],
            epoch: 0,
            queue: Vec::new(),
            choice: vec![0; n],
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.active.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn is_active(&self, u: NodeId) -> bool {
        self.active[u as usize] == self.epoch
    }

    #[inline]
    fn mark_active(&mut self, u: NodeId) {
        self.active[u as usize] = self.epoch;
    }
}

impl<'a> LtModel<'a> {
    /// Binds the model to a graph and in-weights.
    ///
    /// # Panics
    /// Panics (in debug builds) if some node's incoming weights sum to more
    /// than `1 + 1e-9`; call [`EdgeProbabilities::normalize_in_weights`]
    /// first for raw learned weights.
    pub fn new(graph: &'a DirectedGraph, weights: &'a EdgeProbabilities) -> Self {
        debug_assert!(
            weights.max_in_weight_sum(graph) <= 1.0 + 1e-9,
            "LT in-weights must sum to at most 1 per node"
        );
        LtModel { graph, weights }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'a DirectedGraph {
        self.graph
    }

    /// The edge weights.
    pub fn weights(&self) -> &'a EdgeProbabilities {
        self.weights
    }

    /// Allocates scratch space sized for this model's graph.
    pub fn make_scratch(&self) -> LtScratch {
        LtScratch::new(self.graph.num_nodes())
    }

    /// Runs one threshold cascade from `seeds`; returns the number of
    /// active nodes at quiescence (including seeds).
    pub fn simulate(&self, seeds: &[NodeId], rng: &mut Rng, scratch: &mut LtScratch) -> usize {
        scratch.begin();
        let mut count = 0usize;
        for &s in seeds {
            if !scratch.is_active(s) {
                scratch.mark_active(s);
                scratch.queue.push(s);
                count += 1;
            }
        }
        let mut head = 0;
        while head < scratch.queue.len() {
            let v = scratch.queue[head];
            head += 1;
            let range = self.graph.out_range(v);
            let targets = self.graph.out_targets();
            for pos in range {
                let u = targets[pos];
                if scratch.is_active(u) {
                    continue;
                }
                let ui = u as usize;
                if scratch.stamp[ui] != scratch.epoch {
                    scratch.stamp[ui] = scratch.epoch;
                    scratch.acc[ui] = 0.0;
                    // Lazy threshold draw; strictly positive so that nodes
                    // with zero incoming weight never self-activate.
                    scratch.theta[ui] = 1.0 - rng.f64();
                }
                scratch.acc[ui] += self.weights.out(pos);
                if scratch.acc[ui] >= scratch.theta[ui] {
                    scratch.mark_active(u);
                    scratch.queue.push(u);
                    count += 1;
                }
            }
        }
        count
    }

    /// Runs one cascade via the live-edge equivalence; returns the active
    /// count. O(m) per call — intended as a correctness oracle.
    pub fn simulate_live_edge(
        &self,
        seeds: &[NodeId],
        rng: &mut Rng,
        scratch: &mut LtScratch,
    ) -> usize {
        scratch.begin();
        let n = self.graph.num_nodes();
        // Each node selects at most one in-edge.
        for u in 0..n as NodeId {
            let mut pick = 0u32; // 0 = none
            let mut x = rng.f64();
            for pos in self.graph.in_range(u) {
                let w = self.weights.in_(pos);
                if x < w {
                    pick = pos as u32 + 1;
                    break;
                }
                x -= w;
            }
            scratch.choice[u as usize] = pick;
        }
        for &s in seeds {
            scratch.mark_active(s);
        }
        // u activates iff following its chosen-edge chain reaches a seed.
        // `stamp` doubles as "resolved inactive" marker this epoch.
        let mut count = 0usize;
        let mut path: Vec<NodeId> = Vec::new();
        for start in 0..n as NodeId {
            if scratch.is_active(start) {
                continue;
            }
            path.clear();
            let mut cur = start;
            let outcome = loop {
                if scratch.is_active(cur) {
                    break true;
                }
                if scratch.stamp[cur as usize] == scratch.epoch {
                    break false; // known inactive
                }
                scratch.stamp[cur as usize] = scratch.epoch; // visiting
                path.push(cur);
                match scratch.choice[cur as usize] {
                    0 => break false,
                    pick => cur = self.graph.in_sources()[(pick - 1) as usize],
                }
            };
            if outcome {
                for &p in &path {
                    scratch.mark_active(p);
                }
            }
            // Inactive nodes keep stamp == epoch, memoizing the failure.
        }
        for u in 0..n as NodeId {
            if scratch.is_active(u) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;

    #[test]
    fn weight_one_edge_always_propagates() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let p = EdgeProbabilities::uniform(&g, 1.0);
        let model = LtModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(1);
        let mut s = model.make_scratch();
        for _ in 0..20 {
            assert_eq!(model.simulate(&[0], &mut rng, &mut s), 3);
        }
    }

    #[test]
    fn zero_weights_never_propagate() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let p = EdgeProbabilities::uniform(&g, 0.0);
        let model = LtModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(1);
        let mut s = model.make_scratch();
        for _ in 0..20 {
            assert_eq!(model.simulate(&[0], &mut rng, &mut s), 1);
        }
    }

    #[test]
    fn single_edge_rate_matches_weight() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let p = EdgeProbabilities::uniform(&g, 0.4);
        let model = LtModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(5);
        let mut s = model.make_scratch();
        let n = 30_000;
        let total: usize = (0..n).map(|_| model.simulate(&[0], &mut rng, &mut s)).sum();
        let mean = total as f64 / n as f64;
        // P(activate) = P(θ ≤ 0.4) = 0.4, so E = 1.4.
        assert!((mean - 1.4).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn threshold_and_live_edge_agree_in_expectation() {
        // Random small DAG-ish graph with normalized weights.
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (3, 5), (4, 5), (2, 4)])
            .build();
        let mut p = EdgeProbabilities::from_fn(&g, |u, v| ((u + v) % 3 + 1) as f64 * 0.2);
        p.normalize_in_weights(&g);
        let model = LtModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(9);
        let mut s = model.make_scratch();
        let n = 40_000;
        let mut sum_thr = 0usize;
        let mut sum_live = 0usize;
        for _ in 0..n {
            sum_thr += model.simulate(&[0], &mut rng, &mut s);
            sum_live += model.simulate_live_edge(&[0], &mut rng, &mut s);
        }
        let m_thr = sum_thr as f64 / n as f64;
        let m_live = sum_live as f64 / n as f64;
        assert!((m_thr - m_live).abs() < 0.05, "threshold {m_thr} vs live-edge {m_live}");
    }

    #[test]
    fn seeds_are_deduplicated() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let p = EdgeProbabilities::uniform(&g, 0.0);
        let model = LtModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(1);
        let mut s = model.make_scratch();
        assert_eq!(model.simulate(&[0, 0, 0], &mut rng, &mut s), 1);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let p = EdgeProbabilities::uniform(&g, 1.0);
        let model = LtModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(2);
        let mut s = model.make_scratch();
        assert_eq!(model.simulate(&[0], &mut rng, &mut s), 3);
        assert_eq!(model.simulate(&[2], &mut rng, &mut s), 1);
        assert_eq!(model.simulate_live_edge(&[2], &mut rng, &mut s), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// Kempe's equivalence on random weighted digraphs: the direct
        /// threshold process and the live-edge sampler estimate the same
        /// expected spread (they sample the same distribution).
        #[test]
        fn threshold_equals_live_edge_in_expectation(
            edges in proptest::collection::vec((0u32..6, 0u32..6), 1..20),
            seed_node in 0u32..6,
            w_scale in 1u32..4,
        ) {
            let g = GraphBuilder::new(6).edges(edges).build();
            let mut w = EdgeProbabilities::from_fn(&g, |u, v| {
                ((u * 7 + v * 3) % 5 + 1) as f64 * 0.05 * w_scale as f64
            });
            w.normalize_in_weights(&g);
            let model = LtModel::new(&g, &w);
            let mut rng = Rng::seed_from_u64(31);
            let mut s = model.make_scratch();
            let n = 6_000;
            let mut thr = 0usize;
            let mut live = 0usize;
            for _ in 0..n {
                thr += model.simulate(&[seed_node], &mut rng, &mut s);
                live += model.simulate_live_edge(&[seed_node], &mut rng, &mut s);
            }
            let (m_thr, m_live) = (thr as f64 / n as f64, live as f64 / n as f64);
            // Generous tolerance: 6k samples on a ≤6-node graph.
            prop_assert!(
                (m_thr - m_live).abs() < 0.25,
                "threshold {m_thr} vs live-edge {m_live}"
            );
        }
    }
}
