#![warn(missing_docs)]
//! Discrete-time propagation models and Monte-Carlo spread estimation.
//!
//! This crate is the "standard approach" half of the paper (§2): the
//! Independent Cascade (IC) and Linear Threshold (LT) models of Kempe et
//! al., plus the Monte-Carlo machinery used to estimate the expected spread
//! σ_m(S). Computing σ_m exactly is #P-hard for both models, so the
//! estimator samples possible worlds — the very cost the credit
//! distribution model is designed to avoid.
//!
//! * [`probs`] — per-edge influence probabilities/weights aligned to the
//!   CSR arrays of [`cdim_graph::DirectedGraph`];
//! * [`ic`] — Independent Cascade simulation;
//! * [`lt`] — Linear Threshold simulation (threshold form and Kempe's
//!   equivalent live-edge form);
//! * [`mc`] — the (optionally multi-threaded) Monte-Carlo estimator.

pub mod ic;
pub mod lt;
pub mod mc;
pub mod probs;

pub use ic::IcModel;
pub use lt::LtModel;
pub use mc::{McConfig, MonteCarloEstimator};
pub use probs::EdgeProbabilities;
