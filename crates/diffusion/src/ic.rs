//! Independent Cascade model.
//!
//! Each newly active node `v` gets one shot at activating each inactive
//! out-neighbor `u`, succeeding with probability `p_{v,u}` (§2). One
//! simulation is a BFS in which every out-edge is examined exactly once —
//! precisely when its source first activates — so lazily flipping the coin
//! at examination time samples the same possible-world distribution as
//! pre-flipping all edges.

use crate::probs::EdgeProbabilities;
use cdim_graph::traversal::{reachable_count, BfsScratch};
use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::Rng;

/// Independent Cascade simulator over a weighted graph.
#[derive(Clone, Copy, Debug)]
pub struct IcModel<'a> {
    graph: &'a DirectedGraph,
    probs: &'a EdgeProbabilities,
}

impl<'a> IcModel<'a> {
    /// Binds the model to a graph and its edge probabilities.
    pub fn new(graph: &'a DirectedGraph, probs: &'a EdgeProbabilities) -> Self {
        IcModel { graph, probs }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'a DirectedGraph {
        self.graph
    }

    /// The edge probabilities.
    pub fn probs(&self) -> &'a EdgeProbabilities {
        self.probs
    }

    /// Runs one cascade from `seeds`; returns the number of active nodes
    /// at quiescence (including seeds).
    pub fn simulate(&self, seeds: &[NodeId], rng: &mut Rng, scratch: &mut BfsScratch) -> usize {
        let probs = self.probs;
        reachable_count(self.graph, seeds, scratch, |pos| rng.bool(probs.out(pos)))
    }

    /// Allocates scratch space sized for this model's graph.
    pub fn make_scratch(&self) -> BfsScratch {
        BfsScratch::new(self.graph.num_nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;

    #[test]
    fn deterministic_edges_propagate_fully() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let p = EdgeProbabilities::uniform(&g, 1.0);
        let model = IcModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(1);
        let mut scratch = model.make_scratch();
        assert_eq!(model.simulate(&[0], &mut rng, &mut scratch), 4);
    }

    #[test]
    fn zero_probability_blocks_everything() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build();
        let p = EdgeProbabilities::uniform(&g, 0.0);
        let model = IcModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(1);
        let mut scratch = model.make_scratch();
        assert_eq!(model.simulate(&[0], &mut rng, &mut scratch), 1);
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let g = GraphBuilder::new(3).edges([(0, 1)]).build();
        let p = EdgeProbabilities::uniform(&g, 1.0);
        let model = IcModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(1);
        let mut scratch = model.make_scratch();
        assert_eq!(model.simulate(&[], &mut rng, &mut scratch), 0);
    }

    #[test]
    fn single_edge_activation_rate_matches_probability() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let p = EdgeProbabilities::uniform(&g, 0.3);
        let model = IcModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(42);
        let mut scratch = model.make_scratch();
        let n = 20_000;
        let mut total = 0usize;
        for _ in 0..n {
            total += model.simulate(&[0], &mut rng, &mut scratch);
        }
        // E[spread] = 1 + 0.3.
        let mean = total as f64 / n as f64;
        assert!((mean - 1.3).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn two_hop_chain_rate() {
        // 0 -> 1 -> 2 with p = 0.5: E = 1 + 0.5 + 0.25.
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let p = EdgeProbabilities::uniform(&g, 0.5);
        let model = IcModel::new(&g, &p);
        let mut rng = Rng::seed_from_u64(7);
        let mut scratch = model.make_scratch();
        let n = 40_000;
        let total: usize = (0..n).map(|_| model.simulate(&[0], &mut rng, &mut scratch)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.75).abs() < 0.02, "mean = {mean}");
    }
}
