//! Monte-Carlo estimation of expected spread.
//!
//! `σ_m(S) = Σ_X Pr[X]·σ_X(S)` over exponentially many possible worlds
//! (Eq. 1); the standard approach samples worlds until the mean stabilizes.
//! Kempe et al. use 10,000 simulations per evaluation — the cost that makes
//! MC-greedy take tens of hours in Fig 7.
//!
//! Simulations are embarrassingly parallel: the estimator shards them over
//! the shared [`cdim_util::pool`] worker primitives with independently
//! seeded generators, so results are deterministic for a fixed
//! `(base_seed, threads)` pair. Shard 0's generator is seeded with
//! `base_seed` itself, so a single-threaded run reproduces the historical
//! sequential estimates exactly.

use crate::ic::IcModel;
use crate::lt::{LtModel, LtScratch};
use cdim_graph::traversal::BfsScratch;
use cdim_graph::NodeId;
use cdim_util::pool::{parallel_map_shards, Parallelism};
use cdim_util::Rng;

/// A propagation model from which single cascades can be sampled.
pub trait CascadeSampler: Sync {
    /// Per-thread mutable state reused across simulations.
    type Scratch: Send;

    /// Allocates scratch sized for the model's graph.
    fn make_scratch(&self) -> Self::Scratch;

    /// Samples one cascade; returns the final number of active nodes.
    fn sample(&self, seeds: &[NodeId], rng: &mut Rng, scratch: &mut Self::Scratch) -> usize;

    /// Number of nodes in the model's graph (the candidate universe).
    fn num_nodes(&self) -> usize;
}

impl CascadeSampler for IcModel<'_> {
    type Scratch = BfsScratch;

    fn make_scratch(&self) -> BfsScratch {
        IcModel::make_scratch(self)
    }

    fn sample(&self, seeds: &[NodeId], rng: &mut Rng, scratch: &mut BfsScratch) -> usize {
        self.simulate(seeds, rng, scratch)
    }

    fn num_nodes(&self) -> usize {
        self.graph().num_nodes()
    }
}

impl CascadeSampler for LtModel<'_> {
    type Scratch = LtScratch;

    fn make_scratch(&self) -> LtScratch {
        LtModel::make_scratch(self)
    }

    fn sample(&self, seeds: &[NodeId], rng: &mut Rng, scratch: &mut LtScratch) -> usize {
        self.simulate(seeds, rng, scratch)
    }

    fn num_nodes(&self) -> usize {
        self.graph().num_nodes()
    }
}

/// Monte-Carlo configuration.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Number of sampled possible worlds per estimate (paper: 10,000).
    pub simulations: usize,
    /// Worker threads; `0` means use available parallelism.
    pub threads: usize,
    /// Seed from which per-thread generators are derived.
    pub base_seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig { simulations: 10_000, threads: 0, base_seed: 0xC0FFEE }
    }
}

impl McConfig {
    /// A cheaper configuration for tests and examples.
    pub fn quick(simulations: usize) -> Self {
        McConfig { simulations, threads: 1, base_seed: 0xC0FFEE }
    }

    /// The worker-pool view of [`Self::threads`] (`0` = auto).
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::fixed(self.threads)
    }
}

/// The RNG seed of simulation shard `shard`: `base_seed` itself for shard
/// 0 (preserving single-threaded estimates), a golden-ratio-mixed stream
/// for every later shard.
fn shard_seed(base_seed: u64, shard: usize) -> u64 {
    base_seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Reusable spread estimator binding a sampler and a configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloEstimator<M> {
    sampler: M,
    config: McConfig,
}

impl<M: CascadeSampler> MonteCarloEstimator<M> {
    /// Creates an estimator.
    pub fn new(sampler: M, config: McConfig) -> Self {
        MonteCarloEstimator { sampler, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> McConfig {
        self.config
    }

    /// The underlying cascade sampler.
    pub fn sampler(&self) -> &M {
        &self.sampler
    }

    /// Estimates σ(S) by averaging sampled cascade sizes.
    ///
    /// Simulations are sharded over the shared worker pool: shard `s`
    /// runs its deterministic quota with the generator stream
    /// `shard_seed(base_seed, s)` and a thread-local scratch, so the
    /// estimate is a pure function of `(base_seed, threads, seeds)`. One
    /// worker runs inline on the calling thread — the sequential path is
    /// the same code, not a special case.
    pub fn spread(&self, seeds: &[NodeId]) -> f64 {
        if seeds.is_empty() || self.config.simulations == 0 {
            return 0.0;
        }
        let sims = self.config.simulations;
        let sampler = &self.sampler;
        let base_seed = self.config.base_seed;
        let shard_sums = parallel_map_shards(self.config.parallelism(), sims, |shard, range| {
            let mut rng = Rng::seed_from_u64(shard_seed(base_seed, shard));
            let mut scratch = sampler.make_scratch();
            let mut sum = 0u64;
            for _ in range {
                sum += sampler.sample(seeds, &mut rng, &mut scratch) as u64;
            }
            sum
        });
        shard_sums.into_iter().sum::<u64>() as f64 / sims as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probs::EdgeProbabilities;
    use cdim_graph::{DirectedGraph, GraphBuilder};

    fn chain(p: f64) -> (DirectedGraph, EdgeProbabilities) {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let probs = EdgeProbabilities::uniform(&g, p);
        (g, probs)
    }

    #[test]
    fn ic_expected_value_on_chain() {
        let (g, p) = chain(0.5);
        let model = IcModel::new(&g, &p);
        let est = MonteCarloEstimator::new(model, McConfig::quick(40_000));
        let s = est.spread(&[0]);
        assert!((s - 1.75).abs() < 0.02, "spread = {s}");
    }

    #[test]
    fn lt_expected_value_on_chain() {
        let (g, p) = chain(0.5);
        let model = LtModel::new(&g, &p);
        let est = MonteCarloEstimator::new(model, McConfig::quick(40_000));
        let s = est.spread(&[0]);
        assert!((s - 1.75).abs() < 0.02, "spread = {s}");
    }

    #[test]
    fn parallel_matches_serial_in_expectation() {
        let (g, p) = chain(0.7);
        let model = IcModel::new(&g, &p);
        let serial = MonteCarloEstimator::new(model, McConfig::quick(30_000)).spread(&[0]);
        let parallel = MonteCarloEstimator::new(
            model,
            McConfig { simulations: 30_000, threads: 4, base_seed: 7 },
        )
        .spread(&[0]);
        assert!((serial - parallel).abs() < 0.03, "{serial} vs {parallel}");
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads() {
        let (g, p) = chain(0.3);
        let model = IcModel::new(&g, &p);
        let cfg = McConfig { simulations: 5_000, threads: 2, base_seed: 11 };
        let a = MonteCarloEstimator::new(model, cfg).spread(&[0]);
        let b = MonteCarloEstimator::new(model, cfg).spread(&[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_matches_hand_rolled_sequential_loop() {
        // Shard 0 is seeded with base_seed itself, so one worker must
        // reproduce the plain sequential estimate bit-for-bit.
        let (g, p) = chain(0.4);
        let model = IcModel::new(&g, &p);
        let cfg = McConfig { simulations: 500, threads: 1, base_seed: 42 };
        let est = MonteCarloEstimator::new(model, cfg).spread(&[0]);
        let mut rng = Rng::seed_from_u64(42);
        let mut scratch = IcModel::make_scratch(&model);
        let total: u64 =
            (0..500).map(|_| model.simulate(&[0], &mut rng, &mut scratch) as u64).sum();
        assert_eq!(est, total as f64 / 500.0);
    }

    #[test]
    fn more_threads_than_simulations_is_fine() {
        let (g, p) = chain(1.0);
        let model = IcModel::new(&g, &p);
        let cfg = McConfig { simulations: 3, threads: 16, base_seed: 1 };
        let s = MonteCarloEstimator::new(model, cfg).spread(&[0]);
        assert_eq!(s, 3.0); // p = 1 chain of 3 nodes always fully activates
    }

    #[test]
    fn empty_seeds_give_zero() {
        let (g, p) = chain(1.0);
        let model = IcModel::new(&g, &p);
        let est = MonteCarloEstimator::new(model, McConfig::quick(10));
        assert_eq!(est.spread(&[]), 0.0);
    }

    #[test]
    fn monotone_in_seed_set() {
        let (g, p) = chain(0.5);
        let model = IcModel::new(&g, &p);
        let est = MonteCarloEstimator::new(model, McConfig::quick(20_000));
        let s1 = est.spread(&[0]);
        let s2 = est.spread(&[0, 2]);
        assert!(s2 > s1, "{s2} should exceed {s1}");
    }
}
