//! Edge probability overlays.
//!
//! Probabilities are stored twice, aligned to both CSR directions of the
//! graph: forward simulation (IC) reads out-aligned values contiguously,
//! while in-degree-based models (LT weight sums, weighted cascade) read
//! in-aligned values contiguously. The two views always describe the same
//! assignment.

use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::HeapSize;

/// Per-edge probabilities (IC) or weights (LT) for a fixed graph.
///
/// ```
/// use cdim_diffusion::EdgeProbabilities;
/// use cdim_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
/// let p = EdgeProbabilities::from_fn(&g, |v, _u| if v == 0 { 0.8 } else { 0.4 });
/// assert_eq!(p.get(&g, 0, 2), Some(0.8));
/// assert_eq!(p.get(&g, 2, 0), None);           // absent edge
/// assert!((p.in_weight_sum(&g, 2) - 1.2).abs() < 1e-12);
///
/// // Rescale so the graph is a valid LT instance (in-sums ≤ 1).
/// let mut lt = p.clone();
/// lt.normalize_in_weights(&g);
/// assert!(lt.max_in_weight_sum(&g) <= 1.0 + 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeProbabilities {
    out_aligned: Vec<f64>,
    in_aligned: Vec<f64>,
}

impl EdgeProbabilities {
    /// Builds an overlay by evaluating `prob(u, v)` for every edge.
    ///
    /// Values are clamped into `[0, 1]`.
    pub fn from_fn(graph: &DirectedGraph, mut prob: impl FnMut(NodeId, NodeId) -> f64) -> Self {
        let m = graph.num_edges();
        let mut out_aligned = vec![0.0; m];
        for u in graph.nodes() {
            let range = graph.out_range(u);
            let targets = graph.out_targets();
            for pos in range {
                out_aligned[pos] = prob(u, targets[pos]).clamp(0.0, 1.0);
            }
        }
        Self::from_out_aligned(graph, out_aligned)
    }

    /// Builds an overlay from values already aligned with
    /// [`DirectedGraph::out_targets`].
    ///
    /// # Panics
    /// Panics if the length differs from the edge count.
    pub fn from_out_aligned(graph: &DirectedGraph, out_aligned: Vec<f64>) -> Self {
        assert_eq!(out_aligned.len(), graph.num_edges(), "overlay length mismatch");
        let mut in_aligned = vec![0.0; out_aligned.len()];
        for (out_pos, &p) in out_aligned.iter().enumerate() {
            in_aligned[graph.out_pos_to_in_pos(out_pos)] = p;
        }
        EdgeProbabilities { out_aligned, in_aligned }
    }

    /// Constant probability on every edge (the UN method uses `0.01`).
    pub fn uniform(graph: &DirectedGraph, p: f64) -> Self {
        Self::from_out_aligned(graph, vec![p.clamp(0.0, 1.0); graph.num_edges()])
    }

    /// Probability of the edge at an out-aligned position.
    #[inline]
    pub fn out(&self, out_pos: usize) -> f64 {
        self.out_aligned[out_pos]
    }

    /// Probability of the edge at an in-aligned position.
    #[inline]
    pub fn in_(&self, in_pos: usize) -> f64 {
        self.in_aligned[in_pos]
    }

    /// Out-aligned view (parallel to `graph.out_targets()`).
    #[inline]
    pub fn out_view(&self) -> &[f64] {
        &self.out_aligned
    }

    /// In-aligned view (parallel to `graph.in_sources()`).
    #[inline]
    pub fn in_view(&self) -> &[f64] {
        &self.in_aligned
    }

    /// Probability of edge `(u, v)`, or `None` if the edge is absent.
    pub fn get(&self, graph: &DirectedGraph, u: NodeId, v: NodeId) -> Option<f64> {
        graph.out_edge_position(u, v).map(|pos| self.out_aligned[pos])
    }

    /// Sum of incoming weights of `u` (must be ≤ 1 for a valid LT instance).
    pub fn in_weight_sum(&self, graph: &DirectedGraph, u: NodeId) -> f64 {
        graph.in_range(u).map(|pos| self.in_aligned[pos]).sum()
    }

    /// Largest incoming weight sum over all nodes.
    pub fn max_in_weight_sum(&self, graph: &DirectedGraph) -> f64 {
        graph.nodes().map(|u| self.in_weight_sum(graph, u)).fold(0.0, f64::max)
    }

    /// Rescales each node's incoming weights so they sum to at most 1
    /// (nodes already at or below 1 are untouched). Returns the number of
    /// nodes that needed rescaling.
    pub fn normalize_in_weights(&mut self, graph: &DirectedGraph) -> usize {
        let mut rescaled = 0;
        for u in graph.nodes() {
            let sum = self.in_weight_sum(graph, u);
            if sum > 1.0 {
                rescaled += 1;
                for pos in graph.in_range(u) {
                    self.in_aligned[pos] /= sum;
                }
            }
        }
        // Rebuild the out view from the adjusted in view.
        for u in graph.nodes() {
            for out_pos in graph.out_range(u) {
                let in_pos = graph.out_pos_to_in_pos(out_pos);
                self.out_aligned[out_pos] = self.in_aligned[in_pos];
            }
        }
        rescaled
    }
}

impl HeapSize for EdgeProbabilities {
    fn heap_bytes(&self) -> usize {
        self.out_aligned.heap_bytes() + self.in_aligned.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;

    fn diamond() -> DirectedGraph {
        GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build()
    }

    #[test]
    fn from_fn_assigns_by_endpoint() {
        let g = diamond();
        let p = EdgeProbabilities::from_fn(&g, |u, v| (u as f64 + v as f64) / 10.0);
        assert_eq!(p.get(&g, 0, 1), Some(0.1));
        assert_eq!(p.get(&g, 2, 3), Some(0.5));
        assert_eq!(p.get(&g, 3, 0), None);
    }

    #[test]
    fn views_agree() {
        let g = diamond();
        let p = EdgeProbabilities::from_fn(&g, |u, v| (u * 4 + v) as f64 / 16.0);
        for u in g.nodes() {
            for (k, &v) in g.out_neighbors(u).iter().enumerate() {
                let out_pos = g.out_range(u).start + k;
                let in_pos = g.out_pos_to_in_pos(out_pos);
                assert_eq!(p.out(out_pos), p.in_(in_pos), "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn clamps_probabilities() {
        let g = diamond();
        let p = EdgeProbabilities::from_fn(&g, |_, _| 7.0);
        assert!(p.out_view().iter().all(|&x| x == 1.0));
        let q = EdgeProbabilities::from_fn(&g, |_, _| -3.0);
        assert!(q.out_view().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn in_weight_sums() {
        let g = diamond();
        let p = EdgeProbabilities::uniform(&g, 0.6);
        assert!((p.in_weight_sum(&g, 3) - 1.2).abs() < 1e-12);
        assert!((p.max_in_weight_sum(&g) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn normalization_caps_at_one() {
        let g = diamond();
        let mut p = EdgeProbabilities::uniform(&g, 0.8);
        let rescaled = p.normalize_in_weights(&g);
        assert_eq!(rescaled, 1); // only node 3 exceeded 1
        assert!((p.in_weight_sum(&g, 3) - 1.0).abs() < 1e-12);
        // Node 1 was fine and untouched.
        assert!((p.in_weight_sum(&g, 1) - 0.8).abs() < 1e-12);
        // Views still agree after normalization.
        assert_eq!(p.get(&g, 1, 3), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        let g = diamond();
        let _ = EdgeProbabilities::from_out_aligned(&g, vec![0.5; 3]);
    }
}
