//! Prometheus text exposition (format version 0.0.4).
//!
//! Counters and gauges render as plain samples; histograms render as
//! summaries (`{quantile="0.5|0.9|0.99"}` samples plus `_sum`/`_count`);
//! info metrics render as a `gauge` fixed at 1 carrying their text as a
//! label value.

use std::fmt::Write as _;

use crate::registry::RegistryDump;

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Format an f64 the way Prometheus expects (plain decimal, `NaN`/`+Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render a registry dump as Prometheus exposition text.
pub fn render_prometheus(dump: &RegistryDump) -> String {
    let mut out = String::new();
    for (name, value) in &dump.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &dump.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_value(*value));
    }
    for (name, s) in &dump.histograms {
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", fmt_value(s.p50));
        let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", fmt_value(s.p90));
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", fmt_value(s.p99));
        let _ = writeln!(out, "{name}_sum {}", fmt_value(s.sum));
        let _ = writeln!(out, "{name}_count {}", s.count);
    }
    for (name, label, value) in &dump.infos {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{{{label}=\"{}\"}} 1", escape_label(value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn renders_all_metric_kinds() {
        let r = MetricsRegistry::new();
        r.counter("cdim_x_total").add(7);
        r.gauge("cdim_g").set(1.5);
        let h = r.histogram("cdim_h_seconds");
        h.observe(0.25);
        r.info("cdim_last_reason", "reason").set("time \"regression\"");
        let text = render_prometheus(&r.dump());
        assert!(text.contains("# TYPE cdim_x_total counter\ncdim_x_total 7\n"));
        assert!(text.contains("# TYPE cdim_g gauge\ncdim_g 1.5\n"));
        assert!(text.contains("# TYPE cdim_h_seconds summary\n"));
        assert!(text.contains("cdim_h_seconds{quantile=\"0.5\"} 0.25\n"));
        assert!(text.contains("cdim_h_seconds_count 1\n"));
        assert!(text.contains("cdim_last_reason{reason=\"time \\\"regression\\\"\"} 1\n"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        let r = MetricsRegistry::new();
        r.counter("a_total").inc();
        r.histogram("b_seconds").observe(1.0);
        let text = render_prometheus(&r.dump());
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(m, v)| !m.is_empty() && v.parse::<f64>().is_ok()),
                "unparseable line: {line:?}"
            );
        }
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
    }
}
