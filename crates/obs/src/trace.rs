//! Request-scoped tracing: a lock-free span flight recorder.
//!
//! The metrics layer answers "how fast is the system on average"; this
//! module answers "where did *this* request's time go". Subsystems record
//! [`ActiveSpan`]s — (trace id, span id, parent, static stage name,
//! monotonic start/end ns, up to two integer key/values) — into a
//! fixed-capacity sharded ring buffer that overwrites the oldest entries
//! (a **flight recorder**: the last N spans are always available, nothing
//! is ever blocked on a reader). On top sits a **slow-query log**: when a
//! root span completes over the configured threshold, its whole trace is
//! captured into a small worst-N ring.
//!
//! Design constraints, in order:
//!
//! * **Zero allocation and no locks on the hot path.** A completed span
//!   is eight relaxed atomic stores into a pre-allocated slot plus one
//!   claim CAS; a sampled-out span is nothing at all. Stage names and
//!   key names are interned once at subsystem construction into
//!   [`Stage`] handles (a `u32`), mirroring how metrics handles are
//!   resolved once and then used forever.
//! * **Readers never stall writers.** Slots are seqlock-versioned: the
//!   writer claims a slot by CAS-ing its sequence word to an odd value,
//!   publishes with the next even value, and a reader discards any slot
//!   whose sequence changed while it was being read. Everything is
//!   `AtomicU64`; there is no `unsafe`.
//! * **Bounded memory.** The default recorder is 16 shards × 1024 slots
//!   × 64 bytes = 1 MiB, plus a 32-entry slow log.
//!
//! Sampling is a global "record every Nth trace" knob (`0` disables
//! tracing entirely, `1` records every trace). Explicitly constructed
//! tracers default to `1`; the [process-global recorder](Tracer::global)
//! defaults to 1 in 8 traces, keeping always-on tracing under a percent
//! of serving throughput (the dominant hot-path cost is monotonic clock
//! reads, so the sampled-out path never touches the clock).

use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use cdim_util::monotonic_ns;

/// Number of ring shards in the process-global recorder.
const DEFAULT_SHARDS: usize = 16;
/// Slots per shard in the process-global recorder (power of two).
const DEFAULT_SLOTS_PER_SHARD: usize = 1024;
/// Worst-N capacity of the slow-query log.
const SLOWLOG_CAP: usize = 32;
/// Default slow-trace threshold: 10 ms end-to-end.
const DEFAULT_SLOW_THRESHOLD_NS: u64 = 10_000_000;
/// Maximum key/value pairs a span can carry.
const MAX_KV: usize = 2;

/// An interned static stage name, resolved once via [`Tracer::stage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stage(u32);

/// Propagated trace identity: which trace a new span belongs to and which
/// span is its parent. `Copy` so it can ride through queues for free.
///
/// A context with trace id `0` is *unsampled*: every operation on it is a
/// no-op, which is how the sampling knob keeps the disabled cost to a
/// couple of atomic reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    trace_id: u64,
    parent_span: u32,
}

impl TraceCtx {
    /// The context that records nothing.
    pub fn unsampled() -> TraceCtx {
        TraceCtx { trace_id: 0, parent_span: 0 }
    }

    /// Whether spans opened under this context will be recorded.
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }

    /// The trace id (`0` when unsampled).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }
}

/// An open span: identity plus start time, waiting for [`Tracer::close`].
///
/// `Copy`, 48 bytes, no heap — an `ActiveSpan` can be stashed in a
/// pending-response slot or an outbound frame and closed when the bytes
/// actually hit the wire.
#[derive(Clone, Copy, Debug)]
pub struct ActiveSpan {
    trace_id: u64,
    span_id: u32,
    parent: u32,
    stage: Stage,
    start_ns: u64,
    keys: [u16; MAX_KV],
    vals: [u64; MAX_KV],
    nkv: u8,
}

impl ActiveSpan {
    fn inert() -> ActiveSpan {
        ActiveSpan {
            trace_id: 0,
            span_id: 0,
            parent: 0,
            stage: Stage(0),
            start_ns: 0,
            keys: [0; MAX_KV],
            vals: [0; MAX_KV],
            nkv: 0,
        }
    }

    /// Whether this span will actually be recorded on close.
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }

    /// The context for children of this span.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, parent_span: self.span_id }
    }

    /// The start timestamp this span was opened at (monotonic ns).
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Attaches an integer key/value to the span (at most two; extras are
    /// silently dropped). Keys are interned [`Stage`] handles.
    pub fn kv(&mut self, key: Stage, value: u64) {
        let n = self.nkv as usize;
        if self.trace_id != 0 && n < MAX_KV {
            // Key 0 means "absent" in the packed slot word, so shift by 1.
            self.keys[n] = (key.0 + 1).min(u16::MAX as u32) as u16;
            self.vals[n] = value;
            self.nkv += 1;
        }
    }
}

/// One completed span as read back out of the recorder.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanDump {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span within the recorder.
    pub span_id: u32,
    /// Parent span id, `0` for a root span.
    pub parent_id: u32,
    /// Interned stage name (e.g. `serve.decode`).
    pub stage: String,
    /// Monotonic start, nanoseconds since process trace epoch.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since process trace epoch.
    pub end_ns: u64,
    /// Attached key/value payload.
    pub kv: Vec<(String, u64)>,
}

impl SpanDump {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A complete slow trace captured by the slow-query log.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowTraceDump {
    /// End-to-end duration of the root span, nanoseconds.
    pub duration_ns: u64,
    /// Every span of the trace, sorted by start time.
    pub spans: Vec<SpanDump>,
}

/// Everything op 7 returns: recent spans plus the slow-query log.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDump {
    /// All complete spans currently in the flight recorder, sorted by
    /// start time.
    pub spans: Vec<SpanDump>,
    /// Worst complete traces over the slow threshold, worst first.
    pub slow: Vec<SlowTraceDump>,
}

/// One seqlock slot: sequence word + seven payload words.
///
/// Layout: `[seq, trace_id, span|parent<<32, stage|key0<<32|key1<<48,
/// start_ns, end_ns, val0, val1]`. A sequence of `0` is "never written",
/// odd is "write in progress", even is "slot holds generation (seq-2)/2".
struct Slot {
    words: [AtomicU64; 8],
}

impl Slot {
    fn new() -> Slot {
        Slot { words: Default::default() }
    }
}

/// One ring shard: a monotonically claimed cursor over a slot array.
struct Shard {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl Shard {
    fn new(slots: usize) -> Shard {
        Shard { cursor: AtomicU64::new(0), slots: (0..slots).map(|_| Slot::new()).collect() }
    }
}

/// The flight recorder. See the [module docs](self) for the design.
pub struct Tracer {
    shards: Vec<Shard>,
    /// Interned stage / kv-key names, indexed by `Stage.0`.
    stages: Mutex<Vec<&'static str>>,
    /// Record every Nth trace; 0 disables tracing.
    sampling: AtomicU32,
    /// Root spans at least this long are captured into the slow log.
    slow_threshold_ns: AtomicU64,
    trace_counter: AtomicU64,
    span_counter: AtomicU32,
    slowlog: Mutex<Vec<SlowTraceDump>>,
}

impl Tracer {
    /// A recorder with the default capacity (16 shards × 1024 slots).
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_SHARDS, DEFAULT_SLOTS_PER_SHARD)
    }

    /// A recorder with explicit geometry (shards × slots each); slot
    /// counts are rounded up to a power of two.
    pub fn with_capacity(shards: usize, slots_per_shard: usize) -> Tracer {
        let slots = slots_per_shard.max(1).next_power_of_two();
        Tracer {
            shards: (0..shards.max(1)).map(|_| Shard::new(slots)).collect(),
            stages: Mutex::new(Vec::new()),
            sampling: AtomicU32::new(1),
            slow_threshold_ns: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS),
            trace_counter: AtomicU64::new(0),
            span_counter: AtomicU32::new(0),
            slowlog: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide recorder every subsystem records into (mirrors
    /// [`crate::MetricsRegistry::global`]).
    ///
    /// Unlike explicitly constructed tracers (which record every trace),
    /// the global recorder starts at
    /// [`DEFAULT_GLOBAL_SAMPLING`](Tracer::DEFAULT_GLOBAL_SAMPLING) —
    /// 1 in 8 traces — so always-on production tracing costs a fraction
    /// of a percent of serving throughput. `cdim serve --trace-sample 1`
    /// (or [`Tracer::set_sampling`]) restores trace-everything.
    pub fn global() -> Arc<Tracer> {
        static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            let tracer = Tracer::new();
            tracer.set_sampling(Tracer::DEFAULT_GLOBAL_SAMPLING);
            Arc::new(tracer)
        }))
    }

    /// Default sampling rate of the [global](Tracer::global) recorder:
    /// record 1 in 8 traces.
    pub const DEFAULT_GLOBAL_SAMPLING: u32 = 8;

    /// Total slot capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Interns a static stage (or kv-key) name, returning the handle to
    /// record with. Idempotent; call once at subsystem construction.
    pub fn stage(&self, name: &'static str) -> Stage {
        let mut stages = self.stages.lock().expect("stage table poisoned");
        if let Some(idx) = stages.iter().position(|s| *s == name) {
            return Stage(idx as u32);
        }
        stages.push(name);
        Stage((stages.len() - 1) as u32)
    }

    /// Sets the sampling rate: record 1 in `every` traces (the trace
    /// counter is hashed before the modulus, so periodic workloads
    /// cannot phase-lock with the sampling pattern); 0 disables.
    pub fn set_sampling(&self, every: u32) {
        self.sampling.store(every, Ordering::Relaxed);
    }

    /// Current sampling rate.
    pub fn sampling(&self) -> u32 {
        self.sampling.load(Ordering::Relaxed)
    }

    /// Sets the slow-query threshold (root spans at least this long are
    /// captured whole into the slow log).
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.slow_threshold_ns.store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Nanoseconds on the shared trace timebase.
    pub fn now_ns(&self) -> u64 {
        monotonic_ns()
    }

    /// Starts a new trace, or returns an unsampled context according to
    /// the sampling rate. Cost when sampled out: two atomic ops.
    pub fn begin_trace(&self) -> TraceCtx {
        let every = self.sampling.load(Ordering::Relaxed);
        if every == 0 {
            return TraceCtx::unsampled();
        }
        let n = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        // Fibonacci-hash the counter before the modulus: a strictly
        // periodic arrival pattern (e.g. the accept/request alternation
        // of one-query-per-connection clients) would otherwise
        // phase-lock against the sampling period and starve an entire
        // trace kind. Hashing keeps the rate at 1-in-`every` while
        // decorrelating it from the arrival order; trace 0 (hash 0) is
        // always sampled, so a fresh server traces its first request.
        let mixed = n.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        if !mixed.is_multiple_of(every as u64) {
            return TraceCtx::unsampled();
        }
        TraceCtx { trace_id: n + 1, parent_span: 0 }
    }

    /// Opens a span starting now. Sampled-out contexts return an inert
    /// span without touching the clock — on virtualized hosts a monotonic
    /// read is the single most expensive step of recording a span, so the
    /// unsampled path must not pay it.
    pub fn open(&self, ctx: TraceCtx, stage: Stage) -> ActiveSpan {
        if !ctx.is_sampled() {
            return ActiveSpan::inert();
        }
        self.open_at(ctx, stage, monotonic_ns())
    }

    /// Opens a span with an explicit start timestamp (for spans whose
    /// beginning was observed before the tracer was consulted).
    pub fn open_at(&self, ctx: TraceCtx, stage: Stage, start_ns: u64) -> ActiveSpan {
        if !ctx.is_sampled() {
            return ActiveSpan::inert();
        }
        let raw = self.span_counter.fetch_add(1, Ordering::Relaxed);
        ActiveSpan {
            trace_id: ctx.trace_id,
            // Span id 0 is reserved for "no parent"; ids restart at 1 on
            // the (astronomically rare) u32 wrap.
            span_id: raw.wrapping_add(1).max(1),
            parent: ctx.parent_span,
            stage,
            start_ns,
            keys: [0; MAX_KV],
            vals: [0; MAX_KV],
            nkv: 0,
        }
    }

    /// Closes a span now, recording it into the ring. Inert spans return
    /// before the clock is read (see [`Tracer::open`]).
    pub fn close(&self, span: ActiveSpan) {
        if span.trace_id == 0 {
            return;
        }
        self.close_at(span, monotonic_ns());
    }

    /// Closes a span with an explicit end timestamp. Closing a *root*
    /// span checks the slow threshold and, when crossed, captures the
    /// whole trace into the slow log (off the hot path by construction —
    /// slow traces are rare).
    pub fn close_at(&self, span: ActiveSpan, end_ns: u64) {
        if span.trace_id == 0 {
            return;
        }
        self.write_slot(&span, end_ns);
        if span.parent == 0 {
            let duration = end_ns.saturating_sub(span.start_ns);
            if duration >= self.slow_threshold_ns.load(Ordering::Relaxed) {
                self.capture_slow(span.trace_id, duration);
            }
        }
    }

    /// Records a complete span post-hoc (both endpoints already known),
    /// returning its span id (`0` when unsampled). Used for derived
    /// spans such as per-shard scan times.
    pub fn record(&self, ctx: TraceCtx, stage: Stage, start_ns: u64, end_ns: u64) -> u32 {
        let span = self.open_at(ctx, stage, start_ns);
        let id = span.span_id;
        self.close_at(span, end_ns);
        id
    }

    /// The shard the calling thread records into. Threads are assigned
    /// round-robin by a process-wide ordinal, so up to `shards` recording
    /// threads never contend on a cursor.
    fn shard(&self) -> &Shard {
        static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static ORDINAL: usize = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
        }
        let ordinal = ORDINAL.with(|o| *o);
        &self.shards[ordinal % self.shards.len()]
    }

    fn write_slot(&self, span: &ActiveSpan, end_ns: u64) {
        let shard = self.shard();
        let gen = shard.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &shard.slots[(gen as usize) & (shard.slots.len() - 1)];
        let claimed = 2 * gen + 1;
        let seq = &slot.words[0];
        // Claim: advance seq to our odd value, but never regress it — if a
        // wrap-around writer from a later generation got here first, drop
        // this span (it is the oldest data in the ring by definition).
        let mut cur = seq.load(Ordering::Relaxed);
        loop {
            if cur >= claimed {
                return;
            }
            match seq.compare_exchange_weak(cur, claimed, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        let key0 = span.keys[0] as u64;
        let key1 = span.keys[1] as u64;
        slot.words[1].store(span.trace_id, Ordering::Relaxed);
        slot.words[2].store(span.span_id as u64 | (span.parent as u64) << 32, Ordering::Relaxed);
        slot.words[3].store(span.stage.0 as u64 | key0 << 32 | key1 << 48, Ordering::Relaxed);
        slot.words[4].store(span.start_ns, Ordering::Relaxed);
        slot.words[5].store(end_ns, Ordering::Relaxed);
        slot.words[6].store(span.vals[0], Ordering::Relaxed);
        slot.words[7].store(span.vals[1], Ordering::Relaxed);
        // Publish; if the CAS fails a later generation claimed the slot
        // mid-write and owns it now — abandon ours.
        let _ = seq.compare_exchange(claimed, claimed + 1, Ordering::Release, Ordering::Relaxed);
    }

    /// Reads one slot under the seqlock protocol. Returns `None` for
    /// empty slots and slots that changed while being read.
    fn read_slot(&self, slot: &Slot, names: &[&'static str]) -> Option<SpanDump> {
        let seq = &slot.words[0];
        let before = seq.load(Ordering::Acquire);
        if before == 0 || before % 2 == 1 {
            return None;
        }
        let trace_id = slot.words[1].load(Ordering::Relaxed);
        let ids = slot.words[2].load(Ordering::Relaxed);
        let stage_word = slot.words[3].load(Ordering::Relaxed);
        let start_ns = slot.words[4].load(Ordering::Relaxed);
        let end_ns = slot.words[5].load(Ordering::Relaxed);
        let vals = [slot.words[6].load(Ordering::Relaxed), slot.words[7].load(Ordering::Relaxed)];
        fence(Ordering::Acquire);
        if seq.load(Ordering::Relaxed) != before {
            return None;
        }
        let stage_idx = (stage_word & 0xFFFF_FFFF) as usize;
        // Semantic sanity: two wrap-around writers racing the same slot can
        // in principle interleave; discard anything inconsistent.
        if trace_id == 0 || stage_idx >= names.len() || end_ns < start_ns {
            return None;
        }
        let mut kv = Vec::new();
        for (i, &val) in vals.iter().enumerate() {
            let key = (stage_word >> (32 + 16 * i)) & 0xFFFF;
            if key != 0 {
                if let Some(name) = names.get(key as usize - 1) {
                    kv.push(((*name).to_string(), val));
                }
            }
        }
        Some(SpanDump {
            trace_id,
            span_id: (ids & 0xFFFF_FFFF) as u32,
            parent_id: (ids >> 32) as u32,
            stage: names[stage_idx].to_string(),
            start_ns,
            end_ns,
            kv,
        })
    }

    /// All complete spans currently held by the recorder, sorted by start
    /// time (ties by span id).
    pub fn recent(&self) -> Vec<SpanDump> {
        let names = self.stage_names();
        let mut spans: Vec<SpanDump> = self
            .shards
            .iter()
            .flat_map(|shard| shard.slots.iter())
            .filter_map(|slot| self.read_slot(slot, &names))
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        spans
    }

    /// The slow-query log, worst trace first.
    pub fn slow(&self) -> Vec<SlowTraceDump> {
        self.slowlog.lock().expect("slowlog poisoned").clone()
    }

    /// Recent spans plus the slow log — the op 7 payload.
    pub fn dump(&self) -> TraceDump {
        TraceDump { spans: self.recent(), slow: self.slow() }
    }

    fn stage_names(&self) -> Vec<&'static str> {
        self.stages.lock().expect("stage table poisoned").clone()
    }

    /// Captures every span of `trace_id` still in the ring into the slow
    /// log, keeping the worst [`SLOWLOG_CAP`] traces by duration.
    fn capture_slow(&self, trace_id: u64, duration_ns: u64) {
        let names = self.stage_names();
        let mut spans: Vec<SpanDump> = self
            .shards
            .iter()
            .flat_map(|shard| shard.slots.iter())
            .filter_map(|slot| self.read_slot(slot, &names))
            .filter(|s| s.trace_id == trace_id)
            .collect();
        if spans.is_empty() {
            return;
        }
        spans.sort_by_key(|s| (s.start_ns, s.span_id));
        let mut slowlog = self.slowlog.lock().expect("slowlog poisoned");
        slowlog.push(SlowTraceDump { duration_ns, spans });
        slowlog.sort_by_key(|t| std::cmp::Reverse(t.duration_ns));
        slowlog.truncate(SLOWLOG_CAP);
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity())
            .field("sampling", &self.sampling())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spans_round_trip_through_the_ring() {
        let tracer = Tracer::with_capacity(1, 64);
        let stage = tracer.stage("test.root");
        let child_stage = tracer.stage("test.child");
        let items = tracer.stage("items");

        let ctx = tracer.begin_trace();
        let root = tracer.open(ctx, stage);
        let mut child = tracer.open(root.ctx(), child_stage);
        child.kv(items, 7);
        tracer.close(child);
        tracer.close(root);

        let spans = tracer.recent();
        assert_eq!(spans.len(), 2);
        let root_dump = spans.iter().find(|s| s.stage == "test.root").unwrap();
        let child_dump = spans.iter().find(|s| s.stage == "test.child").unwrap();
        assert_eq!(root_dump.parent_id, 0);
        assert_eq!(child_dump.parent_id, root_dump.span_id);
        assert_eq!(child_dump.trace_id, root_dump.trace_id);
        assert_eq!(child_dump.kv, vec![("items".to_string(), 7)]);
        assert!(root_dump.start_ns <= child_dump.start_ns);
        assert!(child_dump.end_ns <= root_dump.end_ns);
    }

    #[test]
    fn sampling_zero_records_nothing() {
        let tracer = Tracer::with_capacity(1, 64);
        let stage = tracer.stage("test.root");
        tracer.set_sampling(0);
        for _ in 0..32 {
            let ctx = tracer.begin_trace();
            assert!(!ctx.is_sampled());
            let span = tracer.open(ctx, stage);
            assert!(!span.is_sampled());
            tracer.close(span);
        }
        assert!(tracer.recent().is_empty());
        assert!(tracer.slow().is_empty());
    }

    #[test]
    fn sampling_every_nth_traces_one_in_n() {
        let tracer = Tracer::with_capacity(1, 256);
        tracer.set_sampling(4);
        // The counter hash keeps the long-run rate at 1-in-4 without
        // being exactly periodic: allow ±20% over 4000 draws. The very
        // first trace must always be sampled (hash of 0 is 0).
        assert!(tracer.begin_trace().is_sampled());
        let sampled = (0..4000).filter(|_| tracer.begin_trace().is_sampled()).count();
        assert!((800..=1200).contains(&sampled), "sampled {sampled} of 4000 at 1-in-4");
    }

    #[test]
    fn sampling_does_not_phase_lock_on_periodic_arrivals() {
        // One-query-per-connection clients produce a strict
        // accept/request alternation: with a plain `counter % every`
        // rule and an even `every`, one parity class would never be
        // sampled. The hashed counter must sample both.
        let tracer = Tracer::with_capacity(1, 256);
        tracer.set_sampling(8);
        let mut even = 0usize;
        let mut odd = 0usize;
        for i in 0..512 {
            if tracer.begin_trace().is_sampled() {
                if i % 2 == 0 {
                    even += 1;
                } else {
                    odd += 1;
                }
            }
        }
        assert!(even > 0 && odd > 0, "phase-locked: even={even} odd={odd}");
    }

    #[test]
    fn concurrent_recording_up_to_capacity_loses_no_spans() {
        // One shard, 64 slots, 4 threads × 16 spans = exactly capacity:
        // every claim lands on a distinct slot, so nothing may be lost
        // even though all threads contend on the same cursor.
        let tracer = Arc::new(Tracer::with_capacity(1, 64));
        let stage = tracer.stage("test.concurrent");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        let ctx = tracer.begin_trace();
                        let mut span = tracer.open(ctx, stage);
                        span.kv(stage, (t * 16 + i) as u64);
                        tracer.close(span);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let spans = tracer.recent();
        assert_eq!(spans.len(), 64);
        let mut payloads: Vec<u64> = spans.iter().map(|s| s.kv[0].1).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn wraparound_keeps_only_the_newest_spans() {
        let tracer = Tracer::with_capacity(1, 64);
        let stage = tracer.stage("test.wrap");
        let idx = tracer.stage("i");
        for i in 0..200u64 {
            let ctx = tracer.begin_trace();
            let mut span = tracer.open(ctx, stage);
            span.kv(idx, i);
            tracer.close(span);
        }
        let spans = tracer.recent();
        assert_eq!(spans.len(), 64);
        let mut payloads: Vec<u64> = spans.iter().map(|s| s.kv[0].1).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (136..200).collect::<Vec<u64>>());
    }

    #[test]
    fn slowlog_captures_complete_traces_over_threshold() {
        let tracer = Tracer::with_capacity(1, 64);
        let root_stage = tracer.stage("test.root");
        let child_stage = tracer.stage("test.child");
        tracer.set_slow_threshold(Duration::from_nanos(1_000));

        // Fast trace: under threshold, not captured.
        let ctx = tracer.begin_trace();
        let root = tracer.open_at(ctx, root_stage, 1_000);
        tracer.close_at(root, 1_500);
        assert!(tracer.slow().is_empty());

        // Slow trace: captured with its child.
        let ctx = tracer.begin_trace();
        let root = tracer.open_at(ctx, root_stage, 10_000);
        tracer.record(root.ctx(), child_stage, 10_100, 10_900);
        tracer.close_at(root, 20_000);
        let slow = tracer.slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].duration_ns, 10_000);
        let stages: Vec<&str> = slow[0].spans.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, vec!["test.root", "test.child"]);
    }

    #[test]
    fn slowlog_keeps_the_worst_n() {
        let tracer = Tracer::with_capacity(4, 1024);
        let stage = tracer.stage("test.root");
        tracer.set_slow_threshold(Duration::from_nanos(1));
        for i in 0..(SLOWLOG_CAP as u64 + 10) {
            let ctx = tracer.begin_trace();
            let root = tracer.open_at(ctx, stage, 0);
            tracer.close_at(root, 100 + i);
        }
        let slow = tracer.slow();
        assert_eq!(slow.len(), SLOWLOG_CAP);
        // Worst first, and the 10 shortest were evicted.
        assert_eq!(slow[0].duration_ns, 100 + SLOWLOG_CAP as u64 + 9);
        assert!(slow.iter().all(|t| t.duration_ns >= 110));
        assert!(slow.windows(2).all(|w| w[0].duration_ns >= w[1].duration_ns));
    }

    #[test]
    fn stage_interning_is_idempotent() {
        let tracer = Tracer::new();
        let a = tracer.stage("serve.decode");
        let b = tracer.stage("serve.decode");
        let c = tracer.stage("serve.eval");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
