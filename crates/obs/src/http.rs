//! A minimal std-only HTTP/1.1 scrape endpoint for Prometheus.
//!
//! [`MetricsServer::spawn`] binds a plain `TcpListener` and answers every
//! `GET /metrics` (or `GET /`) with the current registry rendered via
//! [`crate::render_prometheus`]. `HEAD` gets the same status line and
//! headers (including the `Content-Length` the GET body would have) with
//! no body; any other method gets `405` with an `Allow` header. One
//! short-lived thread per connection, `Connection: close` semantics —
//! exactly enough HTTP for `curl` and a Prometheus scraper, nothing more.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::expo::render_prometheus;
use crate::registry::MetricsRegistry;

/// Longest request head (request line + headers) we will buffer.
const MAX_HEAD_BYTES: u64 = 8 * 1024;

/// How long a scraper may dawdle before its connection is dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A running scrape endpoint. Dropping the handle shuts it down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves scrapes of `registry` on a background
    /// thread. Port 0 picks an ephemeral port, reported by [`Self::addr`].
    pub fn spawn(
        registry: Arc<MetricsRegistry>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &registry, &stop_flag);
        });
        Ok(MetricsServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting scrapes and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection; a wildcard bind
        // address is not connectable, so aim at loopback on the same port.
        let mut wake_addr = self.addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let woke = TcpStream::connect(wake_addr).is_ok();
        if let Some(handle) = self.accept_thread.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake-up connect failed, joining could block forever;
            // detach instead and let the thread exit on the next event.
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(listener: &TcpListener, registry: &Arc<MetricsRegistry>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let registry = Arc::clone(registry);
        std::thread::spawn(move || {
            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
            let _ = serve_scrape(stream, &registry);
        });
    }
}

/// Reads one request head, answers it, closes the connection.
fn serve_scrape(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_HEAD_BYTES);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line so well-behaved clients don't see
    // a reset while still writing.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut writer = stream;
    // Accept /metrics with or without a query string, and bare / for
    // convenience when poking with a browser.
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") || path == "/" {
        ("200 OK", render_prometheus(&registry.dump()))
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    match method {
        "GET" => respond(&mut writer, status, "", &body, true),
        // HEAD mirrors the GET response byte-for-byte up to the body:
        // same status, same Content-Length, no body bytes.
        "HEAD" => respond(&mut writer, status, "", &body, false),
        _ => respond(
            &mut writer,
            "405 Method Not Allowed",
            "Allow: GET, HEAD\r\n",
            "method not allowed\n",
            true,
        ),
    }
}

fn respond(
    writer: &mut TcpStream,
    status: &str,
    extra_headers: &str,
    body: &str,
    include_body: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
        body.len()
    )?;
    if include_body {
        writer.write_all(body.as_bytes())?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn get_metrics_returns_exposition_text() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("cdim_test_total").add(5);
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let response =
            scrape(server.addr(), "GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        assert!(response.contains("cdim_test_total 5\n"), "{response}");
        server.shutdown();
    }

    #[test]
    fn wrong_path_and_method_are_rejected() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::spawn(registry, "127.0.0.1:0").unwrap();
        let missing = scrape(server.addr(), "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let posted = scrape(server.addr(), "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(posted.starts_with("HTTP/1.1 405"), "{posted}");
        assert!(posted.contains("\r\nAllow: GET, HEAD\r\n"), "{posted}");
        server.shutdown();
    }

    #[test]
    fn head_gets_headers_and_content_length_but_no_body() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("cdim_head_total").add(1);
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();

        let get = scrape(server.addr(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        let head = scrape(server.addr(), "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        // Identical headers (so identical Content-Length), empty body.
        let get_head_section = get.split("\r\n\r\n").next().unwrap();
        let (head_section, head_body) = head.split_once("\r\n\r\n").unwrap();
        assert_eq!(head_section, get_head_section);
        assert!(head_body.is_empty(), "HEAD must not carry a body: {head_body:?}");
        let content_length: usize = head_section
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header present")
            .parse()
            .unwrap();
        assert_eq!(content_length, get.split_once("\r\n\r\n").unwrap().1.len());
        assert!(content_length > 0);

        let head_missing = scrape(server.addr(), "HEAD /nope HTTP/1.1\r\n\r\n");
        assert!(head_missing.starts_with("HTTP/1.1 404"), "{head_missing}");
        assert!(head_missing.ends_with("\r\n\r\n"), "{head_missing}");
        server.shutdown();
    }

    #[test]
    fn scrape_reflects_live_updates() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("cdim_live_total");
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let first = scrape(server.addr(), "GET / HTTP/1.1\r\n\r\n");
        assert!(first.contains("cdim_live_total 0\n"), "{first}");
        counter.add(3);
        let second = scrape(server.addr(), "GET / HTTP/1.1\r\n\r\n");
        assert!(second.contains("cdim_live_total 3\n"), "{second}");
        server.shutdown();
    }
}
