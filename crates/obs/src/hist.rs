//! Mergeable log-linear latency histograms with lock-free recording.
//!
//! # Design
//!
//! Samples are nonnegative seconds (`f64`). On record they are converted to
//! integer nanosecond "ticks" (`round(v * 1e9)`, saturating) and bucketed
//! HDR-style: values below `M = 2^SUB_BITS` ticks get exact unit buckets,
//! and every power-of-two range above that is split into `M` linear
//! sub-buckets, giving a worst-case relative error of `1/M` (~3% with
//! `SUB_BITS = 5`) across the full `u64` range. Each bucket is an
//! `AtomicU64` bumped with a relaxed `fetch_add`; the running sum is a
//! relaxed `fetch_add` of ticks and the running max a relaxed `fetch_max`
//! (for nonnegative values, `f64`-as-ticks integer order equals numeric
//! order). Recording is therefore wait-free and, because every internal
//! quantity is an integer, merging two histograms is *exactly* equal to
//! recording the concatenated sample streams — no float re-association.
//!
//! Readout walks the bucket array once, reporting each quantile as its
//! bucket's upper bound (clamped to the exact observed max), so
//! `p50 <= p90 <= p99 <= max` always holds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Linear sub-buckets per power-of-two range, as a bit count.
const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power-of-two range.
const M: u64 = 1 << SUB_BITS;
/// Total bucket count: `M` unit buckets plus `M` per remaining exponent.
const NUM_BUCKETS: usize = (M as usize) * (64 - SUB_BITS as usize + 1);

/// Ticks per second: samples are recorded with nanosecond resolution.
const TICKS_PER_SEC: f64 = 1e9;

/// Convert a sample in seconds to integer ticks (saturating, NaN -> 0).
#[inline]
fn to_ticks(secs: f64) -> u64 {
    // `as` casts from f64 saturate (and map NaN to 0) in Rust, which is
    // exactly the behaviour we want at the extremes.
    (secs.max(0.0) * TICKS_PER_SEC).round() as u64
}

/// Bucket index for a tick value.
#[inline]
fn bucket_index(t: u64) -> usize {
    if t < M {
        t as usize
    } else {
        let exp = 63 - t.leading_zeros();
        let shift = exp - SUB_BITS;
        let sub = (t >> shift) - M;
        ((exp - SUB_BITS + 1) as u64 * M + sub) as usize
    }
}

/// Inclusive upper bound (in ticks) of the bucket at `index`.
fn bucket_upper(index: usize) -> u64 {
    let i = index as u64;
    if i < M {
        i
    } else {
        let b = i / M;
        let exp = b - 1 + SUB_BITS as u64;
        let sub = i % M;
        let shift = exp - SUB_BITS as u64;
        let lower = (M + sub) << shift;
        let width = 1u64 << shift;
        lower + (width - 1)
    }
}

/// A fixed-size log-linear histogram of nonnegative durations in seconds.
///
/// See the module docs for the bucketing scheme. All recording paths are
/// lock-free relaxed atomics; snapshots and merges are relaxed loads and
/// may tear *across* buckets under concurrent writes (each individual
/// bucket is still exact), which is the standard trade for wait-free
/// recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum_ticks: AtomicU64,
    max_ticks: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        // Build on the heap without materialising a stack array first.
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = (0..NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("bucket count mismatch");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum_ticks: AtomicU64::new(0),
            max_ticks: AtomicU64::new(0),
        }
    }

    /// Record one sample, in seconds. Negative and NaN samples clamp to 0.
    #[inline]
    pub fn observe(&self, secs: f64) {
        let t = to_ticks(secs);
        self.buckets[bucket_index(t)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ticks.fetch_add(t, Ordering::Relaxed);
        self.max_ticks.fetch_max(t, Ordering::Relaxed);
    }

    /// Start a span: returns a guard that records the elapsed wall time
    /// into this histogram when dropped.
    pub fn start_span(self: &Arc<Self>) -> SpanGuard {
        SpanGuard { hist: Arc::clone(self), started: Instant::now() }
    }

    /// Fold another histogram's contents into this one.
    ///
    /// Because all internal state is integral, the result is exactly the
    /// histogram that would have recorded both sample streams.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ticks.fetch_add(other.sum_ticks.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ticks.fetch_max(other.max_ticks.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact running sum, in integer ticks (test/merge invariant hook).
    pub fn sum_ticks(&self) -> u64 {
        self.sum_ticks.load(Ordering::Relaxed)
    }

    /// Exact running max, in integer ticks (test/merge invariant hook).
    pub fn max_ticks(&self) -> u64 {
        self.max_ticks.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(index, count)` pairs (test hook).
    pub fn sparse_counts(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((i, n))
            })
            .collect()
    }

    /// Value (seconds) at quantile `q` in `[0, 1]`, or 0.0 when empty.
    ///
    /// Reported as the containing bucket's upper bound, clamped to the
    /// exact observed max — so quantiles are monotone in `q` and never
    /// exceed the max.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let max = self.max_ticks();
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(max) as f64 / TICKS_PER_SEC;
            }
        }
        max as f64 / TICKS_PER_SEC
    }

    /// One-pass snapshot of count, sum, max, and the standard quantiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum_ticks() as f64 / TICKS_PER_SEC,
            max: self.max_ticks() as f64 / TICKS_PER_SEC,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time readout of a [`Histogram`]: sample count, sum and max in
/// seconds, and the p50/p90/p99 quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, seconds.
    pub sum: f64,
    /// Largest sample, seconds.
    pub max: f64,
    /// Median, seconds.
    pub p50: f64,
    /// 90th percentile, seconds.
    pub p90: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
}

/// RAII scoped timer returned by [`Histogram::start_span`]; records the
/// elapsed wall time (seconds) into its histogram on drop.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    started: Instant,
}

impl SpanGuard {
    /// Seconds elapsed since the span started (without ending it).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.observe(self.started.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for exp in 0..64u32 {
            let t = 1u64 << exp;
            for probe in [t, t + t / 3, t + t / 2] {
                let i = bucket_index(probe);
                assert!(i < NUM_BUCKETS, "index {i} out of range for t={probe}");
                assert!(i >= prev, "index not monotone at t={probe}");
                prev = i;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(M - 1), (M - 1) as usize);
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for t in [0u64, 1, 31, 32, 33, 100, 1_000_000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(t);
            assert!(bucket_upper(i) >= t, "upper({i}) < t={t}");
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_upper(i) < bucket_upper(i + 1));
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for t in [100u64, 12_345, 1_000_000, 123_456_789, u64::MAX / 3] {
            let upper = bucket_upper(bucket_index(t));
            let err = (upper - t) as f64 / t as f64;
            assert!(err <= 1.0 / M as f64 + 1e-12, "err {err} too large at t={t}");
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_sample_quantiles_hit_the_sample() {
        let h = Histogram::new();
        h.observe(0.125);
        let s = h.summary();
        assert_eq!(s.count, 1);
        // max is exact; quantiles clamp to it.
        assert_eq!(s.max, 0.125);
        assert_eq!(s.p50, 0.125);
        assert_eq!(s.p99, 0.125);
        assert!((s.sum - 0.125).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_ordered_on_spread_data() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-4);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p50 of 0.1ms..100ms uniform should land near 50ms within bucket error.
        assert!((s.p50 - 0.05).abs() / 0.05 < 2.0 / M as f64 + 0.01, "p50={}", s.p50);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        let h = Histogram::new();
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ticks(), 0);
        assert_eq!(h.max_ticks(), 0);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _span = h.start_span();
        }
        assert_eq!(h.count(), 1);
    }
}
