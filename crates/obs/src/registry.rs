//! The process-wide metrics registry.
//!
//! A [`MetricsRegistry`] owns named metrics and hands out `Arc` handles so
//! instrumented code pays the name lookup exactly once, at registration.
//! Registration is idempotent: asking for an existing name returns the
//! existing metric, which is what lets independently constructed
//! subsystems (service, ingest driver, scan telemetry) share one set of
//! series. Names live in `BTreeMap`s so every dump is deterministically
//! sorted.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSummary};
use crate::metric::{Counter, Gauge, Info};

/// A named collection of counters, gauges, histograms, and info metrics.
///
/// Cheap to clone via `Arc`; the global process registry is available from
/// [`MetricsRegistry::global`], and isolated registries (`new`) keep unit
/// tests hermetic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    infos: Mutex<BTreeMap<String, Arc<Info>>>,
}

impl MetricsRegistry {
    /// Create an empty, private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared process-wide registry.
    ///
    /// Everything the CLI exposes over `--metrics-addr` and wire op 6
    /// registers here, so scan, serve, and ingest series land in one dump.
    pub fn global() -> Arc<MetricsRegistry> {
        static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())))
    }

    /// Register (or fetch) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// Register (or fetch) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Register (or fetch) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Register (or fetch) the info metric named `name` with label `label`.
    ///
    /// The label of the first registration wins; later calls with a
    /// different label still return the existing metric.
    pub fn info(&self, name: &str, label: &'static str) -> Arc<Info> {
        let mut map = self.infos.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Info::new(label))))
    }

    /// Snapshot every metric into a sorted, serialisable dump.
    pub fn dump(&self) -> RegistryDump {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.summary()))
            .collect();
        let infos = self
            .infos
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, i)| (name.clone(), i.label().to_string(), i.get()))
            .collect();
        RegistryDump { counters, gauges, histograms, infos }
    }
}

/// A point-in-time snapshot of a whole [`MetricsRegistry`], sorted by
/// metric name within each kind.
///
/// This is the payload of wire op 6 (`Metrics`) and the input to the
/// Prometheus renderer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistryDump {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// `(name, label key, label value)` for every info metric.
    pub infos: Vec<(String, String, String)>,
}

impl RegistryDump {
    /// True when the dump contains no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.infos.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn dump_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("z_total").add(3);
        r.counter("a_total").add(1);
        r.gauge("g").set(2.5);
        r.histogram("h").observe(0.5);
        r.info("i", "reason").set("why");
        let d = r.dump();
        assert_eq!(d.counters, vec![("a_total".to_string(), 1), ("z_total".to_string(), 3)]);
        assert_eq!(d.gauges, vec![("g".to_string(), 2.5)]);
        assert_eq!(d.histograms.len(), 1);
        assert_eq!(d.histograms[0].0, "h");
        assert_eq!(d.histograms[0].1.count, 1);
        assert_eq!(d.infos, vec![("i".to_string(), "reason".to_string(), "why".to_string())]);
        assert!(!d.is_empty());
        assert!(RegistryDump::default().is_empty());
    }

    #[test]
    fn global_registry_is_shared() {
        let a = MetricsRegistry::global();
        let b = MetricsRegistry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
