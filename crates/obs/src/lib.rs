#![warn(missing_docs)]
//! Unified observability for the `cdim` workspace.
//!
//! Every subsystem — the credit scan, the serving frontend, the ingest
//! driver — reports into one [`MetricsRegistry`] of named metrics, and
//! operators read it back through one of two surfaces: wire op 6
//! (`Metrics`) on the query protocol, or the Prometheus text endpoint
//! served by [`MetricsServer`]. Per-request causality comes from the
//! [`trace`] flight recorder, read by wire op 7 (`TraceDump`). The crate
//! is std-only with zero external dependencies.
//!
//! * [`metric`] — [`Counter`] (relaxed atomic adds), [`Gauge`] (f64 bits
//!   in an `AtomicU64`, with an RAII [`GaugeGuard`] for in-flight
//!   tracking), and [`Info`] (a text annotation such as the last
//!   quarantine reason).
//! * [`hist`] — [`Histogram`], a mergeable log-linear latency histogram
//!   with wait-free recording and exact-integer internals (merge equals
//!   concatenated recording), read out as p50/p90/p99/max via
//!   [`HistogramSummary`]; [`SpanGuard`] is the RAII scoped timer.
//! * [`registry`] — [`MetricsRegistry`] (register-or-fetch by name,
//!   deterministic sorted [`RegistryDump`] snapshots, and the process-wide
//!   [`MetricsRegistry::global`] instance).
//! * [`expo`] — [`render_prometheus`], text exposition format 0.0.4.
//! * [`http`] — [`MetricsServer`], a minimal std TCP scrape endpoint.
//! * [`trace`] — [`Tracer`], the request-scoped span flight recorder
//!   (lock-free sharded ring of recent spans + slow-query log), read out
//!   as a [`TraceDump`] by wire op 7.
//!
//! # Span-guard usage
//!
//! ```
//! use cdim_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let hist = registry.histogram("cdim_work_seconds");
//! {
//!     let _span = hist.start_span();
//!     // ... timed section ...
//! } // drop records the elapsed seconds
//! assert_eq!(hist.count(), 1);
//! ```

pub mod expo;
pub mod hist;
pub mod http;
pub mod metric;
pub mod registry;
pub mod trace;

pub use expo::render_prometheus;
pub use hist::{Histogram, HistogramSummary, SpanGuard};
pub use http::MetricsServer;
pub use metric::{Counter, Gauge, GaugeGuard, Info};
pub use registry::{MetricsRegistry, RegistryDump};
pub use trace::{ActiveSpan, SlowTraceDump, SpanDump, Stage, TraceCtx, TraceDump, Tracer};
