//! Scalar metric primitives: monotone counters, float gauges, and
//! free-text info metrics.
//!
//! All hot-path operations are single relaxed atomic instructions; handles
//! are `Arc`s handed out by the [`crate::MetricsRegistry`] so call sites
//! never pay a lookup after registration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event counter.
///
/// Increments are relaxed atomic adds; reads are relaxed loads. The value
/// only ever grows (there is deliberately no `set` or `sub`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous float value that can go up and down.
///
/// The value is stored as the IEEE-754 bit pattern of an `f64` inside an
/// `AtomicU64`: `set` is a plain store, `add` is a compare-and-swap loop.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Create a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Increment by one and return a guard that decrements on drop.
    ///
    /// This is the in-flight pattern: wrap the working section of a request
    /// handler and the gauge tracks concurrent requests even across panics.
    pub fn inc_scoped(self: &Arc<Self>) -> GaugeGuard {
        self.add(1.0);
        GaugeGuard { gauge: Arc::clone(self) }
    }
}

/// RAII guard returned by [`Gauge::inc_scoped`]; decrements the gauge by
/// one when dropped.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Arc<Gauge>,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.add(-1.0);
    }
}

/// A free-text annotation metric (e.g. "last quarantine reason").
///
/// Rendered in Prometheus exposition as `name{<label>="<value>"} 1`,
/// mirroring the `_info` convention. Not a hot-path primitive: updates
/// take a mutex.
#[derive(Debug)]
pub struct Info {
    label: &'static str,
    value: Mutex<String>,
}

impl Info {
    /// Create an info metric whose single label is named `label`.
    pub fn new(label: &'static str) -> Self {
        Self { label, value: Mutex::new(String::new()) }
    }

    /// Name of the single label this metric carries.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Replace the label value.
    pub fn set(&self, value: &str) {
        *self.value.lock().expect("info metric poisoned") = value.to_string();
    }

    /// Current label value (empty string until first `set`).
    pub fn get(&self) -> String {
        self.value.lock().expect("info metric poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_concurrent_increments_lose_nothing() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_add_roundtrip() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn gauge_guard_restores_on_drop() {
        let g = Arc::new(Gauge::new());
        {
            let _a = g.inc_scoped();
            let _b = g.inc_scoped();
            assert_eq!(g.get(), 2.0);
        }
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn info_stores_latest_value() {
        let i = Info::new("reason");
        assert_eq!(i.get(), "");
        i.set("stale action (frontier 17)");
        assert_eq!(i.get(), "stale action (frontier 17)");
        assert_eq!(i.label(), "reason");
    }
}
