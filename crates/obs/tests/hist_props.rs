//! Property tests for the log-linear histogram invariants (ISSUE 7
//! satellite): quantile monotonicity, merge == concatenated recording,
//! and lossless concurrent recording.

use cdim_obs::Histogram;
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// Ticks are nanoseconds; keep samples under 2^53 ns so the f64 seconds
/// round-trip back to the exact tick value.
const MAX_TICKS: u64 = 5_000_000_000;

fn record_all(hist: &Histogram, ticks: &[u64]) {
    for &t in ticks {
        hist.observe(t as f64 / 1e9);
    }
}

proptest! {
    /// Quantiles never decrease as q increases, and never exceed the max.
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(0u64..MAX_TICKS, 1..300)) {
        let hist = Histogram::new();
        record_all(&hist, &samples);
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let mut prev = 0.0;
        for &q in &grid {
            let v = hist.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
        let max_secs = hist.max_ticks() as f64 / 1e9;
        prop_assert!(hist.quantile(1.0) <= max_secs);
        prop_assert!(hist.quantile(0.99) <= max_secs);
    }

    /// merge(a, b) is *exactly* the histogram of the concatenated sample
    /// streams: same buckets, same count, same integer sum, same max.
    #[test]
    fn merge_equals_concatenated_recording(
        left in proptest::collection::vec(0u64..MAX_TICKS, 0..200),
        right in proptest::collection::vec(0u64..MAX_TICKS, 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        record_all(&a, &left);
        record_all(&b, &right);
        a.merge_from(&b);

        let concatenated = Histogram::new();
        record_all(&concatenated, &left);
        record_all(&concatenated, &right);

        prop_assert_eq!(a.count(), concatenated.count());
        prop_assert_eq!(a.sum_ticks(), concatenated.sum_ticks());
        prop_assert_eq!(a.max_ticks(), concatenated.max_ticks());
        prop_assert_eq!(a.sparse_counts(), concatenated.sparse_counts());
        prop_assert_eq!(a.summary(), concatenated.summary());
    }

    /// Quantiles always land inside the recorded value range (within the
    /// bucket's bounded relative over-estimate).
    #[test]
    fn quantiles_stay_in_range(samples in proptest::collection::vec(1u64..MAX_TICKS, 1..200)) {
        let hist = Histogram::new();
        record_all(&hist, &samples);
        let min = *samples.iter().min().unwrap() as f64 / 1e9;
        let max = *samples.iter().max().unwrap() as f64 / 1e9;
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = hist.quantile(q);
            // Lower bound: a quantile is at least its bucket's presence,
            // never below the smallest sample's own bucket lower edge
            // (conservatively: never below min / (1 + 1/32) - rounding).
            prop_assert!(v <= max, "quantile({q}) = {v} > max {max}");
            prop_assert!(v >= min * (1.0 - 1.0 / 16.0) - 1e-9, "quantile({q}) = {v} < min {min}");
        }
    }
}

/// Concurrent recording from N threads loses no counts: count, sum, and
/// max all match the single-threaded equivalent exactly.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(Histogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let hist = Arc::clone(&hist);
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                // Distinct deterministic tick values per thread.
                let ticks = t * PER_THREAD + i;
                hist.observe(ticks as f64 / 1e9);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.count(), n);
    assert_eq!(hist.sum_ticks(), n * (n - 1) / 2);
    assert_eq!(hist.max_ticks(), n - 1);
    let total: u64 = hist.sparse_counts().iter().map(|&(_, c)| c).sum();
    assert_eq!(total, n);
}
