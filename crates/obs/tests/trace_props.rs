//! Property tests for the span flight recorder: on a single-threaded
//! trace built with stack discipline, every child span's interval must
//! nest inside its parent's, and the recorded tree must match the tree
//! that was opened.

use cdim_obs::trace::Tracer;
use proptest::prelude::*;

proptest! {
    /// Drive a random open/close sequence (stack discipline, one thread)
    /// and check the recorder hands back a properly nested tree: every
    /// non-root span's parent exists, and `parent.start <= child.start
    /// <= child.end <= parent.end`.
    #[test]
    fn parent_child_intervals_nest(ops in proptest::collection::vec(proptest::bool::ANY, 1..120)) {
        let tracer = Tracer::with_capacity(1, 256);
        let stage = tracer.stage("prop.span");

        let ctx = tracer.begin_trace();
        prop_assert!(ctx.is_sampled());
        let mut stack = vec![tracer.open(ctx, stage)];
        let mut opened = 1usize;
        for &open in &ops {
            if open && stack.len() < 32 && opened < 200 {
                let parent_ctx = stack.last().unwrap().ctx();
                stack.push(tracer.open(parent_ctx, stage));
                opened += 1;
            } else if stack.len() > 1 {
                tracer.close(stack.pop().unwrap());
            }
        }
        while let Some(span) = stack.pop() {
            tracer.close(span);
        }

        let spans = tracer.recent();
        prop_assert_eq!(spans.len(), opened);
        let roots = spans.iter().filter(|s| s.parent_id == 0).count();
        prop_assert_eq!(roots, 1);
        for child in spans.iter().filter(|s| s.parent_id != 0) {
            let parent = spans
                .iter()
                .find(|s| s.span_id == child.parent_id)
                .expect("parent span must be in the dump");
            prop_assert_eq!(parent.trace_id, child.trace_id);
            prop_assert!(parent.start_ns <= child.start_ns);
            prop_assert!(child.start_ns <= child.end_ns);
            prop_assert!(child.end_ns <= parent.end_ns);
        }
    }
}
