#![warn(missing_docs)]
//! Offline stand-in for the crates.io `proptest` property-testing crate.
//!
//! The workspace builds without network access, so the real `proptest`
//! cannot be fetched. The unit tests under `crates/*/src` use a small,
//! fixed slice of its API, and this crate reimplements exactly that slice:
//!
//! * the [`proptest!`] macro wrapping `#[test]` functions whose arguments
//!   are drawn from strategies (`arg in strategy` syntax);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * integer-range strategies (`0u32..30`), tuples of strategies,
//!   [`collection::vec`], [`sample::subsequence`] and [`bool::ANY`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (per-test, derived from the test name), there is no
//! shrinking — a failing case prints its inputs and re-panics — and the
//! case count is 64 by default (`PROPTEST_CASES` overrides it).

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic test RNG (splitmix64 core) — no platform entropy, so a
/// failing case reproduces bit-for-bit on every machine.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the RNG for a named test; the name keeps distinct tests from
    /// sharing a sample sequence.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for b in name.bytes() {
            state = state.wrapping_mul(31).wrapping_add(b as u64);
        }
        Self { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-strategy scale.
        self.next_u64() % bound
    }
}

/// A value generator. The real crate's `Strategy` also supports mapping,
/// filtering and shrinking; the shim only needs sampling.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64) - (self.start as u64);
                assert!(span > 0, "empty range strategy {:?}", self);
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The unique instance of [`Any`], mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// An inclusive-exclusive size bound for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over existing collections.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy yielding order-preserving subsequences of `values` with a
    /// length drawn from `size`.
    pub fn subsequence<T: Clone + Debug>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence { values, size: size.into() }
    }

    /// See [`subsequence`].
    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone + Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let want = self.size.sample(rng).min(self.values.len());
            // Reservoir-style pick of `want` distinct indices, then emit in
            // original order to preserve subsequence semantics.
            let mut picked: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..picked.len() {
                let j = i + rng.below((picked.len() - i) as u64) as usize;
                picked.swap(i, j);
            }
            picked.truncate(want);
            picked.sort_unstable();
            picked.iter().map(|&i| self.values[i].clone()).collect()
        }
    }
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES` override).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// The common imports: the [`Strategy`] trait plus the macros (which are
/// exported at the crate root regardless).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

/// Assert a condition inside a `proptest!` body.
///
/// The shim does not shrink, so this is `assert!` — the wrapping macro
/// prints the generated inputs when the case panics.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject the current case when its inputs don't satisfy a precondition.
///
/// Real proptest draws a replacement case; the shim simply skips the body
/// for this sample (the case still counts toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments [`case_count`] times and
/// runs the body on each sample. A panicking case prints its inputs first.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..$crate::case_count() {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| { $body }),
                );
                if let Err(panic) = outcome {
                    eprintln!("proptest case {case} of {} failed with {inputs}", stringify!($name));
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}
