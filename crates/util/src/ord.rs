//! Total-order wrapper for `f64`.
//!
//! Heaps and sort keys in the CELF queue and the top-k selectors need `Ord`
//! floats. [`OrdF64`] orders like IEEE-754 except that every NaN compares
//! equal and greater than all other values, so it never poisons a heap.

use std::cmp::Ordering;

/// An `f64` with a total order (`NaN` sorts last and equal to itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Unwraps the inner float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(x: f64) -> Self {
        OrdF64(x)
    }
}

impl PartialEq for OrdF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.0.partial_cmp(&other.0).expect("both non-NaN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64_for_normal_values() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert!(OrdF64(-1.0) < OrdF64(0.0));
        assert_eq!(OrdF64(3.5), OrdF64(3.5));
    }

    #[test]
    fn nan_sorts_last_and_is_self_equal() {
        assert!(OrdF64(f64::NAN) > OrdF64(f64::INFINITY));
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
    }

    #[test]
    fn usable_in_binary_heap() {
        let mut heap = std::collections::BinaryHeap::new();
        for x in [0.5, 2.0, -1.0, 1.5] {
            heap.push(OrdF64(x));
        }
        assert_eq!(heap.pop(), Some(OrdF64(2.0)));
        assert_eq!(heap.pop(), Some(OrdF64(1.5)));
    }

    #[test]
    fn sort_is_total() {
        let mut v = [OrdF64(f64::NAN), OrdF64(1.0), OrdF64(-2.0), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64(-2.0));
        assert_eq!(v[1], OrdF64(0.0));
        assert_eq!(v[2], OrdF64(1.0));
        assert!(v[3].0.is_nan());
    }
}
