//! Coarse heap-size accounting.
//!
//! Fig 8 (right) and Table 4 of the paper report the memory footprint of the
//! credit structures as a function of action-log size and truncation
//! threshold. We account for it analytically via [`HeapSize`]: each
//! container reports the bytes it owns on the heap. This is deterministic
//! and allocator-independent, which is exactly what the experiments need
//! (the paper's GB figures are likewise rough process-level numbers).

use std::collections::HashMap;
use std::hash::BuildHasher;

/// Types that can report the number of heap bytes they own.
///
/// The estimate covers payload capacity, not allocator bookkeeping; nested
/// containers recurse.
pub trait HeapSize {
    /// Bytes owned on the heap (excluding `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;
}

macro_rules! impl_heapsize_pod {
    ($($t:ty),*) => {
        $(impl HeapSize for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_heapsize_pod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl<A: HeapSize, B: HeapSize> HeapSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        let inline = self.capacity() * std::mem::size_of::<T>();
        inline + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl<T: HeapSize> HeapSize for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        let inline = self.len() * std::mem::size_of::<T>();
        inline + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<K: HeapSize, V: HeapSize, S: BuildHasher> HeapSize for HashMap<K, V, S> {
    fn heap_bytes(&self) -> usize {
        // hashbrown stores (K, V) pairs plus one control byte per slot, at
        // ~8/7 the length when grown; capacity() already reflects that.
        let slot = std::mem::size_of::<(K, V)>() + 1;
        let table = self.capacity() * slot;
        table + self.iter().map(|(k, v)| k.heap_bytes() + v.heap_bytes()).sum::<usize>()
    }
}

/// Formats a byte count as a human-readable string (`12.3 MB`).
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_has_no_heap() {
        assert_eq!(42u64.heap_bytes(), 0);
        assert_eq!(1.5f64.heap_bytes(), 0);
    }

    #[test]
    fn vec_counts_capacity() {
        let v: Vec<u64> = Vec::with_capacity(16);
        assert_eq!(v.heap_bytes(), 16 * 8);
        let v2: Vec<u32> = vec![1, 2, 3];
        assert!(v2.heap_bytes() >= 12);
    }

    #[test]
    fn nested_vec_recurses() {
        let v: Vec<Vec<u8>> = vec![vec![0; 10], vec![0; 20]];
        assert!(v.heap_bytes() >= 30 + 2 * std::mem::size_of::<Vec<u8>>());
    }

    #[test]
    fn map_is_nonzero_when_populated() {
        let mut m: HashMap<u32, f64> = HashMap::new();
        assert_eq!(m.heap_bytes(), 0);
        m.insert(1, 2.0);
        assert!(m.heap_bytes() > 0);
    }

    #[test]
    fn fmt_scales_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
    }
}
