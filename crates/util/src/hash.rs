//! FxHash-style hashing.
//!
//! The algorithm is the one popularized by Firefox and rustc: a multiply–
//! rotate mix applied word-by-word. It is not HashDoS-resistant, which is
//! acceptable here — every key hashed in this workspace is an internal
//! integer id (user, action, edge), never attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher (multiply-rotate word mixer).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Length salt so "a" and "a\0" do not collide trivially.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Convenience constructor: an empty [`FxHashMap`].
#[inline]
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor: an [`FxHashMap`] with `cap` reserved slots.
#[inline]
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor: an empty [`FxHashSet`].
#[inline]
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one((7u32, 9u32)), hash_one((7u32, 9u32)));
        assert_eq!(hash_one("cascade"), hash_one("cascade"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
        assert_ne!(hash_one("a"), hash_one("a\0"));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u32, u32> = fx_map();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn integer_keys_spread_over_buckets() {
        // Weak avalanche check: low 10 bits of hashes of 0..4096 should not
        // collapse to a handful of values.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..4096u64 {
            buckets.insert(hash_one(i) & 0x3ff);
        }
        assert!(buckets.len() > 700, "only {} distinct buckets", buckets.len());
    }
}
