//! Scoped worker pool with deterministic work splitting.
//!
//! Every parallel stage in the workspace — the credit scan's per-action
//! fan-out, the Monte-Carlo estimator's simulation shards — runs on the
//! primitives in this module instead of hand-rolled `thread::scope`
//! blocks, so "how cdim uses cores" has exactly one answer.
//!
//! ## Design
//!
//! * **Std-only.** Workers are `std::thread::scope` threads; there is no
//!   global pool, no channels, no work stealing. A parallel call spawns at
//!   most [`Parallelism::effective`] threads, each owning a contiguous,
//!   pre-computed slice of the work, and joins them before returning.
//! * **Deterministic splitting.** [`split_ranges`] divides `n` items over
//!   `w` workers into contiguous ranges whose sizes differ by at most one,
//!   a pure function of `(n, w)`. Shard `s` always receives the same range
//!   for the same inputs, which is what lets callers derive per-shard RNG
//!   streams ([`cdim_diffusion`]'s estimator) or guarantee bit-identical
//!   merged output for every thread count (the credit scan).
//! * **Slot writing, ordered merge.** Each shard writes its result into
//!   its own pre-allocated slot; the merge is a plain in-order
//!   concatenation. No locks, no atomics, no nondeterministic reduction
//!   order.
//!
//! [`cdim_diffusion`]: ../../cdim_diffusion/index.html
//!
//! ## Example
//!
//! ```
//! use cdim_util::pool::{parallel_map_indexed, Parallelism};
//!
//! let squares = parallel_map_indexed(Parallelism::fixed(4), 6, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
//! ```

use std::ops::Range;

/// How many worker threads a parallel stage may use.
///
/// `0` means "resolve at run time": the `CDIM_THREADS` environment
/// variable if it holds a positive integer (the CI test matrix pins the
/// whole workspace to one thread this way), otherwise
/// [`std::thread::available_parallelism`]. Any other value is taken
/// literally, even when it exceeds the core count (useful for tests and
/// for reproducing a specific sharding). Since every parallel stage is
/// bit-deterministic, none of this ever changes a result — only how fast
/// it arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Requested thread count; `0` = auto.
    threads: usize,
}

/// Parses a `CDIM_THREADS`-style override: a positive integer, or `None`
/// for anything else (absent, empty, zero, garbage — all fall through to
/// the OS core count).
fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

impl Parallelism {
    /// Use every core the OS reports (or `$CDIM_THREADS`, when set).
    pub const fn auto() -> Self {
        Parallelism { threads: 0 }
    }

    /// Run sequentially on the calling thread.
    pub const fn single() -> Self {
        Parallelism { threads: 1 }
    }

    /// Use exactly `threads` workers (`0` means [`Self::auto`]).
    pub const fn fixed(threads: usize) -> Self {
        Parallelism { threads }
    }

    /// Whether the thread count is resolved at run time.
    pub const fn is_auto(self) -> bool {
        self.threads == 0
    }

    /// The resolved thread count (auto → `$CDIM_THREADS` if set to a
    /// positive integer, else available parallelism, min 1).
    pub fn effective(self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = parse_thread_override(std::env::var("CDIM_THREADS").ok().as_deref()) {
            return n;
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    /// Worker count for a job of `items` units: never more workers than
    /// items, never fewer than one.
    pub fn workers_for(self, items: usize) -> usize {
        self.effective().min(items).max(1)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl From<usize> for Parallelism {
    /// The workspace-wide CLI convention: `--threads 0` = auto.
    fn from(threads: usize) -> Self {
        Parallelism::fixed(threads)
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_auto() {
            f.write_str("auto")
        } else {
            write!(f, "{}", self.threads)
        }
    }
}

/// Splits `0..len` into `shards` contiguous ranges whose sizes differ by
/// at most one (the first `len % shards` ranges get the extra item).
///
/// Pure in `(len, shards)` — the deterministic-splitting contract every
/// pool caller relies on. Returns no ranges for `len == 0` and panics if
/// `shards == 0` with work to split.
pub fn split_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    assert!(shards > 0, "cannot split {len} items over zero shards");
    let shards = shards.min(len);
    let per = len / shards;
    let extra = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = per + usize::from(s < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Runs `f(shard_index, range)` once per shard of `0..len` and returns the
/// results in shard order.
///
/// The shard layout comes from [`split_ranges`] with
/// [`Parallelism::workers_for`] shards, so it is a pure function of
/// `(len, parallelism)`. With one shard (or one worker) `f` runs inline on
/// the calling thread — no spawn, no allocation beyond the result vector —
/// which is why callers need no sequential special case.
///
/// This is the right primitive when each worker wants per-shard state (a
/// scratch buffer, an RNG stream): allocate it once inside `f` and loop
/// over the range.
pub fn parallel_map_shards<T, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let ranges = split_ranges(len, parallelism.workers_for(len));
    if ranges.len() <= 1 {
        return ranges.into_iter().enumerate().map(|(s, r)| f(s, r)).collect();
    }
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = slots.as_mut_slice();
        for (shard, range) in ranges.into_iter().enumerate() {
            let (slot, tail) = rest.split_first_mut().expect("one slot per shard");
            rest = tail;
            scope.spawn(move || *slot = Some(f(shard, range)));
        }
    });
    slots.into_iter().map(|s| s.expect("joined worker filled its slot")).collect()
}

/// Applies `f` to every index in `0..len` on up to
/// [`Parallelism::effective`] workers and returns `vec![f(0), … f(len-1)]`
/// — output identical to the sequential map for every thread count, since
/// each slot depends only on its index.
pub fn parallel_map_indexed<T, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut shards =
        parallel_map_shards(parallelism, len, |_, range| range.map(&f).collect::<Vec<T>>());
    if shards.len() == 1 {
        return shards.pop().expect("one shard");
    }
    let mut out = Vec::with_capacity(len);
    for shard in shards {
        out.extend(shard);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_all_items_contiguously() {
        for len in [0usize, 1, 2, 7, 100] {
            for shards in [1usize, 2, 3, 8] {
                let ranges = split_ranges(len, shards);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "len {len} shards {shards}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
                // Balanced: sizes differ by at most one.
                if let (Some(max), Some(min)) =
                    (ranges.iter().map(|r| r.len()).max(), ranges.iter().map(|r| r.len()).min())
                {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_ranges(10, 4), split_ranges(10, 4));
        assert_eq!(split_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(split_ranges(0, 4).is_empty());
        let out: Vec<u32> = parallel_map_indexed(Parallelism::fixed(4), 0, |_| unreachable!());
        assert!(out.is_empty());
        let shards: Vec<u32> = parallel_map_shards(Parallelism::auto(), 0, |_, _| unreachable!());
        assert!(shards.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = parallel_map_indexed(Parallelism::fixed(8), 1, |i| i + 41);
        assert_eq!(out, vec![41]);
        let shards = parallel_map_shards(Parallelism::fixed(8), 1, |s, r| (s, r));
        assert_eq!(shards, vec![(0, 0..1)]);
    }

    #[test]
    fn more_threads_than_items_caps_at_items() {
        assert_eq!(Parallelism::fixed(16).workers_for(3), 3);
        let out = parallel_map_indexed(Parallelism::fixed(16), 3, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn output_order_matches_sequential_for_every_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8, 128] {
            let got = parallel_map_indexed(Parallelism::fixed(threads), 97, |i| i * 3 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn shard_indices_are_stable_and_ordered() {
        let shards = parallel_map_shards(Parallelism::fixed(3), 10, |s, r| (s, r));
        assert_eq!(shards, vec![(0, 0..4), (1, 4..7), (2, 7..10)]);
    }

    #[test]
    fn thread_override_parses_positive_integers_only() {
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 16 ")), Some(16));
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("")), None);
        assert_eq!(parse_thread_override(Some("auto")), None);
        assert_eq!(parse_thread_override(Some("-2")), None);
        assert_eq!(parse_thread_override(None), None);
        // A fixed count always wins over the environment.
        assert_eq!(Parallelism::fixed(5).effective(), 5);
    }

    #[test]
    fn parallelism_resolution() {
        assert!(Parallelism::auto().is_auto());
        assert!(Parallelism::fixed(0).is_auto());
        assert!(!Parallelism::single().is_auto());
        assert_eq!(Parallelism::fixed(5).effective(), 5);
        assert!(Parallelism::auto().effective() >= 1);
        assert_eq!(Parallelism::from(3), Parallelism::fixed(3));
        assert_eq!(Parallelism::auto().to_string(), "auto");
        assert_eq!(Parallelism::fixed(4).to_string(), "4");
        // A zero-length job still resolves to one (idle) worker.
        assert_eq!(Parallelism::fixed(4).workers_for(0), 1);
    }
}
