//! A fixed-capacity least-recently-used cache.
//!
//! The query service keeps answers for hot seed sets behind an
//! [`LruCache`]; the cache must be O(1) per operation so a cache hit stays
//! cheap relative to recomputing a marginal gain. Entries live in a slab
//! (`Vec` of slots) threaded into an intrusive doubly-linked recency list,
//! with an [`FxHashMap`] from key to slot index. No
//! allocation happens after the cache reaches capacity: evicted slots are
//! reused in place.

use crate::hash::FxHashMap;
use std::hash::Hash;

/// Sentinel slot index meaning "no neighbour".
const NIL: usize = usize::MAX;

/// One slab slot: the entry plus its recency-list links.
#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a hard entry capacity.
///
/// `get` refreshes recency; `insert` evicts the least recently used entry
/// once the cache is full. A capacity of zero disables caching entirely
/// (every `insert` is a no-op).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot, or `NIL` when empty.
    head: usize,
    /// Least recently used slot, or `NIL` when empty.
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks `i` from the recency list.
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links `i` in as the most recently used slot.
    fn attach_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.detach(i);
            self.attach_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slots[i].value)
    }

    /// Inserts `key → value`, returning the evicted least-recently-used
    /// entry when the cache was full (or the previous value under an
    /// existing key).
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.slots[i].value, value);
            if i != self.head {
                self.detach(i);
                self.attach_front(i);
            }
            return Some((key, old));
        }
        if self.map.len() == self.capacity {
            // Reuse the LRU slot in place.
            let i = self.tail;
            self.detach(i);
            let slot = &mut self.slots[i];
            let old_key = std::mem::replace(&mut slot.key, key.clone());
            let old_value = std::mem::replace(&mut slot.value, value);
            self.map.remove(&old_key);
            self.map.insert(key, i);
            self.attach_front(i);
            return Some((old_key, old_value));
        }
        let i = self.slots.len();
        self.slots.push(Slot { key: key.clone(), value, prev: NIL, next: NIL });
        self.map.insert(key, i);
        self.attach_front(i);
        None
    }

    /// Drops every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most to least recently used (test/debug aid).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slots[i].key.clone());
            i = self.slots[i].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_hit_and_miss() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.insert(1, "a"), None);
        assert_eq!(c.insert(2, "b"), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now LRU
        assert_eq!(c.insert(3, 30), Some((2, 20)));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.insert(1, 11), Some((1, 10)));
        assert_eq!(c.keys_by_recency(), vec![1, 2]);
        c.insert(3, 30); // evicts 2, not 1
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        c.insert(3, 30); // 1 is still LRU despite the peek
        assert_eq!(c.peek(&1), None);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..3 {
            c.insert(i, i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 3);
        c.insert(9, 9);
        assert_eq!(c.get(&9), Some(&9));
    }

    #[test]
    fn heavy_churn_respects_capacity_and_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i, i * 2);
            assert!(c.len() <= 8);
        }
        let keys = c.keys_by_recency();
        assert_eq!(keys, (992..1000).rev().collect::<Vec<_>>());
        for k in 992..1000 {
            assert_eq!(c.get(&k), Some(&(k * 2)));
        }
    }
}
