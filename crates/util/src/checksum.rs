//! CRC-32 (IEEE 802.3) checksums.
//!
//! The snapshot format trailer carries a CRC over every preceding byte so
//! that a truncated or bit-flipped file is rejected at load time instead of
//! deserializing into a silently-wrong model. The reflected polynomial
//! `0xEDB88320` is the one used by zlib/PNG/Ethernet, table-driven with
//! the slicing-by-16 variant (sixteen independent table lookups per
//! 16-byte block instead of sixteen sequential per-byte steps) — with
//! memory-mapped v2 snapshots the checksum pass *is* the load, so its
//! throughput sets the serve start-up floor.
//!
//! Even sliced, a single CRC is bound by the serial dependency on the
//! running 32-bit state, not by table bandwidth. Large inputs therefore
//! take a *braided* path: each block is split into three equal streams
//! checksummed independently (three dependency chains the CPU can
//! overlap), and the per-stream CRCs are stitched back together with the
//! same GF(2) length-shift operators that power [`crc32_combine`],
//! precomputed at compile time for the fixed stream length.

/// The reflected IEEE 802.3 polynomial (zlib, PNG, Ethernet).
const POLY_IEEE: u32 = 0xEDB8_8320;

/// The reflected Castagnoli polynomial (iSCSI; what the x86 `crc32`
/// instruction implements).
const POLY_C: u32 = 0x82F6_3B78;

/// Builds slicing-by-16 lookup tables for a reflected polynomial at
/// compile time. `[0]` is the classic Sarwate byte table; `[k][n]`
/// advances the CRC of byte `n` through `k` additional zero bytes.
const fn make_tables(poly: u32) -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { poly ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][n] = c;
        n += 1;
    }
    let mut t = 1usize;
    while t < 16 {
        let mut n = 0usize;
        while n < 256 {
            let prev = tables[t - 1][n];
            tables[t][n] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            n += 1;
        }
        t += 1;
    }
    tables
}

/// Slicing-by-16 tables for CRC-32 (IEEE).
const TABLES: [[u32; 256]; 16] = make_tables(POLY_IEEE);

/// Slicing-by-16 tables for CRC-32C (Castagnoli), the software fallback
/// when the hardware instruction is unavailable.
const TABLES_C: [[u32; 256]; 16] = make_tables(POLY_C);

/// The classic one-byte-at-a-time table (tail bytes, short inputs).
const TABLE: [u32; 256] = TABLES[0];

/// Streaming CRC-32 state.
///
/// ```
/// use cdim_util::checksum::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        if rest.len() >= 3 * STREAM {
            // Braided fast path: three independent streams per block.
            // Per-stream CRCs start fresh and are stitched onto the
            // running total via the precomputed shift operators, so the
            // result is bit-identical to the straight-line scan.
            let mut total = self.state ^ 0xFFFF_FFFF;
            while rest.len() >= 3 * STREAM {
                let (block, tail) = rest.split_at(3 * STREAM);
                rest = tail;
                let (a, bc) = block.split_at(STREAM);
                let (b, c) = bc.split_at(STREAM);
                let mut ca = 0xFFFF_FFFFu32;
                let mut cb = 0xFFFF_FFFFu32;
                let mut cc = 0xFFFF_FFFFu32;
                let lanes = a.chunks_exact(16).zip(b.chunks_exact(16)).zip(c.chunks_exact(16));
                for ((ka, kb), kc) in lanes {
                    ca = step16(&TABLES, ca, ka.try_into().unwrap());
                    cb = step16(&TABLES, cb, kb.try_into().unwrap());
                    cc = step16(&TABLES, cc, kc.try_into().unwrap());
                }
                let ab = gf2_matrix_times(&OP_STREAM, ca ^ 0xFFFF_FFFF) ^ (cb ^ 0xFFFF_FFFF);
                let abc = gf2_matrix_times(&OP_STREAM, ab) ^ (cc ^ 0xFFFF_FFFF);
                total = gf2_matrix_times(&OP_BLOCK, total) ^ abc;
            }
            self.state = total ^ 0xFFFF_FFFF;
        }
        let mut c = self.state;
        let mut chunks = rest.chunks_exact(16);
        for chunk in &mut chunks {
            c = step16(&TABLES, c, chunk.try_into().unwrap());
        }
        for &b in chunks.remainder() {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The CRC over everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// One slicing-by-16 step: folds a 16-byte chunk into the running CRC.
#[inline(always)]
fn step16(tables: &[[u32; 256]; 16], c: u32, chunk: &[u8; 16]) -> u32 {
    let lo = c ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    tables[15][(lo & 0xFF) as usize]
        ^ tables[14][((lo >> 8) & 0xFF) as usize]
        ^ tables[13][((lo >> 16) & 0xFF) as usize]
        ^ tables[12][(lo >> 24) as usize]
        ^ tables[11][chunk[4] as usize]
        ^ tables[10][chunk[5] as usize]
        ^ tables[9][chunk[6] as usize]
        ^ tables[8][chunk[7] as usize]
        ^ tables[7][chunk[8] as usize]
        ^ tables[6][chunk[9] as usize]
        ^ tables[5][chunk[10] as usize]
        ^ tables[4][chunk[11] as usize]
        ^ tables[3][chunk[12] as usize]
        ^ tables[2][chunk[13] as usize]
        ^ tables[1][chunk[14] as usize]
        ^ tables[0][chunk[15] as usize]
}

/// Bytes per independent stream in the braided fast path.
const STREAM: usize = 8192;

/// GF(2) operator advancing a CRC across one stream of zero bytes.
const OP_STREAM: [u32; 32] = shift_operator(POLY_IEEE, STREAM as u64);

/// GF(2) operator advancing a CRC across one whole braided block.
const OP_BLOCK: [u32; 32] = shift_operator(POLY_IEEE, 3 * STREAM as u64);

/// CRC-32C counterparts of [`OP_STREAM`]/[`OP_BLOCK`].
const OP_STREAM_C: [u32; 32] = shift_operator(POLY_C, STREAM as u64);
const OP_BLOCK_C: [u32; 32] = shift_operator(POLY_C, 3 * STREAM as u64);

/// Multiplies the GF(2) matrix `mat` by the bit-vector `vec`.
const fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Squares the GF(2) matrix `mat`.
const fn gf2_matrix_square(mat: &[u32; 32]) -> [u32; 32] {
    let mut square = [0u32; 32];
    let mut n = 0usize;
    while n < 32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
        n += 1;
    }
    square
}

/// Multiplies two GF(2) matrices (`a ∘ b`: apply `b`, then `a`).
const fn gf2_matrix_mul(a: &[u32; 32], b: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    let mut n = 0usize;
    while n < 32 {
        out[n] = gf2_matrix_times(a, b[n]);
        n += 1;
    }
    out
}

/// The GF(2) operator that advances a CRC (reflected polynomial `poly`)
/// across `len` zero bytes — the matrix [`crc32_combine`] applies
/// bit-by-bit, materialized whole by repeated squaring so it can be
/// baked in at compile time.
const fn shift_operator(poly: u32, mut len: u64) -> [u32; 32] {
    let mut result = [0u32; 32];
    let mut n = 0usize;
    while n < 32 {
        result[n] = 1u32 << n; // identity
        n += 1;
    }
    if len == 0 {
        return result;
    }
    let mut odd = [0u32; 32]; // operator for one zero *bit*
    odd[0] = poly;
    let mut row = 1u32;
    let mut n = 1usize;
    while n < 32 {
        odd[n] = row;
        row <<= 1;
        n += 1;
    }
    let mut even = gf2_matrix_square(&odd); // two zero bits
    odd = gf2_matrix_square(&even); // four → one zero byte after next square
    loop {
        even = gf2_matrix_square(&odd);
        if len & 1 != 0 {
            result = gf2_matrix_mul(&even, &result);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
        odd = gf2_matrix_square(&even);
        if len & 1 != 0 {
            result = gf2_matrix_mul(&odd, &result);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
    }
    result
}

/// CRC-32 of the concatenation `A ‖ B` given `crc32(A)`, `crc32(B)` and
/// `B`'s length — zlib's `crc32_combine`. Appending `len2` bytes to `A`
/// advances its CRC by a linear operator over GF(2); this applies that
/// operator (as a 32×32 bit matrix raised to the `len2`-th power by
/// repeated squaring) to `crc1` and folds in `crc2`.
pub fn crc32_combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    gf2_matrix_times(&shift_operator(POLY_IEEE, len2), crc1) ^ crc2
}

/// Shards below this size are not worth a thread.
const PARALLEL_CRC_SHARD: usize = 1 << 21;

/// One-shot CRC-32 of `bytes`, sharded across up to
/// [`crate::Parallelism::effective`] worker threads and stitched back together
/// with [`crc32_combine`] — bit-identical to [`crc32`] at every input
/// size and thread count. Inputs under a couple of MiB run inline.
pub fn crc32_parallel(bytes: &[u8], parallelism: crate::Parallelism) -> u32 {
    let want = bytes.len() / PARALLEL_CRC_SHARD;
    if want <= 1 {
        return crc32(bytes);
    }
    let shards = crate::pool::split_ranges(bytes.len(), want.min(parallelism.effective()));
    let pieces = crate::pool::parallel_map_shards(parallelism, shards.len(), |_, idx| {
        idx.map(|i| {
            let range = shards[i].clone();
            (crc32(&bytes[range.clone()]), range.len() as u64)
        })
        .collect::<Vec<_>>()
    });
    let mut combined: Option<u32> = None;
    for (crc, len) in pieces.into_iter().flatten() {
        combined = Some(match combined {
            None => crc,
            Some(acc) => crc32_combine(acc, crc, len),
        });
    }
    combined.unwrap_or(0)
}

/// One-shot CRC-32C (Castagnoli) of `bytes` — the v2 snapshot trailer
/// checksum (check value `0xE306_9283`). On x86-64 with SSE 4.2 the
/// braided streams ride the hardware `crc32` instruction (three-cycle
/// latency, single-cycle throughput — three independent chains run ~3×
/// faster than one and an order of magnitude faster than tables);
/// elsewhere the same braid runs on slicing-by-16 tables.
pub fn crc32c(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the required CPU feature was just detected.
        return unsafe { crc32c_hw(bytes) };
    }
    crc32c_sw(bytes)
}

/// Hardware CRC-32C. Same braid as [`Crc32::update`], with the
/// per-stream loops on `_mm_crc32_u64` instead of table lookups.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut state = 0xFFFF_FFFFu32;
    let mut rest = bytes;
    if rest.len() >= 3 * STREAM {
        let mut total = state ^ 0xFFFF_FFFF;
        while rest.len() >= 3 * STREAM {
            let (block, tail) = rest.split_at(3 * STREAM);
            rest = tail;
            let (a, bc) = block.split_at(STREAM);
            let (b, c) = bc.split_at(STREAM);
            let mut ca = 0xFFFF_FFFFu64;
            let mut cb = 0xFFFF_FFFFu64;
            let mut cc = 0xFFFF_FFFFu64;
            let lanes = a.chunks_exact(8).zip(b.chunks_exact(8)).zip(c.chunks_exact(8));
            for ((ka, kb), kc) in lanes {
                ca = _mm_crc32_u64(ca, u64::from_le_bytes(ka.try_into().unwrap()));
                cb = _mm_crc32_u64(cb, u64::from_le_bytes(kb.try_into().unwrap()));
                cc = _mm_crc32_u64(cc, u64::from_le_bytes(kc.try_into().unwrap()));
            }
            let ab =
                gf2_matrix_times(&OP_STREAM_C, ca as u32 ^ 0xFFFF_FFFF) ^ (cb as u32 ^ 0xFFFF_FFFF);
            let abc = gf2_matrix_times(&OP_STREAM_C, ab) ^ (cc as u32 ^ 0xFFFF_FFFF);
            total = gf2_matrix_times(&OP_BLOCK_C, total) ^ abc;
        }
        state = total ^ 0xFFFF_FFFF;
    }
    let mut c = u64::from(state);
    let mut chunks = rest.chunks_exact(8);
    for chunk in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c ^ 0xFFFF_FFFF
}

/// Software CRC-32C: the table braid with the Castagnoli tables and
/// operators. (Also the reference the hardware path is tested against.)
fn crc32c_sw(bytes: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    let mut rest = bytes;
    if rest.len() >= 3 * STREAM {
        let mut total = state ^ 0xFFFF_FFFF;
        while rest.len() >= 3 * STREAM {
            let (block, tail) = rest.split_at(3 * STREAM);
            rest = tail;
            let (a, bc) = block.split_at(STREAM);
            let (b, c) = bc.split_at(STREAM);
            let mut ca = 0xFFFF_FFFFu32;
            let mut cb = 0xFFFF_FFFFu32;
            let mut cc = 0xFFFF_FFFFu32;
            let lanes = a.chunks_exact(16).zip(b.chunks_exact(16)).zip(c.chunks_exact(16));
            for ((ka, kb), kc) in lanes {
                ca = step16(&TABLES_C, ca, ka.try_into().unwrap());
                cb = step16(&TABLES_C, cb, kb.try_into().unwrap());
                cc = step16(&TABLES_C, cc, kc.try_into().unwrap());
            }
            let ab = gf2_matrix_times(&OP_STREAM_C, ca ^ 0xFFFF_FFFF) ^ (cb ^ 0xFFFF_FFFF);
            let abc = gf2_matrix_times(&OP_STREAM_C, ab) ^ (cc ^ 0xFFFF_FFFF);
            total = gf2_matrix_times(&OP_BLOCK_C, total) ^ abc;
        }
        state = total ^ 0xFFFF_FFFF;
    }
    let mut c = state;
    let mut chunks = rest.chunks_exact(16);
    for chunk in &mut chunks {
        c = step16(&TABLES_C, c, chunk.try_into().unwrap());
    }
    for &b in chunks.remainder() {
        c = TABLES_C[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(&data));
    }

    #[test]
    fn braided_path_matches_bytewise_reference() {
        // 100 KB crosses the braid threshold several times over; the
        // reference is the classic one-byte-at-a-time recurrence.
        let data: Vec<u8> = (0..100_000).map(|i| (i * 131 % 256) as u8).collect();
        let mut c = 0xFFFF_FFFFu32;
        for &b in &data {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        assert_eq!(crc32(&data), c ^ 0xFFFF_FFFF);
        // Streaming updates that start and stop mid-block must agree too.
        for chunk_len in [1_000usize, 24_576, 30_000, 99_999] {
            let mut s = Crc32::new();
            for chunk in data.chunks(chunk_len) {
                s.update(chunk);
            }
            assert_eq!(s.finish(), crc32(&data), "chunk len {chunk_len}");
        }
    }

    #[test]
    fn combine_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(70_001).collect();
        for split in [0usize, 1, 9, 4096, 70_000, 70_001] {
            let (a, b) = data.split_at(split);
            let combined = crc32_combine(crc32(a), crc32(b), b.len() as u64);
            assert_eq!(combined, crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn parallel_matches_serial_across_sizes() {
        for len in [0usize, 100, PARALLEL_CRC_SHARD - 1, 3 * PARALLEL_CRC_SHARD + 17] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            for threads in [1usize, 2, 5] {
                assert_eq!(
                    crc32_parallel(&data, crate::Parallelism::fixed(threads)),
                    crc32(&data),
                    "len {len}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn crc32c_matches_check_value() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_hardware_matches_software() {
        // Lengths straddling the braid threshold and odd tails; on
        // machines without SSE 4.2 this degenerates to sw == sw.
        for len in [0usize, 1, 7, 15, 100, 3 * STREAM - 1, 3 * STREAM, 100_000, 6 * STREAM + 13] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            assert_eq!(crc32c(&data), crc32c_sw(&data), "len {len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[10] = 0x5A;
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
