//! CRC-32 (IEEE 802.3) checksums.
//!
//! The snapshot format trailer carries a CRC over every preceding byte so
//! that a truncated or bit-flipped file is rejected at load time instead of
//! deserializing into a silently-wrong model. The reflected polynomial
//! `0xEDB88320` is the one used by zlib/PNG/Ethernet, table-driven, one
//! byte at a time — plenty fast for snapshot-sized inputs.

/// The reflected CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// Streaming CRC-32 state.
///
/// ```
/// use cdim_util::checksum::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"1234");
/// crc.update(b"56789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The CRC over everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[10] = 0x5A;
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
