//! 8-byte-aligned buffers and checked byte reinterpretation.
//!
//! The zero-copy snapshot path (format v2) stores CSR arrays verbatim and
//! *reinterprets* file bytes as `&[u32]`/`&[u64]`/`&[f64]` slices instead
//! of decoding per entry. Two ingredients make that sound:
//!
//! * [`AlignedBuf`] — a read-only byte buffer whose base address is
//!   guaranteed 8-byte-aligned, either owned (backed by a `Vec<u64>`
//!   allocation, so the guarantee comes from the allocator) or a private
//!   read-only file mapping (page-aligned, so 8-alignment is implied).
//!   N processes mapping the same snapshot share one physical copy.
//! * the `cast_slice_*` helpers — reinterpret a `&[u8]` as a typed slice
//!   *only after* checking pointer alignment and length divisibility,
//!   returning `None` instead of exhibiting undefined behavior on
//!   misaligned input.
//!
//! Reinterpretation is native-endian; the snapshot format is defined as
//! little-endian, so the v2 loader gates on `cfg(target_endian =
//! "little")` and falls back to a typed error elsewhere.

use crate::mem::HeapSize;
use std::io::Read;
use std::path::Path;

/// A read-only byte buffer with a guaranteed 8-byte-aligned base address.
///
/// Construction is either *owned* (copy/read the bytes into a `Vec<u64>`
/// allocation) or, on Unix, a private read-only `mmap` of a file. Both
/// variants deref to `&[u8]`; the mapped variant is never mutated and is
/// unmapped on drop.
pub struct AlignedBuf {
    inner: Inner,
}

enum Inner {
    /// `storage` owns ⌈len/8⌉ words; only the first `len` bytes are the
    /// buffer's contents.
    Owned { storage: Vec<u64>, len: usize },
    #[cfg(unix)]
    /// A private read-only mapping of `len` bytes at `ptr`.
    Mmap { ptr: *mut u8, len: usize },
}

// SAFETY: the mapped variant is an exclusively-owned, read-only, private
// mapping — no aliasing mutation can occur, so sharing references across
// threads (Sync) and moving ownership between threads (Send) are both
// sound. The owned variant is a plain Vec.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// An owned, zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> AlignedBuf {
        AlignedBuf { inner: Inner::Owned { storage: vec![0u64; len.div_ceil(8)], len } }
    }

    /// Copies `bytes` into an owned aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let mut buf = AlignedBuf::zeroed(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        buf
    }

    /// Reads the whole file at `path` into an owned aligned buffer — the
    /// std-only fallback load path (one read, no per-entry work).
    pub fn read_file(path: &Path) -> std::io::Result<AlignedBuf> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large for this platform")
        })?;
        let mut buf = AlignedBuf::zeroed(len);
        file.read_exact(buf.as_mut_slice())?;
        Ok(buf)
    }

    /// Maps the file at `path` read-only (Unix), falling back to
    /// [`read_file`](Self::read_file) for empty files or when mapping is
    /// unavailable on the platform.
    pub fn map_or_read_file(path: &Path) -> std::io::Result<AlignedBuf> {
        #[cfg(unix)]
        {
            Self::mmap_file(path).or_else(|_| Self::read_file(path))
        }
        #[cfg(not(unix))]
        Self::read_file(path)
    }

    /// Maps the file at `path` as a private read-only mapping.
    ///
    /// Zero-length files are returned as an (empty) owned buffer — a
    /// zero-length `mmap` is an error on POSIX.
    #[cfg(unix)]
    pub fn mmap_file(path: &Path) -> std::io::Result<AlignedBuf> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large for this platform")
        })?;
        if len == 0 {
            return Ok(AlignedBuf::zeroed(0));
        }
        // SAFETY: requests a fresh private read-only mapping of `len`
        // bytes over an open fd; the kernel picks the address. The file
        // could in principle be truncated by another process while mapped
        // (making page faults fatal), but snapshots are written via
        // tmp+rename and never truncated in place — the same contract the
        // read() path relies on for a consistent byte stream.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(AlignedBuf { inner: Inner::Mmap { ptr: ptr.cast(), len } })
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Owned { storage, len } => {
                // SAFETY: `storage` owns ≥ `len` initialized bytes and u64
                // has alignment ≥ 1; reborrowing as bytes is always valid.
                unsafe { std::slice::from_raw_parts(storage.as_ptr().cast(), *len) }
            }
            #[cfg(unix)]
            Inner::Mmap { ptr, len } => {
                // SAFETY: the mapping covers exactly `len` readable bytes
                // and lives until drop; no mutable aliases exist.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
        }
    }

    /// Mutable view of an *owned* buffer (used while building an arena).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is a file mapping — mapped buffers are
    /// read-only by construction.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        match &mut self.inner {
            Inner::Owned { storage, len } => {
                // SAFETY: as in `as_slice`, plus `&mut self` guarantees
                // exclusive access.
                unsafe { std::slice::from_raw_parts_mut(storage.as_mut_ptr().cast(), *len) }
            }
            #[cfg(unix)]
            Inner::Mmap { .. } => panic!("AlignedBuf: cannot mutably borrow a file mapping"),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Owned { len, .. } => *len,
            #[cfg(unix)]
            Inner::Mmap { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the buffer is a shared file mapping (vs owned memory).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            Inner::Owned { .. } => false,
            #[cfg(unix)]
            Inner::Mmap { .. } => true,
        }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mmap { ptr, len } = self.inner {
            // SAFETY: `ptr`/`len` describe a mapping created by mmap in
            // `mmap_file` and not yet unmapped (drop runs once).
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

impl HeapSize for AlignedBuf {
    /// Resident bytes of the buffer. Mapped pages count too: they are the
    /// model's working set even when physically shared between processes.
    fn heap_bytes(&self) -> usize {
        match &self.inner {
            Inner::Owned { storage, .. } => storage.capacity() * 8,
            #[cfg(unix)]
            Inner::Mmap { len, .. } => *len,
        }
    }
}

/// Raw POSIX mmap bindings (the workspace links no external crates; these
/// constants are identical on every Tier-1 Unix target).
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    /// Pages may be read.
    pub const PROT_READ: i32 = 1;
    /// Changes are private (never written back; the mapping is read-only
    /// anyway).
    pub const MAP_PRIVATE: i32 = 2;
    /// `(void *) -1`, the POSIX mmap failure sentinel.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

macro_rules! cast_fns {
    ($name:ident, $name_mut:ident, $t:ty) => {
        /// Reinterprets `bytes` as a typed slice, or `None` when the
        /// pointer is not aligned for the target type or the length is not
        /// a multiple of its size.
        ///
        /// The reinterpretation is native-endian; callers serializing
        /// cross-platform data must pin the byte order themselves.
        pub fn $name(bytes: &[u8]) -> Option<&[$t]> {
            let size = std::mem::size_of::<$t>();
            if bytes.as_ptr() as usize % std::mem::align_of::<$t>() != 0 || bytes.len() % size != 0
            {
                return None;
            }
            // SAFETY: alignment and length divisibility were just
            // checked; the target type has no invalid bit patterns; the
            // returned slice borrows `bytes`, so the memory outlives it.
            Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / size) })
        }

        /// Mutable variant of the same checked reinterpretation.
        pub fn $name_mut(bytes: &mut [u8]) -> Option<&mut [$t]> {
            let size = std::mem::size_of::<$t>();
            if bytes.as_ptr() as usize % std::mem::align_of::<$t>() != 0 || bytes.len() % size != 0
            {
                return None;
            }
            // SAFETY: as above, plus exclusivity is inherited from the
            // `&mut` borrow.
            Some(unsafe {
                std::slice::from_raw_parts_mut(bytes.as_mut_ptr().cast(), bytes.len() / size)
            })
        }
    };
}

cast_fns!(cast_slice_u32, cast_slice_u32_mut, u32);
cast_fns!(cast_slice_u64, cast_slice_u64_mut, u64);
cast_fns!(cast_slice_f64, cast_slice_f64_mut, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_buffer_is_aligned_and_zeroed() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_ptr() as usize % 8, 0, "len {len}");
            assert!(buf.iter().all(|&b| b == 0));
            assert!(!buf.is_mapped());
        }
    }

    #[test]
    fn from_bytes_round_trips() {
        let data: Vec<u8> = (0..100u8).collect();
        let buf = AlignedBuf::from_bytes(&data);
        assert_eq!(&buf[..], &data[..]);
    }

    #[test]
    fn casts_require_alignment_and_divisibility() {
        let mut buf = AlignedBuf::zeroed(24);
        cast_slice_u64_mut(buf.as_mut_slice()).unwrap()[1] = 0xDEAD_BEEF;
        let words = cast_slice_u64(&buf).unwrap();
        assert_eq!(words, &[0, 0xDEAD_BEEF, 0]);
        assert_eq!(cast_slice_u32(&buf).unwrap().len(), 6);
        assert_eq!(cast_slice_f64(&buf).unwrap().len(), 3);
        // Misaligned base → None (offset by one byte off an aligned base).
        assert!(cast_slice_u64(&buf[1..17]).is_none());
        // Non-multiple length → None.
        assert!(cast_slice_u64(&buf[..12]).is_none());
        // Empty slices always cast.
        assert_eq!(cast_slice_f64(&buf[..0]).unwrap().len(), 0);
    }

    #[test]
    fn file_read_and_map_agree() {
        let dir = std::env::temp_dir().join(format!("cdim_bytes_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &data).unwrap();

        let read = AlignedBuf::read_file(&path).unwrap();
        assert_eq!(&read[..], &data[..]);
        let mapped = AlignedBuf::map_or_read_file(&path).unwrap();
        assert_eq!(&mapped[..], &data[..]);
        assert_eq!(mapped.as_ptr() as usize % 8, 0);
        #[cfg(unix)]
        {
            let mm = AlignedBuf::mmap_file(&path).unwrap();
            assert!(mm.is_mapped());
            assert_eq!(&mm[..], &data[..]);
            assert!(mm.heap_bytes() >= data.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_owned_buffer() {
        let dir = std::env::temp_dir().join(format!("cdim_bytes_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let buf = AlignedBuf::map_or_read_file(&path).unwrap();
        assert!(buf.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
