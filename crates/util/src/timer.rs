//! A tiny stopwatch for the runtime experiments (Figs 7–8, Table 4).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Nanoseconds elapsed since the first call in this process.
///
/// Every subsystem that stamps trace spans must share one monotonic
/// timebase, otherwise spans recorded in different crates cannot be
/// ordered against each other. The epoch is pinned lazily by whichever
/// caller gets here first, so the very first reading is `0`.
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Wall-clock stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Timer { start: Instant::now() }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the previous elapsed time.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Formats a duration compactly (`850ms`, `3.2s`, `2m05s`).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1000.0)
    } else if secs < 60.0 {
        format!("{secs:.2}s")
    } else {
        let minutes = (secs / 60.0).floor() as u64;
        format!("{minutes}m{:04.1}s", secs - minutes as f64 * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ns_is_monotone() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }

    #[test]
    fn elapsed_is_monotone() {
        let t = Timer::start();
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = t.lap();
        assert!(first >= Duration::from_millis(1));
        assert!(t.elapsed() < first + Duration::from_millis(50));
    }

    #[test]
    fn formats_ranges() {
        assert_eq!(fmt_duration(Duration::from_millis(850)), "850ms");
        assert_eq!(fmt_duration(Duration::from_secs_f64(3.25)), "3.25s");
        assert_eq!(fmt_duration(Duration::from_secs(125)), "2m05.0s");
    }
}
