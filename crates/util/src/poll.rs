//! Readiness polling over raw `epoll` with a portable `poll(2)` fallback.
//!
//! The serving reactor needs level-triggered readiness notification for
//! thousands of sockets, and the workspace links no external crates, so
//! this module binds the two POSIX interfaces directly (the same way
//! [`crate::bytes`] binds `mmap`). [`Poller::new`] picks `epoll` on Linux
//! and `poll(2)` everywhere else; setting `CDIM_POLL_BACKEND=poll` forces
//! the fallback so tests exercise both code paths on one machine.
//!
//! The registration model is the minimal one the reactor needs:
//!
//! * every registered fd carries a caller-chosen `u64` token that comes
//!   back verbatim in [`Event::token`];
//! * interest is level-triggered [`Interest::READABLE`] and/or
//!   [`Interest::WRITABLE`] — re-armed implicitly, never edge-triggered;
//! * peer hangup and socket errors surface as `readable` (so one read
//!   attempt observes the condition) plus the explicit [`Event::closed`]
//!   flag.
//!
//! [`WakePipe`] is the standard self-pipe trick: a nonblocking pipe whose
//! read end is registered with the poller, so another thread can interrupt
//! a blocked [`Poller::wait`] deterministically (used for shutdown and for
//! worker-completion notification).

#![allow(clippy::upper_case_acronyms)]

use std::io;
use std::time::Duration;

/// Which readiness conditions a registration wants reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Report when the fd has bytes to read (or the peer hung up).
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Report when the fd can accept writes without blocking.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Report both conditions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Report neither — the fd stays registered (hangup/error still
    /// surface) but delivers no readiness, e.g. a fully backpressured
    /// connection.
    pub const NONE: Interest = Interest { readable: false, writable: false };

    /// True when read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// True when write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (bytes buffered, pending accept, or EOF/error —
    /// a read attempt will not block and will observe the condition).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the socket errored; the connection is done.
    pub closed: bool,
}

/// Which kernel interface a [`Poller`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollBackend {
    /// Linux `epoll(7)` — O(ready) wakeups, the default on Linux.
    Epoll,
    /// POSIX `poll(2)` — O(registered) per wait, portable everywhere.
    Poll,
}

/// A level-triggered readiness poller (see the module docs).
pub struct Poller {
    imp: Imp,
}

enum Imp {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: i32,
        /// fd → token, so `deregister` only needs the fd and `wait` can
        /// skip events for fds removed mid-batch.
        registered: Vec<(i32, u64)>,
    },
    Poll {
        /// fd → (token, interest); rebuilt into a `pollfd` array per wait.
        entries: Vec<(i32, u64, Interest)>,
        /// Scratch `pollfd` buffer reused across waits.
        scratch: Vec<sys::PollFd>,
    },
}

impl Poller {
    /// Opens a poller on the platform-default backend (`epoll` on Linux,
    /// `poll(2)` elsewhere). `CDIM_POLL_BACKEND=poll` forces the fallback.
    pub fn new() -> io::Result<Poller> {
        let force_poll = std::env::var("CDIM_POLL_BACKEND").is_ok_and(|v| v == "poll");
        if force_poll {
            Poller::with_backend(PollBackend::Poll)
        } else {
            Poller::with_backend(default_backend())
        }
    }

    /// Opens a poller on an explicit backend. Requesting
    /// [`PollBackend::Epoll`] off Linux yields `Unsupported`.
    pub fn with_backend(backend: PollBackend) -> io::Result<Poller> {
        match backend {
            PollBackend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    // SAFETY: plain syscall, no pointers.
                    let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
                    if epfd < 0 {
                        return Err(io::Error::last_os_error());
                    }
                    Ok(Poller { imp: Imp::Epoll { epfd, registered: Vec::new() } })
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll is Linux-only; use PollBackend::Poll",
                    ))
                }
            }
            PollBackend::Poll => {
                Ok(Poller { imp: Imp::Poll { entries: Vec::new(), scratch: Vec::new() } })
            }
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> PollBackend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { .. } => PollBackend::Epoll,
            Imp::Poll { .. } => PollBackend::Poll,
        }
    }

    /// Number of currently registered fds.
    pub fn registered(&self) -> usize {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { registered, .. } => registered.len(),
            Imp::Poll { entries, .. } => entries.len(),
        }
    }

    /// Starts watching `fd` with `interest`; `token` comes back in every
    /// event for this fd. Registering an already-registered fd is an error
    /// on the epoll backend (use [`Poller::modify`]).
    pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, registered } => {
                let mut ev = sys::EpollEvent { events: epoll_mask(interest), data: token };
                // SAFETY: `ev` outlives the call; the kernel copies it.
                let rc = unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                registered.push((fd, token));
                Ok(())
            }
            Imp::Poll { entries, .. } => {
                if entries.iter().any(|&(f, _, _)| f == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set (and token) of a registered fd.
    pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, registered } => {
                let mut ev = sys::EpollEvent { events: epoll_mask(interest), data: token };
                // SAFETY: `ev` outlives the call; the kernel copies it.
                let rc = unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                if let Some(slot) = registered.iter_mut().find(|(f, _)| *f == fd) {
                    slot.1 = token;
                }
                Ok(())
            }
            Imp::Poll { entries, .. } => match entries.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    slot.1 = token;
                    slot.2 = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            },
        }
    }

    /// Stops watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, registered } => {
                // A null event pointer is fine for DEL on kernels >= 2.6.9.
                let rc = // SAFETY: plain syscall; DEL ignores the event arg.
                    unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
                registered.retain(|&(f, _)| f != fd);
                Ok(())
            }
            Imp::Poll { entries, .. } => {
                let before = entries.len();
                entries.retain(|&(f, _, _)| f != fd);
                if entries.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever), appending to `events` (which is
    /// cleared first). A signal interruption returns `Ok(0)` — callers
    /// loop anyway. Returns the number of events delivered.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms = timeout_millis(timeout);
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll { epfd, registered } => {
                let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
                let rc = // SAFETY: `buf` is a valid writable array of len 256.
                    unsafe { sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                let _ = registered;
                for ev in buf.iter().take(rc as usize) {
                    let bits = ev.events;
                    let closed = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    events.push(Event {
                        token: ev.data,
                        readable: bits & sys::EPOLLIN != 0 || closed,
                        writable: bits & sys::EPOLLOUT != 0,
                        closed,
                    });
                }
                Ok(events.len())
            }
            Imp::Poll { entries, scratch } => {
                scratch.clear();
                for &(fd, _, interest) in entries.iter() {
                    let mut mask: i16 = 0;
                    if interest.is_readable() {
                        mask |= sys::POLLIN;
                    }
                    if interest.is_writable() {
                        mask |= sys::POLLOUT;
                    }
                    scratch.push(sys::PollFd { fd, events: mask, revents: 0 });
                }
                let rc = // SAFETY: `scratch` is a valid pollfd array of the stated length.
                    unsafe { sys::poll(scratch.as_mut_ptr(), scratch.len() as sys::NfdsT, timeout_ms) };
                if rc < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                for (pfd, &(_, token, _)) in scratch.iter().zip(entries.iter()) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    let closed = bits & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                    events.push(Event {
                        token,
                        readable: bits & sys::POLLIN != 0 || closed,
                        writable: bits & sys::POLLOUT != 0,
                        closed,
                    });
                }
                Ok(events.len())
            }
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        if let Imp::Epoll { epfd, .. } = self.imp {
            // SAFETY: epfd was returned by epoll_create1 and is owned here.
            unsafe { sys::close(epfd) };
        }
    }
}

fn default_backend() -> PollBackend {
    #[cfg(target_os = "linux")]
    {
        PollBackend::Epoll
    }
    #[cfg(not(target_os = "linux"))]
    {
        PollBackend::Poll
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = 0;
    if interest.is_readable() {
        mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if interest.is_writable() {
        mask |= sys::EPOLLOUT;
    }
    mask
}

/// `poll`/`epoll_wait` timeout convention: -1 = forever, else milliseconds
/// (sub-millisecond nonzero waits round up so they don't spin).
fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

/// A nonblocking self-pipe for waking a blocked [`Poller::wait`] from
/// another thread. Register [`WakePipe::read_fd`] for readability; call
/// [`WakePipe::wake`] from anywhere; call [`WakePipe::drain`] in the
/// event handler to re-arm.
pub struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

// The fds are only ever read/written with single-byte nonblocking I/O,
// which is thread-safe at the kernel level.
// SAFETY: see above — no shared mutable Rust state, just raw fds.
unsafe impl Send for WakePipe {}
// SAFETY: same argument as Send.
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Opens the pipe with both ends nonblocking and close-on-exec.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element array the kernel fills.
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe { read_fd: fds[0], write_fd: fds[1] })
    }

    /// The end to register with the poller ([`Interest::READABLE`]).
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// Makes the read end readable. A full pipe (`EAGAIN`) already
    /// guarantees a pending wakeup, so that case is silently a success.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: valid 1-byte buffer; short/failed writes are fine.
        unsafe { sys::write(self.write_fd, byte.as_ptr().cast(), 1) };
    }

    /// Consumes all pending wakeup bytes so level-triggered polling
    /// re-arms. Returns how many bytes were drained.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: valid buffer of the stated length.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return total;
            }
            total += n as usize;
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both fds came from pipe2 and are owned by this struct.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// Raises the process `RLIMIT_NOFILE` soft limit toward `want` (clamped
/// to the hard limit) and returns the resulting soft limit. A soft limit
/// already at or above `want` is returned unchanged.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = sys::Rlimit { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: `lim` is a valid rlimit struct the kernel fills.
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    let target = want.min(lim.rlim_max);
    let new = sys::Rlimit { rlim_cur: target, rlim_max: lim.rlim_max };
    // SAFETY: `new` is a valid rlimit struct; the kernel copies it.
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &new) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

/// Raw POSIX bindings (the workspace links no external crates; these
/// constants match the Linux and BSD ABIs for the subset used here).
mod sys {
    use std::ffi::c_void;

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;
    pub const POLLNVAL: i16 = 0x20;

    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x1;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x4;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x8;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x10;
    #[cfg(target_os = "linux")]
    pub const EPOLLRDHUP: u32 = 0x2000;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: i32 = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: i32 = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: i32 = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: i32 = 0x80000;

    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0x800;
    #[cfg(target_os = "linux")]
    pub const O_CLOEXEC: i32 = 0x80000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x4;
    #[cfg(not(target_os = "linux"))]
    pub const O_CLOEXEC: i32 = 0x1000000;

    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: i32 = 8;

    /// `nfds_t`: unsigned long on every supported target.
    pub type NfdsT = std::os::raw::c_ulong;

    /// `struct pollfd` (identical layout on Linux and the BSDs).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// `struct epoll_event` — packed on x86-64, natural elsewhere.
    #[cfg(target_os = "linux")]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct rlimit` (u64 fields on all LP64 targets).
    #[repr(C)]
    pub struct Rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout_ms: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
        #[cfg(target_os = "linux")]
        pub fn pipe2(fds: *mut i32, flags: i32) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: i32) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: i32,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
    }

    /// Non-Linux fallback: `pipe` + `fcntl` to set the flags after the
    /// fact (`pipe2` is not in POSIX).
    #[cfg(not(target_os = "linux"))]
    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    /// Emulates Linux `pipe2` on other Unixes.
    ///
    /// # Safety
    /// `fds` must point to a writable 2-element array.
    #[cfg(not(target_os = "linux"))]
    pub unsafe fn pipe2(fds: *mut i32, flags: i32) -> i32 {
        const F_SETFL: i32 = 4;
        const F_SETFD: i32 = 2;
        const FD_CLOEXEC: i32 = 1;
        if pipe(fds) < 0 {
            return -1;
        }
        for i in 0..2 {
            let fd = *fds.add(i);
            if flags & O_NONBLOCK != 0 {
                fcntl(fd, F_SETFL, O_NONBLOCK);
            }
            if flags & O_CLOEXEC != 0 {
                fcntl(fd, F_SETFD, FD_CLOEXEC);
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<PollBackend> {
        let mut v = vec![PollBackend::Poll];
        if cfg!(target_os = "linux") {
            v.push(PollBackend::Epoll);
        }
        v
    }

    #[test]
    fn wake_pipe_reports_readable_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let pipe = WakePipe::new().unwrap();
            poller.register(pipe.read_fd(), 7, Interest::READABLE).unwrap();

            let mut events = Vec::new();
            // Nothing written yet: a short wait times out empty.
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "{backend:?}");

            pipe.wake();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: still readable until drained.
            let n = poller.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
            assert_eq!(n, 1, "{backend:?} should stay level-triggered");
            assert!(pipe.drain() >= 1);
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "{backend:?} drained pipe must be quiet");

            poller.deregister(pipe.read_fd()).unwrap();
            assert_eq!(poller.registered(), 0);
        }
    }

    #[test]
    fn cross_thread_wake_interrupts_a_long_wait() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
            poller.register(pipe.read_fd(), 1, Interest::READABLE).unwrap();

            let waker = std::sync::Arc::clone(&pipe);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
            });
            let start = std::time::Instant::now();
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert!(start.elapsed() < Duration::from_secs(10));
            t.join().unwrap();
        }
    }

    #[test]
    fn writable_interest_fires_for_an_empty_pipe() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let pipe = WakePipe::new().unwrap();
            // The write end of an empty pipe is immediately writable.
            poller.register(pipe.write_fd, 9, Interest::WRITABLE).unwrap();
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert!(events[0].writable);
            assert!(!events[0].closed);

            // Dropping read interest entirely: modify to readable-only on a
            // write end never fires.
            poller.modify(pipe.write_fd, 9, Interest::READABLE).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "{backend:?}");
        }
    }

    #[test]
    fn hangup_surfaces_as_closed_and_readable() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let pipe = WakePipe::new().unwrap();
            poller.register(pipe.read_fd(), 3, Interest::READABLE).unwrap();
            // SAFETY: closing the write end is exactly the hangup under test;
            // Drop later closes it again harmlessly (the fd number may be
            // reused, so neutralize it instead).
            unsafe { sys::close(pipe.write_fd) };
            let pipe = std::mem::ManuallyDrop::new(pipe);
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert!(events[0].closed, "{backend:?}");
            assert!(events[0].readable, "{backend:?}");
            poller.deregister(pipe.read_fd()).unwrap();
            // SAFETY: read end is still open and owned; close it once.
            unsafe { sys::close(pipe.read_fd) };
        }
    }

    #[test]
    fn env_override_forces_the_poll_backend() {
        // Can't mutate the environment safely in-process (other tests run
        // concurrently), so just check the selection logic's two halves.
        assert_eq!(Poller::with_backend(PollBackend::Poll).unwrap().backend(), PollBackend::Poll);
        let default = Poller::new().unwrap().backend();
        if std::env::var("CDIM_POLL_BACKEND").is_ok_and(|v| v == "poll") {
            assert_eq!(default, PollBackend::Poll);
        }
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        let current = raise_nofile_limit(0).unwrap();
        assert!(current > 0);
        // Asking for what we already have is a no-op success.
        assert_eq!(raise_nofile_limit(current).unwrap(), current);
    }

    #[test]
    fn timeout_millis_convention() {
        assert_eq!(timeout_millis(None), -1);
        assert_eq!(timeout_millis(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_millis(Some(Duration::from_micros(10))), 1);
        assert_eq!(timeout_millis(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_millis(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
