//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256\*\* generator seeded through SplitMix64. All
//! randomized components in the workspace (Monte-Carlo simulation, synthetic
//! data generation, trivalency assignment, perturbation) take an explicit
//! [`Rng`] or a `u64` seed so that every experiment is reproducible
//! bit-for-bit, independent of platform or process layout.

/// xoshiro256\*\* pseudo-random number generator.
///
/// Period 2^256 − 1, passes BigCrush; the reference generator of Blackman &
/// Vigna. Not cryptographically secure — it drives simulations, not secrets.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Derives an independent child generator; useful for handing one stream
    /// per thread or per cascade without correlating them.
    pub fn fork(&mut self) -> Self {
        Rng::seed_from_u64(self.next_u64() ^ 0xa076_1d64_78bd_642f)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Exponentially distributed sample with the given mean (`mean > 0`).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; 1 - f64() is in (0, 1], so ln is finite.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Poisson-distributed sample with the given mean (Knuth's method;
    /// intended for small λ — cost is O(λ)).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0);
        if lambda <= 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Standard normal sample (Box–Muller; one of the pair is discarded to
    /// keep the generator stateless beyond its 256-bit core).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Reservoir-samples `k` distinct indices from `[0, n)`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

/// Zipf-distributed integer sampler over `{1, …, n}` with exponent `s`.
///
/// Built once (O(n) table) and sampled in O(log n) by binary-searching the
/// CDF. Propagation-trace sizes and initiator counts in real logs are
/// heavy-tailed, which this reproduces in the synthetic generator.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `{1, …, n}` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be nonempty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a sample in `{1, …, n}`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts = {counts:?}");
        }
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn poisson_mean_and_degenerate_cases() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 30_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(2.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean = {mean}");
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed_from_u64(9);
        let picked = rng.sample_indices(1000, 50);
        assert_eq!(picked.len(), 50);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 50);
        assert!(picked.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_clamps_k() {
        let mut rng = Rng::seed_from_u64(9);
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let zipf = Zipf::new(100, 2.0);
        let mut rng = Rng::seed_from_u64(21);
        let mut ones = 0;
        let n = 10_000;
        for _ in 0..n {
            let s = zipf.sample(&mut rng);
            assert!((1..=100).contains(&s));
            if s == 1 {
                ones += 1;
            }
        }
        // P(1) = 1/zeta_100(2) ≈ 0.62 for s=2.
        assert!(ones > n / 2, "ones = {ones}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng::seed_from_u64(1);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
