//! Top-k selection by a float score.
//!
//! The HighDegree and PageRank baselines (Fig 6) and several diagnostics
//! need "the k items with the largest score". A bounded min-heap gives
//! O(n log k) instead of a full O(n log n) sort.

use crate::ord::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Returns the indices of the `k` largest scores, best first.
///
/// Ties are broken toward the smaller index so output is deterministic.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    // Min-heap of (score, Reverse(index)): the weakest kept item is on top;
    // Reverse(index) means that among equal scores the larger index is
    // evicted first, keeping the smaller ones.
    let mut heap: BinaryHeap<Reverse<(OrdF64, Reverse<usize>)>> = BinaryHeap::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        heap.push(Reverse((OrdF64(s), Reverse(i))));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<(OrdF64, Reverse<usize>)> = heap.into_iter().map(|Reverse(p)| p).collect();
    out.sort_by(|a, b| b.cmp(a));
    out.into_iter().map(|(_, Reverse(i))| i).collect()
}

/// Returns the `k` items with the largest `score(item)`, best first.
pub fn top_k_by<T: Copy>(items: &[T], k: usize, mut score: impl FnMut(&T) -> f64) -> Vec<T> {
    let scores: Vec<f64> = items.iter().map(&mut score).collect();
    top_k_indices(&scores, k).into_iter().map(|i| items[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest_in_order() {
        let scores = [0.1, 5.0, 3.0, 4.0, 2.0];
        assert_eq!(top_k_indices(&scores, 3), vec![1, 3, 2]);
    }

    #[test]
    fn k_larger_than_n_returns_all_sorted() {
        let scores = [1.0, 3.0, 2.0];
        assert_eq!(top_k_indices(&scores, 10), vec![1, 2, 0]);
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn ties_prefer_smaller_index() {
        let scores = [2.0, 2.0, 2.0, 1.0];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_by_projects_score() {
        let items = [(0u32, 10.0f64), (1, 30.0), (2, 20.0)];
        let picked = top_k_by(&items, 2, |&(_, s)| s);
        assert_eq!(picked.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        let mut rng = crate::rng::Rng::seed_from_u64(99);
        let scores: Vec<f64> = (0..500).map(|_| rng.f64()).collect();
        let by_heap = top_k_indices(&scores, 25);
        let mut by_sort: Vec<usize> = (0..scores.len()).collect();
        by_sort.sort_by(|&a, &b| OrdF64(scores[b]).cmp(&OrdF64(scores[a])).then(a.cmp(&b)));
        by_sort.truncate(25);
        assert_eq!(by_heap, by_sort);
    }
}
