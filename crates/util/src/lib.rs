#![warn(missing_docs)]
//! Shared low-level utilities for the `cdim` workspace.
//!
//! This crate deliberately has no dependencies. It provides:
//!
//! * [`hash`] — an FxHash-style hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases. Integer-keyed maps sit on the hot path of the credit-scan and
//!   of every learner, where SipHash is measurably slower.
//! * [`rng`] — a deterministic xoshiro256\*\* PRNG with the handful of
//!   distributions the workspace needs. Experiments must be reproducible
//!   bit-for-bit across platforms, which rules out `thread_rng`-style
//!   nondeterminism in library code.
//! * [`ord`] — a total-order `f64` wrapper for heaps and sorting.
//! * [`topk`] — selection of the k largest items by a float key.
//! * [`mem`] — coarse heap-size accounting used by the scalability
//!   experiments (Fig 8, Table 4 report memory).
//! * [`timer`] — a tiny stopwatch for the runtime experiments.
//! * [`lru`] — an O(1) least-recently-used cache (the query service's
//!   answer cache).
//! * [`checksum`] — CRC-32 for the snapshot file trailer.
//! * [`bytes`] — 8-byte-aligned buffers (owned or `mmap`-backed) and
//!   checked byte-reinterpretation helpers, the substrate of the
//!   zero-copy v2 snapshot format.
//! * [`pool`] — the scoped worker pool: [`Parallelism`] plus
//!   deterministic `parallel_map` primitives every parallel stage (credit
//!   scan, Monte-Carlo estimation) is built on.
//! * [`poll`] — readiness polling (raw `epoll` with a portable `poll(2)`
//!   fallback) plus a self-pipe waker, the substrate of the serving
//!   reactor.

pub mod bytes;
pub mod checksum;
pub mod hash;
pub mod lru;
pub mod mem;
pub mod ord;
#[cfg(unix)]
pub mod poll;
pub mod pool;
pub mod rng;
pub mod timer;
pub mod topk;

pub use bytes::AlignedBuf;
pub use checksum::{crc32, Crc32};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use lru::LruCache;
pub use mem::HeapSize;
pub use ord::OrdF64;
pub use pool::{parallel_map_indexed, parallel_map_shards, Parallelism};
pub use rng::Rng;
pub use timer::{monotonic_ns, Timer};
