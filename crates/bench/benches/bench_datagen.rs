//! Criterion bench: synthetic-workload generation (every experiment's
//! setup cost).

use cdim_datagen::cascades::{generate_cascades, CascadeConfig};
use cdim_datagen::graphgen::{preferential_attachment, GraphGenConfig};
use cdim_datagen::groundtruth::{GroundTruth, GroundTruthConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_datagen(c: &mut Criterion) {
    let gcfg = GraphGenConfig { nodes: 10_000, attach: 8, reciprocity: 0.3, seed: 1 };

    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.bench_function("graph_10k_nodes", |b| {
        b.iter(|| preferential_attachment(gcfg));
    });

    let graph = preferential_attachment(gcfg);
    group.bench_function("ground_truth_10k", |b| {
        b.iter(|| GroundTruth::generate(&graph, GroundTruthConfig::default()));
    });

    let truth = GroundTruth::generate(&graph, GroundTruthConfig::default());
    let ccfg = CascadeConfig { actions: 500, ..Default::default() };
    group.bench_function("cascades_500_actions", |b| {
        b.iter(|| generate_cascades(&graph, &truth, ccfg));
    });
    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
