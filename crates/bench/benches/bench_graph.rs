//! Criterion bench: graph substrate — CSR build, BFS, PageRank (the
//! structural baselines of Fig 6).

use cdim_datagen::graphgen::{preferential_attachment, GraphGenConfig};
use cdim_graph::pagerank::{pagerank, PageRankConfig};
use cdim_graph::traversal::{reachable_count, BfsScratch};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_graph(c: &mut Criterion) {
    let cfg = GraphGenConfig { nodes: 20_000, attach: 8, reciprocity: 0.3, seed: 5 };
    let graph = preferential_attachment(cfg);
    let edges: Vec<(u32, u32)> = graph.edges().collect();

    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.bench_function("csr_build_20k", |b| {
        b.iter(|| {
            let mut builder = cdim_graph::GraphBuilder::new(20_000);
            for &(u, v) in &edges {
                builder.push_edge(u, v);
            }
            builder.build()
        });
    });
    group.bench_function("bfs_full_20k", |b| {
        let mut scratch = BfsScratch::new(graph.num_nodes());
        b.iter(|| reachable_count(&graph, &[0], &mut scratch, |_| true));
    });
    group.bench_function("pagerank_20k", |b| {
        b.iter(|| pagerank(&graph, PageRankConfig::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
