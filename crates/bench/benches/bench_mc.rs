//! Criterion bench: Monte-Carlo IC/LT spread estimation — the cost per
//! oracle call of the standard approach (the IC/LT curves of Fig 7).

use cdim_datagen::presets;
use cdim_diffusion::{IcModel, LtModel, McConfig, MonteCarloEstimator};
use cdim_learning::{em::EmConfig, em::EmLearner, learn_lt_weights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_mc(c: &mut Criterion) {
    let ds = presets::flixster_small().scaled_down(4).generate();
    let em = EmLearner::new(&ds.graph, &ds.log).learn(EmConfig::default()).0;
    let lt = learn_lt_weights(&ds.graph, &ds.log);
    let seeds: Vec<u32> = (0..10).collect();

    let mut group = c.benchmark_group("mc_spread");
    group.sample_size(10);
    for sims in [100usize, 1000] {
        let cfg = McConfig { simulations: sims, threads: 1, base_seed: 9 };
        let ic = MonteCarloEstimator::new(IcModel::new(&ds.graph, &em), cfg);
        group.bench_with_input(BenchmarkId::new("ic_sims", sims), &ic, |b, ic| {
            b.iter(|| ic.spread(&seeds));
        });
        let lt_est = MonteCarloEstimator::new(LtModel::new(&ds.graph, &lt), cfg);
        group.bench_with_input(BenchmarkId::new("lt_sims", sims), &lt_est, |b, lt| {
            b.iter(|| lt.spread(&seeds));
        });
    }
    // Parallel speedup.
    let cfg = McConfig { simulations: 2000, threads: 0, base_seed: 9 };
    let ic = MonteCarloEstimator::new(IcModel::new(&ds.graph, &em), cfg);
    group.bench_function("ic_2000sims_parallel", |b| b.iter(|| ic.spread(&seeds)));
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
