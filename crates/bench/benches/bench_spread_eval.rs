//! Criterion bench: exact σ_cd evaluation — the inner loop of the
//! prediction experiments (Figs 3, 4, 6).

use cdim_core::{CdSpreadEvaluator, CreditPolicy};
use cdim_datagen::presets;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_spread_eval(c: &mut Criterion) {
    let ds = presets::flixster_small().scaled_down(4).generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let eval = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy);

    let mut group = c.benchmark_group("sigma_cd");
    group.sample_size(20);
    for k in [1usize, 10, 50] {
        let seeds: Vec<u32> = (0..k as u32).collect();
        group.bench_with_input(BenchmarkId::new("seeds", k), &seeds, |b, seeds| {
            b.iter(|| eval.spread(seeds));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("evaluator_build");
    group.sample_size(10);
    group.bench_function("build", |b| {
        b.iter(|| CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy));
    });
    group.finish();
}

criterion_group!(benches, bench_spread_eval);
criterion_main!(benches);
