//! Criterion bench: Algorithm 2 scan throughput (underpins Fig 8 left and
//! Table 4's runtime column), single- and multi-threaded.

use cdim_core::{scan_with, CreditPolicy, Parallelism};
use cdim_datagen::presets;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scan(c: &mut Criterion) {
    let ds = presets::flixster_small().scaled_down(4).generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let single = Parallelism::single();

    let mut group = c.benchmark_group("scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.log.num_tuples() as u64));
    for lambda in [0.01, 0.001, 0.0] {
        group.bench_with_input(
            BenchmarkId::new("lambda", format!("{lambda}")),
            &lambda,
            |b, &lambda| {
                b.iter(|| scan_with(&ds.graph, &ds.log, &policy, lambda, single).unwrap());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("scan_policy");
    group.sample_size(10);
    group.bench_function("uniform", |b| {
        b.iter(|| scan_with(&ds.graph, &ds.log, &CreditPolicy::Uniform, 0.001, single).unwrap());
    });
    group.bench_function("time_aware", |b| {
        b.iter(|| scan_with(&ds.graph, &ds.log, &policy, 0.001, single).unwrap());
    });
    group.finish();

    // The parallel driver at fixed thread counts. Output is bit-identical
    // across the whole group (the pipeline's determinism guarantee); only
    // the wall clock moves. `bench-scan` in the experiments runner records
    // the same sweep machine-readably as BENCH_scan.json.
    let mut group = c.benchmark_group("scan_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.log.num_tuples() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| {
                scan_with(&ds.graph, &ds.log, &policy, 0.001, Parallelism::fixed(threads)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
