//! Criterion bench: MIA/LDAG heuristic construction and selection (the
//! dense-dataset path of Table 2 / Figs 5–6).

use cdim_datagen::presets;
use cdim_learning::{em::EmConfig, em::EmLearner, learn_lt_weights};
use cdim_maxim::ldag::LdagConfig;
use cdim_maxim::mia::MiaConfig;
use cdim_maxim::{celf_select, LdagOracle, MiaOracle};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_heuristics(c: &mut Criterion) {
    let ds = presets::flickr_small().scaled_down(4).generate();
    let em = EmLearner::new(&ds.graph, &ds.log).learn(EmConfig::default()).0;
    let lt = learn_lt_weights(&ds.graph, &ds.log);

    let mut group = c.benchmark_group("heuristics");
    group.sample_size(10);
    group.bench_function("mia_build", |b| {
        b.iter(|| MiaOracle::build(&ds.graph, &em, MiaConfig::default()));
    });
    group.bench_function("ldag_build", |b| {
        b.iter(|| LdagOracle::build(&ds.graph, &lt, LdagConfig::default()));
    });

    let mia = MiaOracle::build(&ds.graph, &em, MiaConfig::default());
    let ldag = LdagOracle::build(&ds.graph, &lt, LdagConfig::default());
    group.bench_function("mia_celf_k10", |b| {
        b.iter(|| celf_select(&mia, 10));
    });
    group.bench_function("ldag_celf_k10", |b| {
        b.iter(|| celf_select(&ldag, 10));
    });
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
