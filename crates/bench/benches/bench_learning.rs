//! Criterion bench: parameter learning — EM iterations, LT weights and
//! temporal parameters (the preprocessing behind Table 2 / Figs 2–3).

use cdim_datagen::presets;
use cdim_learning::{em::EmConfig, em::EmLearner, learn_lt_weights, TemporalModel};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_learning(c: &mut Criterion) {
    let ds = presets::flixster_small().scaled_down(4).generate();

    let mut group = c.benchmark_group("learning");
    group.sample_size(10);
    group.bench_function("em_scan", |b| {
        b.iter(|| EmLearner::new(&ds.graph, &ds.log));
    });
    let learner = EmLearner::new(&ds.graph, &ds.log);
    group.bench_function("em_30_iterations", |b| {
        b.iter(|| learner.learn(EmConfig::default()));
    });
    group.bench_function("lt_weights", |b| {
        b.iter(|| learn_lt_weights(&ds.graph, &ds.log));
    });
    group.bench_function("temporal_tau_infl", |b| {
        b.iter(|| TemporalModel::learn(&ds.graph, &ds.log));
    });
    group.finish();
}

criterion_group!(benches, bench_learning);
criterion_main!(benches);
