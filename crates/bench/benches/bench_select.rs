//! Criterion bench: CD seed selection (Algorithm 3) — the CD curve of
//! Fig 7.

use cdim_core::{scan, CdSelector, CreditPolicy};
use cdim_datagen::presets;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_select(c: &mut Criterion) {
    let ds = presets::flixster_small().scaled_down(4).generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();

    let mut group = c.benchmark_group("cd_select");
    group.sample_size(10);
    for k in [1usize, 10, 25] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| CdSelector::new(store.clone()).select(k));
        });
    }
    group.finish();

    // The cost of the incremental update alone (Alg 5).
    let mut group = c.benchmark_group("cd_update");
    group.sample_size(10);
    let first_seed = CdSelector::new(store.clone()).select(1).seeds[0];
    group.bench_function("one_seed", |b| {
        b.iter_batched(
            || CdSelector::new(store.clone()),
            |mut sel| sel.update(first_seed),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
