//! Query-latency benchmark for the influence-query service.
//!
//! Unlike the criterion-style micro-benchmarks, serving latency is a tail
//! phenomenon, so this target hand-rolls per-query timing and reports
//! p50/p90/p99 over a large query stream — by default 10,000 cached and
//! 10,000 uncached queries per scenario (`CDIM_BENCH_QUERIES` overrides),
//! for both the in-process engine and the full TCP loopback path.
//!
//! It then sweeps concurrent connections (`CDIM_BENCH_CONNS`, default
//! `64,1024,10000`) through the pipelined load generator against both
//! frontends: the readiness-driven reactor and the thread-per-connection
//! baseline (the latter up to `CDIM_BENCH_THREADED_CAP`, default 1024).
//! Sizes past the in-process fd budget serve from a re-exec'd child.

use cdim_core::{scan, CreditPolicy};
use cdim_serve::{server, InfluenceService, ModelSnapshot, Query, QueryClient};
use cdim_util::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn queries_per_scenario() -> usize {
    std::env::var("CDIM_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000)
}

/// `count` random small seed sets, all distinct *after* the service's
/// canonicalization (sorted + deduplicated) — so a pass over them is
/// all cache misses and a replay is all hits.
fn random_seed_sets(num_users: u32, count: usize) -> Vec<Vec<u32>> {
    let mut rng = Rng::seed_from_u64(0xBEEF);
    let mut seen: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let mut sets = Vec::with_capacity(count);
    // Cycle lengths by draw attempt, not by collected count: small length
    // classes (only `num_users` distinct singletons exist) exhaust without
    // stalling the loop.
    let mut attempt = 0usize;
    while sets.len() < count {
        let len = 1 + attempt % 3;
        attempt += 1;
        let set: Vec<u32> =
            (0..len).map(|_| (rng.next_u64() % u64::from(num_users)) as u32).collect();
        let mut canonical = set.clone();
        canonical.sort_unstable();
        canonical.dedup();
        if seen.insert(canonical) {
            sets.push(set);
        }
    }
    sets
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn report(label: &str, mut samples: Vec<Duration>) {
    samples.sort_unstable();
    println!(
        "{label:<28} n={:<6} p50={:>10.2?} p90={:>10.2?} p99={:>10.2?} max={:>10.2?}",
        samples.len(),
        percentile(&samples, 0.50),
        percentile(&samples, 0.90),
        percentile(&samples, 0.99),
        samples[samples.len() - 1],
    );
}

fn connection_sweep_sizes() -> Vec<usize> {
    std::env::var("CDIM_BENCH_CONNS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).filter(|&n| n > 0).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![64, 1024, 10_000])
}

fn main() {
    // A re-exec'd serve child (sweep sizes past the fd budget) must not
    // rerun the benchmark itself.
    if cdim_bench::loadgen::maybe_run_server_child() {
        return;
    }
    let n = queries_per_scenario();
    let ds = cdim_datagen::presets::flixster_small().scaled_down(8).generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
    let num_users = store.num_users() as u32;
    println!(
        "snapshot: {} users, {} actions, {} credit entries; {n} queries per scenario",
        store.num_users(),
        store.num_actions(),
        store.total_entries()
    );
    let service = Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), n + 16));

    // Uncached engine latency: every seed set is distinct.
    let sets = random_seed_sets(num_users, n);
    let mut samples = Vec::with_capacity(n);
    for seeds in &sets {
        let q = Query::Spread { seeds: seeds.clone() };
        let start = Instant::now();
        service.query(&q).unwrap();
        samples.push(start.elapsed());
    }
    report("engine spread (uncached)", samples);

    // Cached engine latency: replay the same stream — all hits.
    let mut samples = Vec::with_capacity(n);
    for seeds in &sets {
        let q = Query::Spread { seeds: seeds.clone() };
        let start = Instant::now();
        service.query(&q).unwrap();
        samples.push(start.elapsed());
    }
    report("engine spread (cached)", samples);
    let stats = service.stats();
    assert!(stats.cache_hits >= n as u64, "expected ≥{n} hits, got {}", stats.cache_hits);

    // Full TCP loopback path, one blocking client: uncached then cached.
    let fresh = Arc::new(InfluenceService::new(
        ModelSnapshot::from_bytes(&service.snapshot().to_bytes()).unwrap(),
        n + 16,
    ));
    let handle = server::spawn(fresh, "127.0.0.1:0").unwrap();
    let mut client = QueryClient::connect(handle.addr()).unwrap();
    let mut uncached = Vec::with_capacity(n);
    for seeds in &sets {
        let start = Instant::now();
        client.spread(seeds).unwrap();
        uncached.push(start.elapsed());
    }
    report("tcp spread (uncached)", uncached);
    let mut cached = Vec::with_capacity(n);
    for seeds in &sets {
        let start = Instant::now();
        client.spread(seeds).unwrap();
        cached.push(start.elapsed());
    }
    report("tcp spread (cached)", cached);
    handle.shutdown();

    // Concurrent-connection sweep: thread-per-connection "before" vs
    // reactor "after", pipelined clients, p50/p99 per cell.
    let sizes = connection_sweep_sizes();
    println!("\nconcurrent-connection sweep: {sizes:?} (CDIM_BENCH_CONNS to override)");
    let cap =
        std::env::var("CDIM_BENCH_THREADED_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(1024);
    for row in cdim_bench::experiments::serve::sweep(&sizes, 8, 8, cap) {
        println!(
            "{:<9} conns={:<6} n={:<7} qps={:>8.0} p50={:>10.2?} p90={:>10.2?} p99={:>10.2?} max={:>10.2?}",
            row.backend,
            row.connections,
            row.report.requests,
            row.report.qps(),
            row.report.p50,
            row.report.p90,
            row.report.p99,
            row.report.max,
        );
    }
}
