#![warn(missing_docs)]
//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment is a function that prints the same rows/series the
//! paper reports (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records). The binary
//! `experiments` dispatches on the experiment id:
//!
//! ```text
//! cargo run --release -p cdim-bench --bin experiments -- table1
//! cargo run --release -p cdim-bench --bin experiments -- all
//! ```
//!
//! Scale note: the MC-greedy baselines are run with fewer simulations and
//! smaller graphs than the paper's 10,000-simulation runs on million-node
//! crawls — at paper scale those baselines take tens of hours *by the
//! paper's own measurement* (Fig 7), which is exactly the phenomenon being
//! reproduced. Every scaling knob lives in [`config::ExperimentScale`] and
//! is printed alongside results.

pub mod config;
pub mod experiments;
pub mod loadgen;
pub mod methods;
pub mod prediction;

pub use config::ExperimentScale;
pub use methods::Workbench;
