//! Experiment harness CLI.
//!
//! ```text
//! experiments <id> [--quick] [--k N] [--sims N] [--scale N] [--traces N] [--threads N]
//! experiments all
//! experiments list
//! ```

use cdim_bench::experiments;
use cdim_bench::ExperimentScale;

fn main() {
    // A re-exec'd serve child (bench-serve sweeps past the fd budget)
    // must never fall through into argument parsing.
    if cdim_bench::loadgen::maybe_run_server_child() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let id = args[0].as_str();
    if id == "list" {
        println!("available experiments:");
        for id in experiments::ALL_IDS {
            println!("  {id}");
        }
        return;
    }

    let mut scale = ExperimentScale::full();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = ExperimentScale::quick(),
            "--k" => {
                scale.k = parse(&args, &mut i, "k");
            }
            "--sims" => {
                scale.mc_simulations = parse(&args, &mut i, "sims");
            }
            "--scale" => {
                scale.dataset_divisor = parse(&args, &mut i, "scale");
            }
            "--traces" => {
                scale.max_test_traces = parse(&args, &mut i, "traces");
            }
            "--threads" => {
                scale.threads = parse(&args, &mut i, "threads");
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if !experiments::run(id, scale) {
        eprintln!("unknown experiment id: {id}");
        usage();
        std::process::exit(2);
    }
}

fn parse(args: &[String], i: &mut usize, what: &str) -> usize {
    *i += 1;
    args.get(*i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("--{what} requires an integer argument");
        std::process::exit(2);
    })
}

fn usage() {
    eprintln!(
        "usage: experiments <id>|all|list [--quick] [--k N] [--sims N] [--scale N] [--traces N] \
         [--threads N]"
    );
    eprintln!("ids: {}", experiments::ALL_IDS.join(", "));
}
