//! Spread prediction over test traces (the data behind Figs 2, 3 and 4).
//!
//! For each test propagation, each method predicts the spread of the
//! trace's initiator set; the actual spread is the trace's size.

use crate::methods::Workbench;

/// A spread-prediction method under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// IC with uniform p = 0.01.
    Un,
    /// IC with trivalency probabilities.
    Tv,
    /// IC with weighted-cascade probabilities.
    Wc,
    /// IC with EM-learned probabilities.
    Em,
    /// IC with perturbed EM probabilities.
    Pt,
    /// LT with learned weights.
    Lt,
    /// The credit-distribution model.
    Cd,
}

impl Method {
    /// Display name used in tables (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            Method::Un => "UN",
            Method::Tv => "TV",
            Method::Wc => "WC",
            Method::Em => "EM",
            Method::Pt => "PT",
            Method::Lt => "LT",
            Method::Cd => "CD",
        }
    }

    /// The methods compared in Fig 2 (ad-hoc vs learned IC).
    pub fn fig2_set() -> [Method; 5] {
        [Method::Un, Method::Tv, Method::Wc, Method::Em, Method::Pt]
    }

    /// The models compared in Figs 3–4 (IC vs LT vs CD).
    pub fn fig3_set() -> [Method; 3] {
        [Method::Em, Method::Lt, Method::Cd]
    }
}

/// `(actual, predicted)` pairs for `method` over the workbench's test
/// traces.
pub fn prediction_pairs(wb: &Workbench, method: Method) -> Vec<(f64, f64)> {
    let traces = wb.test_traces();
    match method {
        Method::Un => ic_pairs(wb, &wb.un, &traces),
        Method::Tv => ic_pairs(wb, &wb.tv, &traces),
        Method::Wc => ic_pairs(wb, &wb.wc, &traces),
        Method::Em => ic_pairs(wb, &wb.em, &traces),
        Method::Pt => ic_pairs(wb, &wb.pt, &traces),
        Method::Lt => {
            let est = wb.lt_estimator();
            traces.iter().map(|t| (t.actual, est.spread(&t.initiators))).collect()
        }
        Method::Cd => traces.iter().map(|t| (t.actual, wb.cd.spread(&t.initiators))).collect(),
    }
}

fn ic_pairs(
    wb: &Workbench,
    probs: &cdim_diffusion::EdgeProbabilities,
    traces: &[crate::methods::TestTrace],
) -> Vec<(f64, f64)> {
    let est = wb.ic_estimator(probs);
    traces.iter().map(|t| (t.actual, est.spread(&t.initiators))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentScale;
    use cdim_datagen::presets;
    use cdim_metrics::rmse;

    #[test]
    fn produces_pairs_for_every_method() {
        let wb = Workbench::prepare(presets::tiny(), ExperimentScale::quick());
        let n = wb.test_traces().len();
        for m in [Method::Un, Method::Wc, Method::Em, Method::Lt, Method::Cd] {
            let pairs = prediction_pairs(&wb, m);
            assert_eq!(pairs.len(), n, "{}", m.name());
            assert!(pairs.iter().all(|&(a, p)| a > 0.0 && p >= 0.0));
        }
    }

    #[test]
    fn cd_beats_structural_assignments_on_tiny() {
        // A miniature echo of the paper's central claim: CD's prediction
        // error is below the degree-driven WC assignment's. (TV/UN are not
        // asserted here — on micro-traces a constant tiny probability
        // degenerates to predicting "initiators only", which is
        // accidentally competitive; the full-scale fig2/fig3 experiments
        // carry the real comparison.)
        let wb = Workbench::prepare(presets::tiny(), ExperimentScale::quick());
        let cd_err = rmse(&prediction_pairs(&wb, Method::Cd));
        let wc_err = rmse(&prediction_pairs(&wb, Method::Wc));
        assert!(cd_err < wc_err, "cd {cd_err} vs wc {wc_err}");
    }
}
