//! Shared experiment plumbing: dataset preparation and trained methods.
//!
//! A [`Workbench`] owns one generated dataset, its 80/20 split, and every
//! competing method trained on the training half:
//!
//! * ad-hoc IC probability assignments UN / TV / WC (§3),
//! * EM-learned IC probabilities and their perturbation PT,
//! * learned LT weights,
//! * the trained CD model (time-aware credit, λ = 0.001).

use crate::config::ExperimentScale;
use cdim_actionlog::{train_test_split, PropagationDag, TrainTestSplit, UserId};
use cdim_core::{CdModel, CdModelConfig};
use cdim_datagen::presets::DatasetSpec;
use cdim_datagen::Dataset;
use cdim_diffusion::{EdgeProbabilities, IcModel, LtModel, McConfig, MonteCarloEstimator};
use cdim_learning::{assign, em::EmConfig, em::EmLearner, learn_lt_weights};
use cdim_maxim::ldag::LdagConfig;
use cdim_maxim::mia::MiaConfig;
use cdim_maxim::{celf_select, LdagOracle, MiaOracle};

/// One test propagation trace: who initiated it, how far it actually went.
#[derive(Clone, Debug)]
pub struct TestTrace {
    /// The initiators (first performers among their friends) — the seed
    /// set whose spread each model predicts.
    pub initiators: Vec<UserId>,
    /// Ground-truth spread: the trace's propagation size.
    pub actual: f64,
}

/// A dataset plus every trained competitor.
pub struct Workbench {
    /// The generated dataset.
    pub dataset: Dataset,
    /// 80/20 size-stratified split.
    pub split: TrainTestSplit,
    /// Scaling knobs.
    pub scale: ExperimentScale,
    /// UN probabilities (p = 0.01).
    pub un: EdgeProbabilities,
    /// TV probabilities ({0.1, 0.01, 0.001}).
    pub tv: EdgeProbabilities,
    /// WC probabilities (1/in-degree).
    pub wc: EdgeProbabilities,
    /// EM-learned IC probabilities.
    pub em: EdgeProbabilities,
    /// EM perturbed by ±20%.
    pub pt: EdgeProbabilities,
    /// Learned LT weights (valid: in-sums ≤ 1).
    pub lt: EdgeProbabilities,
    /// Trained CD model.
    pub cd: CdModel,
}

impl Workbench {
    /// Generates the dataset at the requested scale and trains everything.
    pub fn prepare(spec: DatasetSpec, scale: ExperimentScale) -> Self {
        let spec = spec.scaled_down(scale.dataset_divisor);
        let dataset = spec.generate();
        let split = train_test_split(&dataset.log, 5);
        let graph = &dataset.graph;

        let un = assign::uniform(graph, 0.01);
        let tv = assign::trivalency(graph, 0xBEEF);
        let wc = assign::weighted_cascade(graph);
        let em = EmLearner::new(graph, &split.train).learn(EmConfig::default()).0;
        let pt = assign::perturb(graph, &em, 0.2, 0xFACE);
        let lt = learn_lt_weights(graph, &split.train);
        let cd = CdModel::train(graph, &split.train, CdModelConfig::default());

        Workbench { dataset, split, scale, un, tv, wc, em, pt, lt, cd }
    }

    /// Monte-Carlo configuration at the workbench scale.
    pub fn mc_config(&self) -> McConfig {
        McConfig {
            simulations: self.scale.mc_simulations,
            threads: self.scale.threads,
            base_seed: 0x5EED,
        }
    }

    /// IC spread estimator over arbitrary probabilities.
    pub fn ic_estimator<'a>(
        &'a self,
        probs: &'a EdgeProbabilities,
    ) -> MonteCarloEstimator<IcModel<'a>> {
        MonteCarloEstimator::new(IcModel::new(&self.dataset.graph, probs), self.mc_config())
    }

    /// LT spread estimator over the learned weights.
    pub fn lt_estimator(&self) -> MonteCarloEstimator<LtModel<'_>> {
        MonteCarloEstimator::new(LtModel::new(&self.dataset.graph, &self.lt), self.mc_config())
    }

    /// The test traces (initiators + actual spread), capped by the scale.
    pub fn test_traces(&self) -> Vec<TestTrace> {
        let cap =
            if self.scale.max_test_traces == 0 { usize::MAX } else { self.scale.max_test_traces };
        self.split
            .test
            .actions()
            .take(cap)
            .map(|a| {
                let dag = PropagationDag::build(&self.split.test, &self.dataset.graph, a);
                TestTrace { initiators: dag.initiators(), actual: dag.len() as f64 }
            })
            .collect()
    }

    /// CELF seed selection under IC/MC with the given probabilities.
    pub fn select_ic_mc(&self, probs: &EdgeProbabilities, k: usize) -> Vec<UserId> {
        let est =
            MonteCarloEstimator::new(IcModel::new(&self.dataset.graph, probs), self.mc_config());
        celf_select(&est, k).seeds
    }

    /// CELF seed selection under LT/MC with the learned weights.
    pub fn select_lt_mc(&self, k: usize) -> Vec<UserId> {
        celf_select(&self.lt_estimator(), k).seeds
    }

    /// CELF over the MIA heuristic (the paper's PMIA stand-in for graphs
    /// where MC-greedy is infeasible).
    pub fn select_ic_mia(&self, probs: &EdgeProbabilities, k: usize) -> Vec<UserId> {
        let oracle = MiaOracle::build(&self.dataset.graph, probs, MiaConfig::default());
        celf_select(&oracle, k).seeds
    }

    /// CELF over the LDAG heuristic for LT.
    pub fn select_lt_ldag(&self, k: usize) -> Vec<UserId> {
        let oracle = LdagOracle::build(&self.dataset.graph, &self.lt, LdagConfig::default());
        celf_select(&oracle, k).seeds
    }

    /// CD seed selection (Algorithm 3).
    pub fn select_cd(&self, k: usize) -> Vec<UserId> {
        self.cd.select(k).seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_datagen::presets;

    fn bench() -> Workbench {
        Workbench::prepare(presets::tiny(), ExperimentScale::quick())
    }

    #[test]
    fn prepares_all_methods() {
        let wb = bench();
        let m = wb.dataset.graph.num_edges();
        assert_eq!(wb.un.out_view().len(), m);
        assert_eq!(wb.em.out_view().len(), m);
        assert!(wb.lt.max_in_weight_sum(&wb.dataset.graph) <= 1.0 + 1e-9);
        assert!(wb.cd.store().total_entries() > 0);
    }

    #[test]
    fn test_traces_are_nonempty_with_positive_actuals() {
        let wb = bench();
        let traces = wb.test_traces();
        assert!(!traces.is_empty());
        for t in &traces {
            assert!(!t.initiators.is_empty());
            assert!(t.actual >= t.initiators.len() as f64);
        }
    }

    #[test]
    fn selectors_produce_k_seeds() {
        let wb = bench();
        assert_eq!(wb.select_cd(3).len(), 3);
        assert_eq!(wb.select_ic_mia(&wb.wc, 3).len(), 3);
        assert_eq!(wb.select_lt_ldag(3).len(), 3);
    }

    #[test]
    fn mc_selectors_work_at_tiny_scale() {
        let wb = bench();
        assert_eq!(wb.select_ic_mc(&wb.un, 2).len(), 2);
        assert_eq!(wb.select_lt_mc(2).len(), 2);
    }
}
