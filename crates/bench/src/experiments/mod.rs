//! One module per paper artifact. See DESIGN.md §4 for the index.

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod incremental;
pub mod ingest;
pub mod memory;
pub mod scan_scaling;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod window;

use crate::config::ExperimentScale;

/// All experiment ids, in paper order (engineering artifacts last).
pub const ALL_IDS: [&str; 21] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table4",
    "ablate-credit",
    "ablate-celf",
    "ablate-mg",
    "bench-scan",
    "bench-incremental",
    "bench-ingest",
    "bench-window",
    "bench-memory",
    "bench-serve",
    "all",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn run(id: &str, scale: ExperimentScale) -> bool {
    match id {
        "table1" => table1::run(scale),
        "table2" => table2::run(scale),
        "fig2" => fig2::run(scale),
        "fig3" => fig3::run(scale),
        "fig4" => fig4::run(scale),
        "fig5" => fig5::run(scale),
        "fig6" => fig6::run(scale),
        "fig7" => fig7::run(scale),
        "fig8" => fig8::run(scale),
        "fig9" => fig9::run(scale),
        "table4" => table4::run(scale),
        "ablate-credit" => ablations::credit_policy(scale),
        "ablate-celf" => ablations::celf_vs_greedy(scale),
        "ablate-mg" => ablations::mg_formula(scale),
        "bench-scan" => scan_scaling::run(scale),
        "bench-incremental" => incremental::run(scale),
        "bench-ingest" => ingest::run(scale),
        "bench-window" => window::run(scale),
        "bench-memory" => memory::run(scale),
        "bench-serve" => serve::run(scale),
        "all" => {
            for id in ALL_IDS.iter().filter(|&&i| i != "all") {
                run(id, scale);
            }
        }
        _ => return false,
    }
    true
}

/// Prints the standard experiment banner.
pub(crate) fn banner(title: &str, paper_ref: &str, scale: ExperimentScale) {
    println!();
    println!("=== {title} ===");
    println!("paper artifact: {paper_ref}");
    println!("{}", scale.describe());
    println!();
}

/// First `k` elements of a seed list (selection order is greedy order, so
/// a prefix is exactly the budget-`k` selection).
pub(crate) fn prefix(seeds: &[u32], k: usize) -> &[u32] {
    &seeds[..k.min(seeds.len())]
}

/// The k-grid used by the sweep figures (1, then multiples of k/10).
pub(crate) fn k_grid(k: usize) -> Vec<usize> {
    let step = (k / 10).max(1);
    let mut grid = vec![1];
    let mut v = step;
    while v < k {
        if v > 1 {
            grid.push(v);
        }
        v += step;
    }
    grid.push(k);
    grid.dedup();
    grid
}

/// Picks a histogram bin width that yields roughly `target_bins` bins.
pub(crate) fn auto_bin_width(max_actual: f64, target_bins: usize) -> usize {
    let raw = (max_actual / target_bins.max(1) as f64).max(1.0);
    // Round to 1/2/5 × 10^k.
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let nice = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    (nice * mag) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_covers_endpoints() {
        let g = k_grid(50);
        assert_eq!(*g.first().unwrap(), 1);
        assert_eq!(*g.last().unwrap(), 50);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn k_grid_tiny() {
        assert_eq!(k_grid(1), vec![1]);
        assert_eq!(k_grid(2), vec![1, 2]);
    }

    #[test]
    fn bin_width_is_nice() {
        assert_eq!(auto_bin_width(800.0, 8), 100);
        assert_eq!(auto_bin_width(160.0, 8), 20);
        assert_eq!(auto_bin_width(7.0, 8), 1);
    }

    #[test]
    fn unknown_id_is_rejected() {
        assert!(!run("nonsense", ExperimentScale::quick()));
    }
}
