//! Ablations of design choices DESIGN.md calls out.

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use cdim_core::model::PolicyKind;
use cdim_core::{
    scan_with, CdModel, CdModelConfig, CdSelector, CdSpreadEvaluator, CreditPolicy, MgMode,
};
use cdim_datagen::presets;
use cdim_maxim::{celf_select, greedy_select};
use cdim_metrics::{intersection_size, rmse, Table};

/// Uniform (1/d_in) vs time-aware (Eq 9) direct credit.
pub fn credit_policy(scale: ExperimentScale) {
    super::banner(
        "Ablation — direct-credit policy: uniform vs time-aware (Eq 9)",
        "§4 'Assigning Direct Credit' motivates Eq 9 over the uniform split",
        scale,
    );
    let wb = Workbench::prepare(presets::flixster_small(), scale);
    let graph = &wb.dataset.graph;
    let k = scale.k;

    let uniform = CdModel::train(
        graph,
        &wb.split.train,
        CdModelConfig {
            policy: PolicyKind::Uniform,
            lambda: 0.001,
            parallelism: scale.parallelism(),
        },
    );
    let time_aware = &wb.cd; // the workbench default

    let traces = wb.test_traces();
    let pairs = |m: &CdModel| -> Vec<(f64, f64)> {
        traces.iter().map(|t| (t.actual, m.spread(&t.initiators))).collect()
    };
    let uni_rmse = rmse(&pairs(&uniform));
    let ta_rmse = rmse(&pairs(time_aware));

    let uni_seeds = uniform.select(k).seeds;
    let ta_seeds = time_aware.select(k).seeds;
    let overlap = intersection_size(&uni_seeds, &ta_seeds);

    let mut table = Table::new(["policy", "prediction RMSE", "seed overlap with other"]);
    table.row(["uniform 1/d_in".to_string(), format!("{uni_rmse:.1}"), format!("{overlap}/{k}")]);
    table.row(["time-aware Eq 9".to_string(), format!("{ta_rmse:.1}"), format!("{overlap}/{k}")]);
    println!("{table}");
    println!(
        "time-aware credit {} prediction error ({:.1} vs {:.1}); policies agree on {}/{k} seeds\n",
        if ta_rmse <= uni_rmse { "reduces" } else { "does not reduce (investigate)" },
        ta_rmse,
        uni_rmse,
        overlap
    );
}

/// CELF vs plain greedy, both over the exact σ_cd oracle.
pub fn celf_vs_greedy(scale: ExperimentScale) {
    super::banner(
        "Ablation — CELF vs plain greedy (exact σ_cd oracle)",
        "§5.3 adopts CELF; this quantifies the evaluation savings",
        scale,
    );
    // Plain greedy is O(n·k) spread evaluations — shrink the instance.
    let spec = presets::flixster_small().scaled_down(4.max(scale.dataset_divisor));
    let ds = spec.generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let evaluator = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy);
    let k = scale.k.min(10);

    let candidates: Vec<u32> =
        (0..ds.graph.num_nodes() as u32).filter(|&u| ds.log.actions_performed_by(u) > 0).collect();
    let greedy = cdim_maxim::greedy::greedy_select_from(&evaluator, k, &candidates);
    let celf = cdim_maxim::celf::celf_select_from(&evaluator, k, &candidates);

    let mut table = Table::new(["algorithm", "seeds", "spread evals", "σ_cd(seeds)"]);
    table.row([
        "greedy".to_string(),
        format!("{:?}", &greedy.seeds[..k.min(5)]),
        greedy.evaluations.to_string(),
        format!("{:.1}", evaluator.spread(&greedy.seeds)),
    ]);
    table.row([
        "celf".to_string(),
        format!("{:?}", &celf.seeds[..k.min(5)]),
        celf.evaluations.to_string(),
        format!("{:.1}", evaluator.spread(&celf.seeds)),
    ]);
    println!("{table}");
    println!(
        "CELF used {:.1}x fewer evaluations with identical spread\n",
        greedy.evaluations as f64 / celf.evaluations.max(1) as f64
    );
    // Both must achieve the same spread (they optimize the same function).
    let gs = evaluator.spread(&greedy.seeds);
    let cs = evaluator.spread(&celf.seeds);
    assert!((gs - cs).abs() < 1e-6, "greedy {gs} vs celf {cs}");

    // Keep the generic-greedy import exercised even at tiny scales.
    let _ = greedy_select(&evaluator, 1);
    let _ = celf_select(&evaluator, 1);
}

/// Theorem-3-faithful marginal gain vs the literal Algorithm-4 pseudocode.
pub fn mg_formula(scale: ExperimentScale) {
    super::banner(
        "Ablation — marginal gain: Theorem 3 vs Algorithm-4 pseudocode",
        "DESIGN.md §2.1 (pseudocode omits the self term for non-influencing actions)",
        scale,
    );
    let wb = Workbench::prepare(presets::flixster_small(), scale);
    let k = scale.k;
    let policy = CreditPolicy::time_aware(&wb.dataset.graph, &wb.split.train);
    let make_store = || {
        scan_with(&wb.dataset.graph, &wb.split.train, &policy, 0.001, scale.parallelism()).unwrap()
    };

    let theorem3 = CdSelector::new(make_store()).select_with_mode(k, MgMode::Theorem3);
    let pseudo = CdSelector::new(make_store()).select_with_mode(k, MgMode::Pseudocode);
    let overlap = intersection_size(&theorem3.seeds, &pseudo.seeds);

    let mut table = Table::new(["variant", "σ_cd(seeds)", "overlap"]);
    table.row([
        "Theorem 3".to_string(),
        format!("{:.1}", wb.cd.spread(&theorem3.seeds)),
        format!("{overlap}/{k}"),
    ]);
    table.row([
        "pseudocode".to_string(),
        format!("{:.1}", wb.cd.spread(&pseudo.seeds)),
        format!("{overlap}/{k}"),
    ]);
    println!("{table}");
    println!(
        "the two variants agree on {overlap}/{k} seeds; the self-term correction \
         matters only for users who rarely influence others\n"
    );
}
