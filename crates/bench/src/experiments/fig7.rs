//! Fig 7 — running-time comparison: IC/LT (MC + CELF) vs CD.
//!
//! Paper shape (Flixster_Small, k = 50): IC-greedy 40 h, LT-greedy 25 h,
//! CD 3 minutes — orders of magnitude. We run the MC baselines with far
//! fewer simulations than the paper's 10,000 (the knob is printed), so the
//! absolute gap here *understates* the paper's gap roughly by the
//! simulation ratio; the ordering and the orders-of-magnitude shape are
//! what must hold.

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use cdim_core::{scan_with, CdSelector, CreditPolicy};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_util::Timer;

/// Prints selection time (seconds) vs k for the three models.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 7 — running time to select k seeds",
        "Fig 7 (paper: IC 40h / LT 25h / CD 3min at k=50 on Flixster_Small)",
        scale,
    );
    let wb = Workbench::prepare(presets::flixster_small(), scale);
    // Each grid point re-runs full selections for all three models; keep
    // the grid sparse (the paper's Fig 7 x-axis is equally coarse in
    // effect — the curves are near-affine in k because the CELF initial
    // pass dominates).
    let grid: Vec<usize> = [1, scale.k / 5, scale.k / 2, scale.k]
        .into_iter()
        .filter(|&k| k >= 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut table = Table::new(["k", "IC (s)", "LT (s)", "CD (s)", "IC/CD", "LT/CD"]);
    let mut last_ratio = (0.0, 0.0);
    for &k in &grid {
        let t = Timer::start();
        let _ = wb.select_ic_mc(&wb.em, k);
        let ic_s = t.secs();

        let t = Timer::start();
        let _ = wb.select_lt_mc(k);
        let lt_s = t.secs();

        // CD time includes the scan, as the paper's reported time does.
        let t = Timer::start();
        let policy = CreditPolicy::time_aware(&wb.dataset.graph, &wb.split.train);
        let store =
            scan_with(&wb.dataset.graph, &wb.split.train, &policy, 0.001, scale.parallelism())
                .unwrap();
        let _ = CdSelector::new(store).select(k);
        let cd_s = t.secs();

        last_ratio = (ic_s / cd_s.max(1e-9), lt_s / cd_s.max(1e-9));
        table.row([
            k.to_string(),
            format!("{ic_s:.2}"),
            format!("{lt_s:.2}"),
            format!("{cd_s:.2}"),
            format!("{:.0}x", last_ratio.0),
            format!("{:.0}x", last_ratio.1),
        ]);
    }
    println!("{table}");
    println!(
        "shape check: at k = {}, CD is {:.0}x faster than IC and {:.0}x faster than LT\n\
         (with {} sims instead of the paper's 10,000 — multiply the MC columns by ~{:.0}\n\
         to estimate paper-scale times; CD's time is simulation-free and unaffected)",
        grid.last().unwrap(),
        last_ratio.0,
        last_ratio.1,
        scale.mc_simulations,
        10_000.0 / scale.mc_simulations as f64,
    );
}
