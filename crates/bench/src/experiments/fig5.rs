//! Fig 5 — seed-set intersections between IC, LT and CD selections.
//!
//! Paper shape: IC ∩ {LT, CD} = ∅; LT ∩ CD ≈ half the seeds. On
//! Flickr_Small the paper substitutes PMIA (IC) and LDAG (LT) because
//! MC-greedy does not terminate; we do the same on the dense preset.

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use cdim_datagen::presets;
use cdim_metrics::{intersection_matrix, Table};

/// Prints the 3×3 intersection matrices.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 5 — seed-set intersections: IC vs LT vs CD",
        "Fig 5 (paper: IC∩LT = IC∩CD = 0; LT∩CD = 26–28 of 50)",
        scale,
    );
    run_dataset(presets::flixster_small(), scale, false);
    run_dataset(presets::flickr_small(), scale, true);
}

fn run_dataset(spec: cdim_datagen::DatasetSpec, scale: ExperimentScale, use_heuristics: bool) {
    let wb = Workbench::prepare(spec, scale);
    let k = scale.k;
    let ic = if use_heuristics { wb.select_ic_mia(&wb.em, k) } else { wb.select_ic_mc(&wb.em, k) };
    let lt = if use_heuristics { wb.select_lt_ldag(k) } else { wb.select_lt_mc(k) };
    let cd = wb.select_cd(k);

    let sets: Vec<(&str, Vec<u32>)> = vec![("IC", ic), ("LT", lt), ("CD", cd)];
    let matrix = intersection_matrix(&sets);

    println!(
        "--- {} (k = {k}{}) ---",
        wb.dataset.name,
        if use_heuristics { ", via PMIA/LDAG heuristics as in the paper" } else { "" }
    );
    let mut table = Table::new(std::iter::once("").chain(sets.iter().map(|(n, _)| *n)));
    for (i, (name, _)) in sets.iter().enumerate() {
        table.row(std::iter::once(name.to_string()).chain(matrix[i].iter().map(|c| c.to_string())));
    }
    println!("{table}");
    println!(
        "shape check: IC∩CD = {} (paper: 0), LT∩CD = {} (paper: ≈k/2)\n",
        matrix[0][2], matrix[1][2]
    );
}
