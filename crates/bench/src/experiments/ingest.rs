//! bench-ingest — sustained throughput and batch→publish latency of the
//! live-ingestion pipeline.
//!
//! Not a paper artifact: this measures the online subsystem (follower →
//! micro-batcher → incremental extend → atomic publish) end to end. A
//! producer appends the serialized preset log to a followed file in
//! fixed-size byte chunks; the driver polls after each append, and every
//! published batch's cut-to-swap wall time is recorded. The sweep varies
//! the batch size (`--batch-actions N` in CLI terms) because it is *the*
//! freshness/throughput dial: small batches publish sooner but pay the
//! per-publish overhead more often.
//!
//! Each sweep point re-streams the same bytes and asserts on the spot
//! that the final model is byte-identical to a one-shot offline train —
//! the benchmark doubles as an equivalence check at scale. Results land
//! machine-readably in `BENCH_ingest.json` (CI artifact, next to
//! `BENCH_incremental.json`).

use crate::config::ExperimentScale;
use cdim_actionlog::storage::write_action_log;
use cdim_core::{scan_with, CreditPolicy, Parallelism};
use cdim_datagen::presets;
use cdim_ingest::{BatchConfig, FollowConfig, IngestDriver};
use cdim_metrics::Table;
use cdim_serve::ModelSnapshot;
use cdim_util::Timer;
use std::io::Write as _;
use std::time::Duration;

/// Batch sizes (in whole actions) swept, smallest first.
const BATCH_SIZES: [usize; 3] = [1, 8, 32];

/// Bytes appended per producer write — small enough that records are
/// regularly torn mid-line, which is the realistic case.
const CHUNK_BYTES: usize = 4096;

/// Where the JSON record lands: `$CDIM_BENCH_JSON_INGEST` if set (CI
/// points this at the workspace), otherwise the temp directory.
fn json_path() -> std::path::PathBuf {
    match std::env::var_os("CDIM_BENCH_JSON_INGEST") {
        Some(path) => path.into(),
        None => std::env::temp_dir().join("BENCH_ingest.json"),
    }
}

/// One measured sweep point.
struct Run {
    batch_actions: usize,
    batches: usize,
    records_per_sec: f64,
    publish_p50_ms: f64,
    publish_p99_ms: f64,
}

/// Quantile of a sorted sample (nearest-rank on the sorted copy).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the sweep; the JSON lands at `$CDIM_BENCH_JSON_INGEST` or, when
/// unset, `BENCH_ingest.json` in the temp directory.
pub fn run(scale: ExperimentScale) {
    run_with_output(scale, &json_path());
}

/// Explicit-output variant (tests use this — no process-global env).
pub fn run_with_output(scale: ExperimentScale, path: &std::path::Path) {
    super::banner(
        "bench-ingest — live-tail throughput and batch→publish latency",
        "engineering artifact (not in the paper): follower → micro-batcher → publish pipeline",
        scale,
    );
    let ds = presets::flixster_small().scaled_down(scale.dataset_divisor).generate();
    let lambda = 0.001;
    let policy = CreditPolicy::Uniform;
    let par = scale.parallelism();
    let mut serialized = Vec::new();
    write_action_log(&ds.log, &mut serialized).expect("in-memory serialization");
    println!(
        "--- {} ({} users, {} actions, {} tuples, {} KiB serialized, {} threads) ---",
        ds.name,
        ds.graph.num_nodes(),
        ds.log.num_actions(),
        ds.log.num_tuples(),
        serialized.len() / 1024,
        par.effective()
    );

    // The offline target every streamed run must reproduce byte-for-byte.
    let offline = {
        let store = scan_with(&ds.graph, &ds.log, &policy, lambda, par).unwrap();
        ModelSnapshot::from_store(store).to_bytes()
    };

    let dir = std::env::temp_dir().join(format!("cdim_bench_ingest_{}", std::process::id()));
    let mut table =
        Table::new(["batch", "batches", "records/s", "publish p50 (ms)", "publish p99 (ms)"]);
    let mut runs: Vec<Run> = Vec::new();
    for batch_actions in BATCH_SIZES {
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("actions.tsv");
        let ckpt_path = dir.join("model.ckpt");
        let config = FollowConfig {
            batch: BatchConfig {
                max_actions: batch_actions,
                max_age: Duration::from_secs(3600), // count-driven, deterministic
            },
            lambda: Some(lambda),
            parallelism: par,
            // Checkpoint cost is part of what a real deployment pays.
            checkpoint_every: 1,
            ..Default::default()
        };
        let mut driver =
            IngestDriver::open(ds.graph.clone(), policy.clone(), &log_path, &ckpt_path, config)
                .unwrap();

        let mut publish_secs: Vec<f64> = Vec::new();
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(&log_path).unwrap();
        let timer = Timer::start();
        for chunk in serialized.chunks(CHUNK_BYTES) {
            file.write_all(chunk).unwrap();
            file.flush().unwrap();
            let report = driver.step().unwrap();
            publish_secs.extend(report.batches.iter().map(|b| b.apply_secs));
        }
        let report = driver.finish().unwrap();
        publish_secs.extend(report.batches.iter().map(|b| b.apply_secs));
        let wall = timer.secs();

        assert!(
            driver.snapshot().to_bytes() == offline,
            "streamed model diverged from offline at batch size {batch_actions}"
        );

        let mut sorted = publish_secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let run = Run {
            batch_actions,
            batches: publish_secs.len(),
            records_per_sec: ds.log.num_tuples() as f64 / wall.max(1e-9),
            publish_p50_ms: quantile(&sorted, 0.50) * 1000.0,
            publish_p99_ms: quantile(&sorted, 0.99) * 1000.0,
        };
        table.row([
            run.batch_actions.to_string(),
            run.batches.to_string(),
            format!("{:.0}", run.records_per_sec),
            format!("{:.3}", run.publish_p50_ms),
            format!("{:.3}", run.publish_p99_ms),
        ]);
        runs.push(run);
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("{table}");
    println!("(equivalence checked: every sweep point reproduced the offline snapshot bytes)");

    match write_json(path, ds.name, ds.log.num_tuples(), lambda, par.effective(), &runs) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace has no serialization dependency).
fn write_json(
    path: &std::path::Path,
    dataset: &str,
    tuples: usize,
    lambda: f64,
    threads: usize,
    runs: &[Run],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"bench-ingest\",\n");
    out.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    out.push_str(&format!("  \"tuples\": {tuples},\n"));
    out.push_str(&format!("  \"lambda\": {lambda},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"chunk_bytes\": {CHUNK_BYTES},\n"));
    out.push_str(&format!("  \"host_cores\": {},\n", Parallelism::auto().effective()));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"batch_actions\": {}, \"batches\": {}, \"records_per_sec\": {:.1}, \
             \"publish_p50_ms\": {:.4}, \"publish_p99_ms\": {:.4}}}{comma}\n",
            run.batch_actions,
            run.batches,
            run.records_per_sec,
            run.publish_p50_ms,
            run.publish_p99_ms
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), 0.0);
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&sorted, 0.0), 1.0);
        assert_eq!(quantile(&sorted, 0.5), 3.0);
        assert_eq!(quantile(&sorted, 1.0), 5.0);
    }

    #[test]
    fn json_record_is_parseable_shape() {
        let dir = std::env::temp_dir().join(format!("cdim_benchingest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_ingest.json");
        let runs = vec![
            Run {
                batch_actions: 1,
                batches: 50,
                records_per_sec: 123456.7,
                publish_p50_ms: 0.8,
                publish_p99_ms: 2.5,
            },
            Run {
                batch_actions: 8,
                batches: 7,
                records_per_sec: 654321.0,
                publish_p50_ms: 3.1,
                publish_p99_ms: 6.0,
            },
        ];
        write_json(&path, "flixster_small", 9000, 0.001, 2, &runs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"bench-ingest\""));
        assert!(text.contains("\"batch_actions\": 8"));
        assert!(text.contains("\"records_per_sec\": 123456.7"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_sweep_runs_and_reports() {
        let dir = std::env::temp_dir().join(format!("cdim_benchingest_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_ingest.json");
        let mut scale = ExperimentScale::quick();
        scale.dataset_divisor = scale.dataset_divisor.max(64);
        run_with_output(scale, &path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"publish_p99_ms\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
