//! bench-memory — mutable vs CSR-compact footprint, v1 vs v2 start-up.
//!
//! Not a paper artifact: this measures the payoff of the compact credit
//! store ([`cdim_core::CompactCreditStore`]) and the zero-copy v2
//! snapshot format. For a sweep of store sizes we train the model, then
//! record (a) resident bytes per user for the mutable hash-map store
//! (after `shrink_to_fit`) vs the frozen CSR arena, and (b) the wall
//! time of `ModelSnapshot::load` on a v1 file (decode + rebuild) vs a v2
//! file (mmap + validate). Equivalence is asserted in-run: the frozen
//! store must thaw back to a byte-identical canonical dump, and the
//! v1-loaded and v2-loaded snapshots must re-encode to identical bytes.
//!
//! The sweep lands machine-readably in `BENCH_memory.json` so CI can
//! track bytes/user and start-up latency across commits.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CompactCreditStore, CreditPolicy, Parallelism};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_serve::{ModelSnapshot, SnapshotFormat};
use cdim_util::Timer;
use std::io::Write as _;

/// Extra dataset divisors on top of the scale's own, largest (smallest
/// store) first — three store sizes per sweep.
const SIZE_DIVISORS: [usize; 3] = [4, 2, 1];

/// How many loads to time per format; the minimum is reported (the
/// steady-state figure — the first load warms the page cache for both).
const LOAD_REPS: usize = 3;

/// Where the JSON record lands by default: `$CDIM_BENCH_JSON_MEMORY` if
/// set (CI points this at the workspace), otherwise the temp directory
/// (so plain `cargo test` runs never litter the repo).
fn json_path() -> std::path::PathBuf {
    match std::env::var_os("CDIM_BENCH_JSON_MEMORY") {
        Some(path) => path.into(),
        None => std::env::temp_dir().join("BENCH_memory.json"),
    }
}

/// One measured store size.
struct Run {
    users: usize,
    actions: usize,
    entries: usize,
    mutable_bytes: usize,
    compact_bytes: usize,
    v1_file_bytes: u64,
    v2_file_bytes: u64,
    v1_load_secs: f64,
    v2_load_secs: f64,
}

/// Runs the sweep; the JSON lands at `$CDIM_BENCH_JSON_MEMORY` or, when
/// unset, `BENCH_memory.json` in the temp directory.
pub fn run(scale: ExperimentScale) {
    run_with_output(scale, &json_path());
}

/// Runs the sweep and writes the JSON record to `path` (the explicit-path
/// variant tests use — no process-global environment involved).
pub fn run_with_output(scale: ExperimentScale, path: &std::path::Path) {
    super::banner(
        "bench-memory — CSR-compact store vs mutable store, v2 vs v1 start-up",
        "engineering artifact (not in the paper): freeze + zero-copy snapshots",
        scale,
    );
    let lambda = 0.001;
    let par = scale.parallelism();
    let dir = std::env::temp_dir().join(format!("cdim_benchmem_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut table = Table::new([
        "users", "entries", "mutable", "compact", "ratio", "v1 load", "v2 load", "startup",
    ]);
    let mut runs: Vec<Run> = Vec::new();
    for extra in SIZE_DIVISORS {
        let divisor = scale.dataset_divisor.saturating_mul(extra).max(1);
        let ds = presets::flixster_large().scaled_down(divisor).generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        let mut store = scan_with(&ds.graph, &ds.log, &policy, lambda, par).unwrap();
        // The honest mutable figure: excess Vec capacity given back first.
        store.shrink_to_fit();
        let mutable_bytes = store.memory_bytes();
        let users = ds.graph.num_nodes();
        let actions = ds.log.num_actions();
        let entries = store.total_entries();

        let compact = CompactCreditStore::freeze(&store);
        let compact_bytes = compact.memory_bytes();
        assert!(
            compact.thaw().dump() == store.dump(),
            "freeze/thaw diverged from the mutable store at divisor {divisor}"
        );

        let snapshot = ModelSnapshot::from_store(store);
        let v1_path = dir.join(format!("model_{divisor}.v1.snap"));
        let v2_path = dir.join(format!("model_{divisor}.v2.snap"));
        snapshot.save_as(&v1_path, SnapshotFormat::V1).unwrap();
        snapshot.save_as(&v2_path, SnapshotFormat::V2).unwrap();
        let v1_file_bytes = std::fs::metadata(&v1_path).unwrap().len();
        let v2_file_bytes = std::fs::metadata(&v2_path).unwrap().len();

        let (v1_load_secs, v1_loaded) = time_load(&v1_path);
        let (v2_load_secs, v2_loaded) = time_load(&v2_path);
        assert!(!v1_loaded.is_compact() && v2_loaded.is_compact(), "format auto-detect failed");
        // Both loads must describe the same model, byte for byte: the
        // canonical (v1) re-encoding is the strongest equality we have.
        assert!(
            v1_loaded.to_bytes() == v2_loaded.to_bytes(),
            "v1-load and v2-load disagree at divisor {divisor}"
        );

        let ratio = mutable_bytes as f64 / compact_bytes.max(1) as f64;
        let startup = v1_load_secs / v2_load_secs.max(1e-9);
        table.row([
            users.to_string(),
            entries.to_string(),
            fmt_per_user(mutable_bytes, users),
            fmt_per_user(compact_bytes, users),
            format!("{ratio:.1}x"),
            format!("{v1_load_secs:.4}s"),
            format!("{v2_load_secs:.4}s"),
            format!("{startup:.0}x"),
        ]);
        runs.push(Run {
            users,
            actions,
            entries,
            mutable_bytes,
            compact_bytes,
            v1_file_bytes,
            v2_file_bytes,
            v1_load_secs,
            v2_load_secs,
        });
    }
    println!("{table}");
    println!(
        "(equivalence checked: every freeze thawed byte-identically, every v2 load \
         re-encoded byte-identically to its v1 load)"
    );
    std::fs::remove_dir_all(&dir).ok();

    match write_json(path, lambda, par.effective(), &runs) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Loads `path` [`LOAD_REPS`] times and returns the fastest wall time
/// along with the last loaded snapshot.
fn time_load(path: &std::path::Path) -> (f64, ModelSnapshot) {
    let mut best = f64::INFINITY;
    let mut loaded = None;
    for _ in 0..LOAD_REPS {
        let t = Timer::start();
        let snapshot = ModelSnapshot::load(path).unwrap();
        best = best.min(t.secs());
        loaded = Some(snapshot);
    }
    (best, loaded.expect("LOAD_REPS > 0"))
}

/// `"1.2 MiB (123 B/user)"`-style cell.
fn fmt_per_user(bytes: usize, users: usize) -> String {
    format!(
        "{} ({} B/u)",
        cdim_util::mem::fmt_bytes(bytes),
        (bytes as f64 / users.max(1) as f64).round() as usize
    )
}

/// Hand-rolled JSON (the workspace has no serialization dependency).
fn write_json(
    path: &std::path::Path,
    lambda: f64,
    threads: usize,
    runs: &[Run],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"bench-memory\",\n");
    out.push_str("  \"dataset\": \"flixster_large\",\n");
    out.push_str(&format!("  \"lambda\": {lambda},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"host_cores\": {},\n", Parallelism::auto().effective()));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let ratio = run.mutable_bytes as f64 / run.compact_bytes.max(1) as f64;
        let startup = run.v1_load_secs / run.v2_load_secs.max(1e-9);
        out.push_str(&format!(
            "    {{\"users\": {}, \"actions\": {}, \"entries\": {}, \
             \"mutable_bytes\": {}, \"compact_bytes\": {}, \"bytes_ratio\": {ratio:.3}, \
             \"mutable_bytes_per_user\": {:.1}, \"compact_bytes_per_user\": {:.1}, \
             \"v1_file_bytes\": {}, \"v2_file_bytes\": {}, \
             \"v1_load_secs\": {:.6}, \"v2_load_secs\": {:.6}, \
             \"startup_speedup\": {startup:.3}}}{comma}\n",
            run.users,
            run.actions,
            run.entries,
            run.mutable_bytes,
            run.compact_bytes,
            run.mutable_bytes as f64 / run.users.max(1) as f64,
            run.compact_bytes as f64 / run.users.max(1) as f64,
            run.v1_file_bytes,
            run.v2_file_bytes,
            run.v1_load_secs,
            run.v2_load_secs,
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_is_parseable_shape() {
        let dir = std::env::temp_dir().join(format!("cdim_benchmem_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_memory.json");
        let runs = vec![
            Run {
                users: 1000,
                actions: 50,
                entries: 4000,
                mutable_bytes: 400_000,
                compact_bytes: 100_000,
                v1_file_bytes: 120_000,
                v2_file_bytes: 110_000,
                v1_load_secs: 0.05,
                v2_load_secs: 0.001,
            },
            Run {
                users: 2000,
                actions: 100,
                entries: 9000,
                mutable_bytes: 900_000,
                compact_bytes: 220_000,
                v1_file_bytes: 260_000,
                v2_file_bytes: 240_000,
                v1_load_secs: 0.11,
                v2_load_secs: 0.002,
            },
        ];
        write_json(&path, 0.001, 4, &runs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"bench-memory\""));
        assert!(text.contains("\"compact_bytes\": 100000"));
        assert!(text.contains("\"startup_speedup\""));
        // Crude structural sanity: balanced braces/brackets, no trailing
        // comma before a closer.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_sweep_runs_and_reports() {
        let dir = std::env::temp_dir().join(format!("cdim_benchmem_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_memory.json");
        let mut scale = ExperimentScale::quick();
        scale.dataset_divisor = scale.dataset_divisor.max(64);
        run_with_output(scale, &path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"bytes_ratio\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
