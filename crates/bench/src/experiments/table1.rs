//! Table 1 — dataset statistics.

use crate::config::ExperimentScale;
use cdim_actionlog::stats::log_stats;
use cdim_datagen::presets;
use cdim_graph::stats::graph_stats;
use cdim_metrics::Table;

/// Prints node/edge/propagation/tuple statistics for all four presets.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Table 1 — statistics of datasets",
        "Table 1 (paper: Flixster/Flickr Large 1M–1.32M nodes, Small 13K–14.8K; scaled per DESIGN.md §3)",
        scale,
    );
    let mut table = Table::new([
        "dataset",
        "#nodes",
        "#dir.edges",
        "avg.degree",
        "#propagations",
        "#tuples",
        "avg.trace",
        "max.trace",
    ]);
    for spec in presets::all_presets() {
        let ds = spec.scaled_down(scale.dataset_divisor).generate();
        let gs = graph_stats(&ds.graph);
        let ls = log_stats(&ds.log);
        table.row([
            ds.name.to_string(),
            gs.nodes.to_string(),
            gs.edges.to_string(),
            format!("{:.1}", gs.avg_degree),
            ls.propagations.to_string(),
            ls.tuples.to_string(),
            format!("{:.1}", ls.avg_size),
            ls.max_size.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "shape check vs paper: the flickr-like presets are several times denser\n\
         (avg degree) than the flixster-like ones, and trace sizes are heavy-tailed."
    );
}
