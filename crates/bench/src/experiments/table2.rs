//! Table 2 — seed-set intersections across probability-assignment methods.
//!
//! Experiment 1 of §3: run greedy (CELF) under IC with UN/WC/TV/EM/PT
//! probabilities and intersect the resulting seed sets. The paper finds EM
//! nearly disjoint from the ad-hoc methods but ≈90% overlapping with its
//! own perturbation PT.

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use cdim_datagen::presets;
use cdim_metrics::{intersection_matrix, Table};

/// Prints intersection matrices for both small presets.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Table 2 — seed-set intersections (UN/WC/TV/EM/PT under IC)",
        "Table 2 (paper: EM∩{UN,WC,TV} ≈ 0–6 of 50; EM∩PT = 44; on Flickr via PMIA)",
        scale,
    );
    run_dataset(presets::flixster_small(), scale, false);
    run_dataset(presets::flickr_small(), scale, true);
}

fn run_dataset(spec: cdim_datagen::DatasetSpec, scale: ExperimentScale, use_mia: bool) {
    let wb = Workbench::prepare(spec, scale);
    let k = scale.k;
    let select = |probs: &cdim_diffusion::EdgeProbabilities| {
        if use_mia {
            wb.select_ic_mia(probs, k)
        } else {
            wb.select_ic_mc(probs, k)
        }
    };
    let sets: Vec<(&str, Vec<u32>)> = vec![
        ("UN", select(&wb.un)),
        ("WC", select(&wb.wc)),
        ("TV", select(&wb.tv)),
        ("EM", select(&wb.em)),
        ("PT", select(&wb.pt)),
    ];
    let matrix = intersection_matrix(&sets);

    println!(
        "--- {} (k = {k}, IC spread via {}) ---",
        wb.dataset.name,
        if use_mia { "MIA heuristic, as the paper does for Flickr" } else { "MC + CELF" }
    );
    let mut table = Table::new(std::iter::once("").chain(sets.iter().map(|(n, _)| *n)));
    for (i, (name, _)) in sets.iter().enumerate() {
        table.row(std::iter::once(name.to_string()).chain(matrix[i].iter().map(|c| c.to_string())));
    }
    println!("{table}");
    let em_pt = matrix[3][4];
    let em_adhoc_max = matrix[3][0].max(matrix[3][1]).max(matrix[3][2]);
    println!(
        "shape check: EM∩PT = {em_pt}/{k} (robust to noise), \
         max EM∩ad-hoc = {em_adhoc_max}/{k} (learned ≠ assumed)\n"
    );
}
