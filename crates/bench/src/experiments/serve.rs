//! bench-serve — concurrent-connection latency sweep, reactor vs threads.
//!
//! Not a paper artifact: this measures the PR-9 serving frontend. For a
//! sweep of concurrent-connection counts we drive the pipelined
//! [`crate::loadgen`] against both backends — the readiness-driven
//! reactor ("after") and the fixed thread-per-connection baseline
//! ("before") — and report p50/p90/p99 request latency plus aggregate
//! throughput side by side. Sweep sizes past [`IN_PROCESS_MAX`] put the
//! server in a re-exec'd child process so client and server each get
//! their own fd budget (the container caps `RLIMIT_NOFILE` at 20 000 and
//! will not raise it); the threaded baseline stops at `threaded_cap`
//! because a thread per connection stops being a baseline and starts
//! being a fork bomb somewhere past a couple thousand.
//!
//! The sweep lands machine-readably in `BENCH_serve.json` so CI can
//! track serving tails across commits.

use crate::config::ExperimentScale;
use crate::loadgen::{self, ChildServer, LoadConfig, LoadReport};
use cdim_core::{scan, CreditPolicy};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_serve::{server, InfluenceService, ModelSnapshot, ServerConfig};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Above this many concurrent connections the server runs in a child
/// process: client sockets + server sockets would otherwise share one
/// 20k-fd budget.
pub const IN_PROCESS_MAX: usize = 4096;

/// Largest connection count the thread-per-connection baseline is asked
/// to hold (overridable via `CDIM_BENCH_THREADED_CAP`).
const THREADED_CAP_DEFAULT: usize = 1024;

/// One measured (backend, connection-count) cell.
pub struct Row {
    /// `"reactor"` or `"threaded"`.
    pub backend: &'static str,
    /// Concurrent connections driven.
    pub connections: usize,
    /// The loadgen's latency/throughput summary.
    pub report: LoadReport,
}

/// Where the JSON record lands by default: `$CDIM_BENCH_JSON_SERVE` if
/// set (CI points this at the workspace), otherwise the temp directory.
fn json_path() -> std::path::PathBuf {
    match std::env::var_os("CDIM_BENCH_JSON_SERVE") {
        Some(path) => path.into(),
        None => std::env::temp_dir().join("BENCH_serve.json"),
    }
}

fn threaded_cap() -> usize {
    std::env::var("CDIM_BENCH_THREADED_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(THREADED_CAP_DEFAULT)
}

/// Runs the sweep; the JSON lands at `$CDIM_BENCH_JSON_SERVE` or, when
/// unset, `BENCH_serve.json` in the temp directory.
pub fn run(scale: ExperimentScale) {
    run_with_output(scale, &json_path());
}

/// Runs the sweep and writes the JSON record to `path` (the explicit-path
/// variant tests use — no process-global environment involved).
pub fn run_with_output(scale: ExperimentScale, path: &std::path::Path) {
    super::banner(
        "bench-serve — concurrent-connection tails, reactor vs thread-per-connection",
        "engineering artifact (not in the paper): the PR-9 serving frontend",
        scale,
    );
    // Quick keeps everything in-process so `cargo test` (whose harness
    // main cannot host a server child) can exercise the sweep end to end.
    let sizes: &[usize] = if scale.dataset_divisor >= ExperimentScale::quick().dataset_divisor {
        &[32, 128]
    } else {
        &[64, 1024, 10_000]
    };
    let requests_per_conn = 8;
    let divisor = scale.dataset_divisor.max(8);
    let cap = threaded_cap();

    let rows = sweep(sizes, requests_per_conn, divisor, cap);

    let mut table = Table::new(["backend", "conns", "requests", "qps", "p50", "p90", "p99", "max"]);
    for row in &rows {
        table.row([
            row.backend.to_string(),
            row.connections.to_string(),
            row.report.requests.to_string(),
            format!("{:.0}", row.report.qps()),
            format!("{:.2?}", row.report.p50),
            format!("{:.2?}", row.report.p90),
            format!("{:.2?}", row.report.p99),
            format!("{:.2?}", row.report.max),
        ]);
    }
    println!("{table}");
    println!(
        "(threaded baseline swept up to {cap} connections; larger sizes are reactor-only — \
         sizes past {IN_PROCESS_MAX} serve from a child process for fd headroom)"
    );

    match write_json(path, requests_per_conn, divisor, &rows) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Measures every (backend, size) cell: the reactor at every size, the
/// threaded baseline at sizes up to `threaded_cap`. One trained model is
/// shared by all in-process servers.
pub fn sweep(
    sizes: &[usize],
    requests_per_conn: usize,
    divisor: usize,
    threaded_cap: usize,
) -> Vec<Row> {
    let service = shared_service(divisor);
    let mut rows = Vec::new();
    for &conns in sizes {
        // "Before" first, so each size's pair prints adjacently.
        if conns <= threaded_cap {
            match run_one("threaded", conns, requests_per_conn, divisor, &service) {
                Ok(report) => rows.push(Row { backend: "threaded", connections: conns, report }),
                Err(e) => eprintln!("threaded @ {conns} conns failed: {e}"),
            }
        }
        match run_one("reactor", conns, requests_per_conn, divisor, &service) {
            Ok(report) => rows.push(Row { backend: "reactor", connections: conns, report }),
            Err(e) => eprintln!("reactor @ {conns} conns failed: {e}"),
        }
    }
    rows
}

/// One cell: spawn the `backend` server (in-process up to
/// [`IN_PROCESS_MAX`] connections, child process beyond), drive it, tear
/// it down.
fn run_one(
    backend: &'static str,
    conns: usize,
    requests_per_conn: usize,
    divisor: usize,
    service: &Arc<InfluenceService>,
) -> std::io::Result<LoadReport> {
    let config = LoadConfig {
        connections: conns,
        requests_per_connection: requests_per_conn,
        pipeline: 4,
        deadline: Duration::from_secs(300),
        ..LoadConfig::default()
    };
    if conns > IN_PROCESS_MAX {
        let child = ChildServer::spawn(backend, divisor)?;
        return loadgen::run(child.addr(), &config);
    }
    let server_config = ServerConfig { max_connections: conns + 64, ..ServerConfig::default() };
    match backend {
        "threaded" => {
            let handle = server::threaded::spawn_threaded(
                Arc::clone(service),
                "127.0.0.1:0",
                server_config,
            )?;
            let report = loadgen::run(handle.addr(), &config);
            handle.shutdown();
            report
        }
        _ => {
            let handle = server::spawn_with(Arc::clone(service), "127.0.0.1:0", server_config)?;
            let report = loadgen::run(handle.addr(), &config);
            handle.shutdown();
            report
        }
    }
}

/// The in-process servers' model: a trained store on a scaled-down
/// preset (the child builds its own identical one from the same knob).
fn shared_service(divisor: usize) -> Arc<InfluenceService> {
    let ds = presets::flixster_small().scaled_down(divisor).generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store = scan(&ds.graph, &ds.log, &policy, 0.001).expect("scan");
    Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), 4096))
}

/// Hand-rolled JSON (the workspace has no serialization dependency).
fn write_json(
    path: &std::path::Path,
    requests_per_conn: usize,
    divisor: usize,
    rows: &[Row],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"bench-serve\",\n");
    out.push_str("  \"dataset\": \"flixster_small\",\n");
    out.push_str(&format!("  \"dataset_divisor\": {divisor},\n"));
    out.push_str(&format!("  \"requests_per_connection\": {requests_per_conn},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let r = &row.report;
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"connections\": {}, \"requests\": {}, \
             \"elapsed_secs\": {:.6}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}{comma}\n",
            row.backend,
            row.connections,
            r.requests,
            r.elapsed.as_secs_f64(),
            r.qps(),
            r.p50.as_secs_f64() * 1e6,
            r.p90.as_secs_f64() * 1e6,
            r.p99.as_secs_f64() * 1e6,
            r.max.as_secs_f64() * 1e6,
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_is_parseable_shape() {
        let dir = std::env::temp_dir().join(format!("cdim_benchserve_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        let report = LoadReport {
            connections: 64,
            requests: 512,
            elapsed: Duration::from_millis(250),
            p50: Duration::from_micros(90),
            p90: Duration::from_micros(200),
            p99: Duration::from_micros(900),
            max: Duration::from_millis(3),
        };
        let rows = vec![
            Row { backend: "threaded", connections: 64, report },
            Row { backend: "reactor", connections: 64, report },
        ];
        write_json(&path, 8, 8, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"bench-serve\""));
        assert!(text.contains("\"backend\": \"reactor\""));
        assert!(text.contains("\"p99_us\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_sweep_compares_both_backends() {
        let dir = std::env::temp_dir().join(format!("cdim_benchserve_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        run_with_output(ExperimentScale::quick(), &path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"backend\": \"reactor\""));
        assert!(text.contains("\"backend\": \"threaded\""));
        assert!(text.contains("\"connections\": 128"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
