//! Fig 8 — CD scalability: runtime (left) and memory (right) vs #tuples.
//!
//! Paper shape: both scan time and credit-store memory grow roughly
//! linearly with the number of training tuples; most of the total time is
//! the scan, not the seed selection.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CdSelector, CreditPolicy};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_util::mem::fmt_bytes;
use cdim_util::Timer;

/// Prints runtime/memory vs training-tuple count on both large presets.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 8 — CD runtime (left) and memory (right) vs #tuples",
        "Fig 8 (paper: ~linear growth; scan dominates; 15 min / 16 GB at 5–6.5M tuples)",
        scale,
    );
    for spec in [presets::flixster_large(), presets::flickr_large()] {
        run_dataset(spec, scale);
    }
}

fn run_dataset(spec: cdim_datagen::DatasetSpec, scale: ExperimentScale) {
    let ds = spec.scaled_down(scale.dataset_divisor).generate();
    let total = ds.log.num_tuples();
    println!("--- {} ({} tuples total) ---", ds.name, total);

    let mut table =
        Table::new(["#tuples", "scan (s)", "select (s)", "total (s)", "UC entries", "memory"]);
    let mut series: Vec<(usize, f64, usize)> = Vec::new();
    for fraction in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let budget = ((total as f64) * fraction) as usize;
        let log = ds.log.take_tuples(budget);
        let tuples = log.num_tuples();

        let t = Timer::start();
        let policy = CreditPolicy::time_aware(&ds.graph, &log);
        let store = scan_with(&ds.graph, &log, &policy, 0.001, scale.parallelism()).unwrap();
        let scan_s = t.secs();
        let entries = store.total_entries();
        let bytes = store.memory_bytes();

        let t = Timer::start();
        let _ = CdSelector::new(store).select(scale.k);
        let select_s = t.secs();

        series.push((tuples, scan_s + select_s, bytes));
        table.row([
            tuples.to_string(),
            format!("{scan_s:.2}"),
            format!("{select_s:.2}"),
            format!("{:.2}", scan_s + select_s),
            entries.to_string(),
            fmt_bytes(bytes),
        ]);
    }
    println!("{table}");

    // Shape check: near-linear growth — the largest run should cost no
    // more than ~2x a linear extrapolation of the smallest.
    if let (Some(first), Some(last)) = (series.first(), series.last()) {
        let time_ratio = last.1 / first.1.max(1e-9);
        let tuple_ratio = last.0 as f64 / first.0.max(1) as f64;
        let mem_ratio = last.2 as f64 / first.2.max(1) as f64;
        println!(
            "shape check: tuples x{tuple_ratio:.1} -> time x{time_ratio:.1}, memory x{mem_ratio:.1} \
             (linear would be x{tuple_ratio:.1})\n"
        );
    }
}
