//! Fig 3 — RMSE of IC (EM-learned) vs LT (learned weights) vs CD.
//!
//! Paper shape: CD wins on both datasets; IC beats LT on Flixster but
//! loses on Flickr (model fit is dataset-dependent), while CD is robust.

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use crate::prediction::{prediction_pairs, Method};
use cdim_datagen::presets;
use cdim_metrics::{binned_rmse, rmse, Table};

/// Prints the binned-RMSE comparison of the three models.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 3 — RMSE vs propagation size: IC vs LT vs CD",
        "Fig 3 (paper: CD lowest everywhere; IC/LT order flips between datasets)",
        scale,
    );
    for spec in [presets::flixster_small(), presets::flickr_small()] {
        let wb = Workbench::prepare(spec, scale);
        print_dataset(&wb);
    }
}

fn print_dataset(wb: &Workbench) {
    let methods = Method::fig3_set();
    let pairs: Vec<(Method, Vec<(f64, f64)>)> =
        methods.iter().map(|&m| (m, prediction_pairs(wb, m))).collect();
    let max_actual = pairs[0].1.iter().map(|&(a, _)| a).fold(0.0f64, f64::max);
    let bin_width = super::auto_bin_width(max_actual, 8);

    println!("--- {} (bins of {bin_width}) ---", wb.dataset.name);
    let mut table =
        Table::new(std::iter::once("actual-spread bin".to_string()).chain(methods.iter().map(
            |m| {
                if *m == Method::Em {
                    "IC".to_string()
                } else {
                    m.name().to_string()
                }
            },
        )));
    for bin in binned_rmse(&pairs[0].1, bin_width) {
        let mut row = vec![format!("[{}, {})", bin.bin_start, bin.bin_start + bin_width)];
        for (_, p) in &pairs {
            let r = binned_rmse(p, bin_width)
                .iter()
                .find(|x| x.bin_start == bin.bin_start)
                .map(|x| x.rmse)
                .unwrap_or(0.0);
            row.push(format!("{r:.1}"));
        }
        table.row(row);
    }
    println!("{table}");

    let overall: Vec<(Method, f64)> = pairs.iter().map(|(m, p)| (*m, rmse(p))).collect();
    for (m, r) in &overall {
        let label = if *m == Method::Em { "IC" } else { m.name() };
        println!("overall RMSE {label}: {r:.1}");
    }
    let cd = overall.iter().find(|(m, _)| *m == Method::Cd).unwrap().1;
    let best_other = overall
        .iter()
        .filter(|(m, _)| *m != Method::Cd)
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min);
    println!(
        "shape check: CD {} the best propagation model ({cd:.1} vs {best_other:.1})\n",
        if cd <= best_other { "beats" } else { "does NOT beat (investigate)" }
    );
}
