//! Fig 9 — convergence with training-set size.
//!
//! Paper shape: both the spread achieved by the selected seeds and the
//! overlap with the "true seeds" (those selected from the *full* log)
//! saturate well before the full log is used — a small sample of traces
//! suffices.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CdSelector, CdSpreadEvaluator, CreditPolicy};
use cdim_datagen::presets;
use cdim_metrics::{intersection_size, Table};

/// Prints spread + true-seed overlap vs #tuples on both large presets.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 9 — spread and true-seed recovery vs #tuples",
        "Fig 9 (paper: quality saturates at ~1M of 6.5M tuples on Flixster)",
        scale,
    );
    for spec in [presets::flixster_large(), presets::flickr_large()] {
        run_dataset(spec, scale);
    }
}

fn run_dataset(spec: cdim_datagen::DatasetSpec, scale: ExperimentScale) {
    let ds = spec.scaled_down(scale.dataset_divisor).generate();
    let k = scale.k;

    // "True seeds" and the reference evaluator come from the full log.
    let policy_full = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store_full =
        scan_with(&ds.graph, &ds.log, &policy_full, 0.001, scale.parallelism()).unwrap();
    let true_seeds = CdSelector::new(store_full).select(k).seeds;
    let evaluator = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy_full);

    println!("--- {} ({} tuples total) ---", ds.name, ds.log.num_tuples());
    let mut table = Table::new(["#tuples", "influence spread", "true seeds found"]);
    let mut last_fraction_spread = 0.0;
    let mut mid_spread = 0.0;
    for fraction in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let budget = ((ds.log.num_tuples() as f64) * fraction) as usize;
        let log = ds.log.take_tuples(budget);
        let policy = CreditPolicy::time_aware(&ds.graph, &log);
        let store = scan_with(&ds.graph, &log, &policy, 0.001, scale.parallelism()).unwrap();
        let seeds = CdSelector::new(store).select(k).seeds;
        let spread = evaluator.spread(&seeds);
        let overlap = intersection_size(&seeds, &true_seeds);
        if (fraction - 0.4).abs() < 1e-9 {
            mid_spread = spread;
        }
        if (fraction - 1.0).abs() < 1e-9 {
            last_fraction_spread = spread;
        }
        table.row([log.num_tuples().to_string(), format!("{spread:.1}"), format!("{overlap}/{k}")]);
    }
    println!("{table}");
    println!(
        "shape check: spread at 40% of tuples is {:.0}% of full-log spread (saturation)\n",
        100.0 * mid_spread / last_fraction_spread.max(1e-9)
    );
}
