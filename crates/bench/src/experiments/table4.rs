//! Table 4 — effect of the truncation threshold λ.
//!
//! Paper shape: shrinking λ improves spread and true-seed recovery at the
//! cost of memory and runtime, saturating at λ = 0.001 (the default used
//! everywhere else). "True seeds" are those found at the smallest λ.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CdSelector, CdSpreadEvaluator, CreditPolicy};
use cdim_datagen::presets;
use cdim_metrics::{intersection_size, Table};
use cdim_util::mem::fmt_bytes;
use cdim_util::Timer;

/// λ grid of the paper's Table 4.
pub const LAMBDAS: [f64; 5] = [0.1, 0.01, 0.001, 0.0005, 0.0001];

/// Prints the λ sweep on the Flixster-like large preset.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Table 4 — effect of truncation threshold λ (Flixster_Large)",
        "Table 4 (paper: spread/true-seeds saturate at λ = 0.001; memory and time grow as λ shrinks)",
        scale,
    );
    let ds = presets::flixster_large().scaled_down(scale.dataset_divisor).generate();
    let k = scale.k;
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let evaluator = CdSpreadEvaluator::build(&ds.graph, &ds.log, &policy);

    // Reference ("true") seeds at the smallest λ, as the paper defines.
    let store_ref =
        scan_with(&ds.graph, &ds.log, &policy, *LAMBDAS.last().unwrap(), scale.parallelism())
            .unwrap();
    let true_seeds = CdSelector::new(store_ref).select(k).seeds;

    let mut table = Table::new([
        "lambda",
        "influence spread",
        "true seeds",
        "UC entries",
        "memory",
        "runtime (s)",
    ]);
    let mut spreads = Vec::new();
    for &lambda in &LAMBDAS {
        let t = Timer::start();
        let store = scan_with(&ds.graph, &ds.log, &policy, lambda, scale.parallelism()).unwrap();
        let entries = store.total_entries();
        let bytes = store.memory_bytes();
        let seeds = CdSelector::new(store).select(k).seeds;
        let secs = t.secs();
        let spread = evaluator.spread(&seeds);
        spreads.push(spread);
        table.row([
            format!("{lambda}"),
            format!("{spread:.1}"),
            format!("{}/{k}", intersection_size(&seeds, &true_seeds)),
            entries.to_string(),
            fmt_bytes(bytes),
            format!("{secs:.2}"),
        ]);
    }
    println!("{table}");
    let at_001 = spreads[2];
    let at_min = *spreads.last().unwrap();
    println!(
        "shape check: spread at λ=0.001 is {:.1}% of λ=0.0001 spread (saturation, paper: ~99.9%)\n",
        100.0 * at_001 / at_min.max(1e-9)
    );
}
