//! bench-window — sliding-window retraction cost vs a window-only rescan.
//!
//! Not a paper artifact: this measures the payoff of the sliding-window
//! subsystem. A windowed deployment expires old actions as the watermark
//! advances; the naive alternative rebuilds the model by rescanning just
//! the surviving window. Here we train on the large preset's full log,
//! then for shrinking window fractions record the wall time of (a) a
//! from-scratch scan of the window and (b) `CreditStore::retract_delta`
//! of the expired prefix — asserting on the spot that both land on
//! byte-identical canonical dumps — plus the store's memory high-water
//! mark before and after expiry (the bytes a window actually buys back).
//!
//! The sweep lands machine-readably in `BENCH_window.json` so CI can
//! track the expiry-cost curve across commits.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CreditPolicy, Parallelism};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_util::Timer;
use std::io::Write as _;

/// Fractions of the log kept as the window, largest first.
const WINDOW_FRACTIONS: [f64; 4] = [0.75, 0.5, 0.25, 0.10];

/// Where the JSON record lands by default: `$CDIM_BENCH_JSON_WINDOW` if
/// set (CI points this at the workspace), otherwise the temp directory
/// (so plain `cargo test` runs never litter the repo).
fn json_path() -> std::path::PathBuf {
    match std::env::var_os("CDIM_BENCH_JSON_WINDOW") {
        Some(path) => path.into(),
        None => std::env::temp_dir().join("BENCH_window.json"),
    }
}

/// One measured expiry.
struct Run {
    fraction: f64,
    window_actions: usize,
    expired_actions: usize,
    rescan_secs: f64,
    retract_secs: f64,
    full_bytes: usize,
    window_bytes: usize,
}

/// Runs the sweep; the JSON lands at `$CDIM_BENCH_JSON_WINDOW` or, when
/// unset, `BENCH_window.json` in the temp directory.
pub fn run(scale: ExperimentScale) {
    run_with_output(scale, &json_path());
}

/// Runs the sweep and writes the JSON record to `path` (the explicit-path
/// variant tests use — no process-global environment involved).
pub fn run_with_output(scale: ExperimentScale, path: &std::path::Path) {
    super::banner(
        "bench-window — sliding-window expiry vs window-only rescan",
        "engineering artifact (not in the paper): prefix retraction via retract_delta",
        scale,
    );
    let ds = presets::flixster_large().scaled_down(scale.dataset_divisor).generate();
    let lambda = 0.001;
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let par = scale.parallelism();
    let n = ds.log.num_actions();
    println!(
        "--- {} ({} users, {} actions, {} tuples, {} threads) ---",
        ds.name,
        ds.graph.num_nodes(),
        n,
        ds.log.num_tuples(),
        par.effective()
    );

    // The full-log store every expiry starts from — also the warm-up
    // pass and the memory high-water mark.
    let full = scan_with(&ds.graph, &ds.log, &policy, lambda, par).unwrap();
    let full_bytes = full.memory_bytes();

    let mut table =
        Table::new(["window", "actions", "rescan (s)", "retract (s)", "speedup", "memory"]);
    let mut runs: Vec<Run> = Vec::new();
    for fraction in WINDOW_FRACTIONS {
        let keep = (((n as f64) * fraction).round() as usize).clamp(1, n);
        let expire = n - keep;
        let (expired, window_log) = ds.log.split_off_prefix(expire);

        // (a) what a naive window refresh pays: rescan the window.
        let t = Timer::start();
        let rescan = scan_with(&ds.graph, &window_log, &policy, lambda, par).unwrap();
        let rescan_secs = t.secs();

        // (b) what the expiry path pays: retract the expired prefix from
        // a clone of the full store (cloning is untimed setup — a
        // deployment already holds the full store).
        let mut store = full.clone();
        let t = Timer::start();
        store.retract_delta(&ds.graph, &expired, &policy, par).unwrap();
        let retract_secs = t.secs();
        assert!(
            store.dump() == rescan.dump(),
            "retract diverged from the window-only rescan at fraction {fraction}"
        );
        let window_bytes = store.memory_bytes();

        let speedup = rescan_secs / retract_secs.max(1e-9);
        table.row([
            format!("{:.0}%", fraction * 100.0),
            keep.to_string(),
            format!("{rescan_secs:.3}"),
            format!("{retract_secs:.3}"),
            format!("{speedup:.1}x"),
            format!(
                "{} -> {}",
                cdim_util::mem::fmt_bytes(full_bytes),
                cdim_util::mem::fmt_bytes(window_bytes)
            ),
        ]);
        runs.push(Run {
            fraction,
            window_actions: keep,
            expired_actions: expire,
            rescan_secs,
            retract_secs,
            full_bytes,
            window_bytes,
        });
    }
    println!("{table}");
    println!("(equivalence checked: every retract dumped byte-identically to its window rescan)");

    match write_json(path, ds.name, n, ds.log.num_tuples(), lambda, par.effective(), &runs) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace has no serialization dependency).
fn write_json(
    path: &std::path::Path,
    dataset: &str,
    actions: usize,
    tuples: usize,
    lambda: f64,
    threads: usize,
    runs: &[Run],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"bench-window\",\n");
    out.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    out.push_str(&format!("  \"actions\": {actions},\n"));
    out.push_str(&format!("  \"tuples\": {tuples},\n"));
    out.push_str(&format!("  \"lambda\": {lambda},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"host_cores\": {},\n", Parallelism::auto().effective()));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let speedup = run.rescan_secs / run.retract_secs.max(1e-9);
        out.push_str(&format!(
            "    {{\"window_fraction\": {}, \"window_actions\": {}, \"expired_actions\": {}, \
             \"rescan_secs\": {:.6}, \"retract_secs\": {:.6}, \"speedup\": {speedup:.3}, \
             \"full_bytes\": {}, \"window_bytes\": {}}}{comma}\n",
            run.fraction,
            run.window_actions,
            run.expired_actions,
            run.rescan_secs,
            run.retract_secs,
            run.full_bytes,
            run.window_bytes
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_is_parseable_shape() {
        let dir = std::env::temp_dir().join(format!("cdim_benchwin_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_window.json");
        let runs = vec![
            Run {
                fraction: 0.5,
                window_actions: 100,
                expired_actions: 100,
                rescan_secs: 0.4,
                retract_secs: 0.2,
                full_bytes: 2048,
                window_bytes: 1024,
            },
            Run {
                fraction: 0.1,
                window_actions: 20,
                expired_actions: 180,
                rescan_secs: 0.1,
                retract_secs: 0.4,
                full_bytes: 2048,
                window_bytes: 256,
            },
        ];
        write_json(&path, "flixster_large", 200, 1800, 0.001, 4, &runs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"bench-window\""));
        assert!(text.contains("\"window_fraction\": 0.1"));
        assert!(text.contains("\"window_bytes\": 256"));
        // Crude structural sanity: balanced braces/brackets, no trailing
        // comma before a closer.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_sweep_runs_and_reports() {
        let dir = std::env::temp_dir().join(format!("cdim_benchwin_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_window.json");
        let mut scale = ExperimentScale::quick();
        scale.dataset_divisor = scale.dataset_divisor.max(64);
        run_with_output(scale, &path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"retract_secs\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
