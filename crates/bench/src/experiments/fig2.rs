//! Fig 2 — spread-prediction error of ad-hoc vs learned IC probabilities.
//!
//! (a)/(c): RMSE between predicted and actual spread, binned by actual
//! spread, on the two small datasets. (b): predicted-vs-actual summary.
//! Paper shape: UN is tolerable only for small traces; TV and WC
//! systematically overpredict (they only "work" for the few huge traces);
//! EM/PT dominate everywhere and are nearly indistinguishable.

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use crate::prediction::{prediction_pairs, Method};
use cdim_datagen::presets;
use cdim_metrics::{binned_rmse, rmse, Table};

/// Prints the binned-RMSE tables and the scatter summary.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 2 — RMSE vs actual spread: UN/TV/WC vs EM/PT (IC model)",
        "Fig 2(a) Flixster_Small, 2(b) scatter, 2(c) Flickr_Small",
        scale,
    );
    for spec in [presets::flixster_small(), presets::flickr_small()] {
        let wb = Workbench::prepare(spec, scale);
        print_dataset(&wb);
    }
}

fn print_dataset(wb: &Workbench) {
    let methods = Method::fig2_set();
    let pairs: Vec<(Method, Vec<(f64, f64)>)> =
        methods.iter().map(|&m| (m, prediction_pairs(wb, m))).collect();
    let max_actual = pairs[0].1.iter().map(|&(a, _)| a).fold(0.0f64, f64::max);
    let bin_width = super::auto_bin_width(max_actual, 8);

    println!("--- {} ({} test traces, bins of {bin_width}) ---", wb.dataset.name, pairs[0].1.len());

    // RMSE per actual-spread bin (panels a/c).
    let mut table = Table::new(
        std::iter::once("actual-spread bin".to_string())
            .chain(methods.iter().map(|m| m.name().to_string())),
    );
    let reference_bins = binned_rmse(&pairs[0].1, bin_width);
    for bin in &reference_bins {
        let mut row = vec![format!("[{}, {})", bin.bin_start, bin.bin_start + bin_width)];
        for (_, p) in &pairs {
            let b = binned_rmse(p, bin_width);
            let r = b.iter().find(|x| x.bin_start == bin.bin_start).map(|x| x.rmse).unwrap_or(0.0);
            row.push(format!("{r:.1}"));
        }
        table.row(row);
    }
    println!("{table}");

    // Overall RMSE + mean prediction (panel b summary).
    let mut summary = Table::new(["method", "overall RMSE", "mean actual", "mean predicted"]);
    for (m, p) in &pairs {
        let mean_a = p.iter().map(|&(a, _)| a).sum::<f64>() / p.len() as f64;
        let mean_p = p.iter().map(|&(_, q)| q).sum::<f64>() / p.len() as f64;
        summary.row([
            m.name().to_string(),
            format!("{:.1}", rmse(p)),
            format!("{mean_a:.1}"),
            format!("{mean_p:.1}"),
        ]);
    }
    println!("{summary}");

    // The paper's Fig 2 claims are per-bin: UN is competitive only for the
    // smallest propagations, TV/WC only for the largest (outliers), while
    // EM/PT win everywhere in between and track each other closely.
    let mut em_wins = 0usize;
    let mut upper_bins = 0usize;
    for bin in binned_rmse(&pairs[0].1, bin_width).iter().skip(1) {
        upper_bins += 1;
        let scores: Vec<f64> = pairs
            .iter()
            .map(|(_, p)| {
                binned_rmse(p, bin_width)
                    .iter()
                    .find(|x| x.bin_start == bin.bin_start)
                    .map(|x| x.rmse)
                    .unwrap_or(f64::INFINITY)
            })
            .collect();
        let best = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        // Methods order: UN TV WC EM PT — indices 3 and 4 are learned.
        if scores[3] <= best + 1e-9 || scores[4] <= best + 1e-9 {
            em_wins += 1;
        }
    }
    let em = rmse(&pairs.iter().find(|(m, _)| *m == Method::Em).unwrap().1);
    let pt = rmse(&pairs.iter().find(|(m, _)| *m == Method::Pt).unwrap().1);
    println!(
        "shape check: EM/PT have the lowest RMSE in {em_wins}/{upper_bins} bins above the\n\
         smallest (paper: learned probabilities win everywhere except tiny traces,\n\
         where predicting ≈nothing is unbeatable); EM rmse {em:.1} ≈ PT rmse {pt:.1}\n\
         (selection robust to ±20% noise)\n"
    );
}
