//! bench-scan — multi-threaded credit-scan scaling, machine-readably.
//!
//! Not a paper artifact: this records how the action-sharded parallel
//! scan (the three-stage pipeline in `cdim_core::scan`) scales with the
//! worker count on the large preset, and emits the sweep as
//! `BENCH_scan.json` so CI can track the speedup curve across commits.
//!
//! The run also re-checks the pipeline's core guarantee on the spot:
//! every thread count must produce a credit store whose canonical dump is
//! byte-identical to the single-threaded scan's.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CreditPolicy, Parallelism};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_util::Timer;
use std::io::Write as _;

/// Thread counts the sweep measures.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Where the JSON record lands by default: `$CDIM_BENCH_JSON` if set (CI
/// points this at the workspace), otherwise `BENCH_scan.json` in the temp
/// directory (so plain `cargo test` runs never litter the repo).
fn json_path() -> std::path::PathBuf {
    match std::env::var_os("CDIM_BENCH_JSON") {
        Some(path) => path.into(),
        None => std::env::temp_dir().join("BENCH_scan.json"),
    }
}

/// Runs the sweep; the JSON lands at `$CDIM_BENCH_JSON` or, when unset,
/// `BENCH_scan.json` in the temp directory.
pub fn run(scale: ExperimentScale) {
    run_with_output(scale, &json_path());
}

/// Runs the sweep and writes the JSON record to `path` (the explicit-path
/// variant tests use — no process-global environment involved).
pub fn run_with_output(scale: ExperimentScale, path: &std::path::Path) {
    super::banner(
        "bench-scan — parallel credit-scan scaling (threads → wall time)",
        "engineering artifact (not in the paper): Algorithm 2 on the shared worker pool",
        scale,
    );
    let ds = presets::flixster_large().scaled_down(scale.dataset_divisor).generate();
    let lambda = 0.001;
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    println!(
        "--- {} ({} users, {} tuples, {} cores on this host) ---",
        ds.name,
        ds.graph.num_nodes(),
        ds.log.num_tuples(),
        Parallelism::auto().effective()
    );

    // Warm-up untimed pass (page-cache/allocator noise), and the
    // determinism baseline every thread count is checked against.
    let baseline =
        scan_with(&ds.graph, &ds.log, &policy, lambda, Parallelism::single()).unwrap().dump();

    let mut table = Table::new(["threads", "scan (s)", "speedup", "tuples/s"]);
    let mut runs: Vec<(usize, f64, f64)> = Vec::new();
    let mut single_thread_secs = 0.0;
    for threads in THREAD_COUNTS {
        let t = Timer::start();
        let store =
            scan_with(&ds.graph, &ds.log, &policy, lambda, Parallelism::fixed(threads)).unwrap();
        let secs = t.secs();
        assert!(store.dump() == baseline, "thread count {threads} changed the scan output");
        if threads == 1 {
            single_thread_secs = secs;
        }
        let speedup = single_thread_secs / secs.max(1e-9);
        runs.push((threads, secs, speedup));
        table.row([
            threads.to_string(),
            format!("{secs:.3}"),
            format!("{speedup:.2}x"),
            format!("{:.0}", ds.log.num_tuples() as f64 / secs.max(1e-9)),
        ]);
    }
    println!("{table}");

    match write_json(path, ds.name, ds.log.num_tuples(), lambda, &runs) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace has no serialization dependency).
fn write_json(
    path: &std::path::Path,
    dataset: &str,
    tuples: usize,
    lambda: f64,
    runs: &[(usize, f64, f64)],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"bench-scan\",\n");
    out.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    out.push_str(&format!("  \"tuples\": {tuples},\n"));
    out.push_str(&format!("  \"lambda\": {lambda},\n"));
    out.push_str(&format!("  \"host_cores\": {},\n", Parallelism::auto().effective()));
    out.push_str("  \"runs\": [\n");
    for (i, &(threads, secs, speedup)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"threads\": {threads}, \"wall_secs\": {secs:.6}, \"speedup\": {speedup:.3}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_is_parseable_shape() {
        let dir = std::env::temp_dir().join(format!("cdim_benchjson_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scan.json");
        write_json(&path, "flixster_large", 1234, 0.001, &[(1, 0.5, 1.0), (4, 0.2, 2.5)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"bench-scan\""));
        assert!(text.contains("\"tuples\": 1234"));
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"speedup\": 2.500"));
        // Crude structural sanity: balanced braces/brackets, no trailing
        // comma before a closer.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
