//! Fig 6 — spread achieved (under the CD model) by each method's seeds.
//!
//! CD is the most accurate spread predictor (Figs 3–4), so — exactly as
//! the paper argues — its prediction is used as the stand-in for actual
//! spread when comparing seed sets. Paper shape: CD's own seeds dominate;
//! LT is second; IC lands *below* the structural HighDegree/PageRank
//! heuristics because EM hands probability 1.0 to statistically
//! insignificant users (the "maximum-confidence, support-1" anomaly).

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use cdim_datagen::presets;
use cdim_maxim::{high_degree_seeds, pagerank_seeds};
use cdim_metrics::Table;

/// Prints σ_cd(prefix_k) series for CD/LT/IC/HighDegree/PageRank.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 6 — influence spread (under CD) achieved by each model's seeds",
        "Fig 6 (paper: CD > LT > HighDegree/PageRank > IC)",
        scale,
    );
    run_dataset(presets::flixster_small(), scale, false);
    run_dataset(presets::flickr_small(), scale, true);
}

fn run_dataset(spec: cdim_datagen::DatasetSpec, scale: ExperimentScale, use_heuristics: bool) {
    let wb = Workbench::prepare(spec, scale);
    let k = scale.k;
    let graph = &wb.dataset.graph;

    let methods: Vec<(&str, Vec<u32>)> = vec![
        ("CD", wb.select_cd(k)),
        ("LT", if use_heuristics { wb.select_lt_ldag(k) } else { wb.select_lt_mc(k) }),
        (
            "IC",
            if use_heuristics { wb.select_ic_mia(&wb.em, k) } else { wb.select_ic_mc(&wb.em, k) },
        ),
        ("HighDegree", high_degree_seeds(graph, k)),
        ("PageRank", pagerank_seeds(graph, k)),
    ];

    println!("--- {} (spread = σ_cd, exact evaluator) ---", wb.dataset.name);
    let mut table = Table::new(
        std::iter::once("k".to_string()).chain(methods.iter().map(|(n, _)| n.to_string())),
    );
    let grid = super::k_grid(k);
    let mut final_spreads: Vec<(&str, f64)> = Vec::new();
    for &kk in &grid {
        let mut row = vec![kk.to_string()];
        for (name, seeds) in &methods {
            let s = wb.cd.spread(super::prefix(seeds, kk));
            row.push(format!("{s:.1}"));
            if kk == k {
                final_spreads.push((name, s));
            }
        }
        table.row(row);
    }
    println!("{table}");

    // Diagnostics on IC's anomalous seeds (§6's analysis of user 168766).
    let avg_actions = |seeds: &[u32]| {
        seeds.iter().map(|&u| wb.split.train.actions_performed_by(u) as f64).sum::<f64>()
            / seeds.len().max(1) as f64
    };
    let cd_acts = avg_actions(&methods[0].1);
    let ic_acts = avg_actions(&methods[2].1);
    println!(
        "avg #actions performed by chosen seeds: CD {cd_acts:.1} vs IC {ic_acts:.1} \
         (paper: 1108.7 vs 30.3 — EM picks low-support users)"
    );
    let cd_final = final_spreads.iter().find(|(n, _)| *n == "CD").unwrap().1;
    let ic_final = final_spreads.iter().find(|(n, _)| *n == "IC").unwrap().1;
    println!("shape check: σ_cd(CD seeds) = {cd_final:.1} vs σ_cd(IC seeds) = {ic_final:.1}\n");
}
