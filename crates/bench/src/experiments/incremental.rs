//! bench-incremental — delta-apply vs full-rescan wall time.
//!
//! Not a paper artifact: this measures the payoff of the incremental
//! training subsystem. A live deployment refreshes its model as new
//! actions arrive; before PR 4 every refresh paid a full Algorithm-2
//! rescan. Here we split the large preset's log into a prefix plus an
//! append-only delta at shrinking delta fractions and record, for each
//! fraction, the wall time of (a) a from-scratch rescan of the combined
//! log and (b) `CreditStore::apply_delta` on the prefix store — asserting
//! on the spot that both produce byte-identical canonical dumps.
//!
//! The sweep lands machine-readably in `BENCH_incremental.json` so CI can
//! track the refresh-cost curve across commits.

use crate::config::ExperimentScale;
use cdim_core::{scan_with, CreditPolicy, Parallelism};
use cdim_datagen::presets;
use cdim_metrics::Table;
use cdim_util::Timer;
use std::io::Write as _;

/// Fractions of the log arriving as the delta, largest first.
const DELTA_FRACTIONS: [f64; 5] = [0.5, 0.25, 0.10, 0.05, 0.02];

/// Where the JSON record lands by default: `$CDIM_BENCH_JSON_INCREMENTAL`
/// if set (CI points this at the workspace), otherwise the temp directory
/// (so plain `cargo test` runs never litter the repo).
fn json_path() -> std::path::PathBuf {
    match std::env::var_os("CDIM_BENCH_JSON_INCREMENTAL") {
        Some(path) => path.into(),
        None => std::env::temp_dir().join("BENCH_incremental.json"),
    }
}

/// One measured refresh.
struct Run {
    fraction: f64,
    delta_actions: usize,
    delta_tuples: usize,
    rescan_secs: f64,
    apply_secs: f64,
}

/// Runs the sweep; the JSON lands at `$CDIM_BENCH_JSON_INCREMENTAL` or,
/// when unset, `BENCH_incremental.json` in the temp directory.
pub fn run(scale: ExperimentScale) {
    run_with_output(scale, &json_path());
}

/// Runs the sweep and writes the JSON record to `path` (the explicit-path
/// variant tests use — no process-global environment involved).
pub fn run_with_output(scale: ExperimentScale, path: &std::path::Path) {
    super::banner(
        "bench-incremental — append-only retraining vs full rescan",
        "engineering artifact (not in the paper): incremental Algorithm 2 via ActionLogDelta",
        scale,
    );
    let ds = presets::flixster_large().scaled_down(scale.dataset_divisor).generate();
    let lambda = 0.001;
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let par = scale.parallelism();
    let n = ds.log.num_actions();
    println!(
        "--- {} ({} users, {} actions, {} tuples, {} threads) ---",
        ds.name,
        ds.graph.num_nodes(),
        n,
        ds.log.num_tuples(),
        par.effective()
    );

    // The refresh target every path must reproduce byte-for-byte — also
    // the warm-up pass.
    let baseline = scan_with(&ds.graph, &ds.log, &policy, lambda, par).unwrap().dump();

    let mut table = Table::new(["delta", "actions", "rescan (s)", "apply (s)", "speedup"]);
    let mut runs: Vec<Run> = Vec::new();
    for fraction in DELTA_FRACTIONS {
        let split = ((n as f64) * (1.0 - fraction)).round() as usize;
        let split = split.min(n);
        let (prefix, delta) = ds.log.split_at_action(split);

        // (a) what a naive refresh pays: rescan everything.
        let t = Timer::start();
        let rescan = scan_with(&ds.graph, &ds.log, &policy, lambda, par).unwrap();
        let rescan_secs = t.secs();
        assert!(rescan.dump() == baseline, "rescan diverged at fraction {fraction}");

        // (b) what the incremental path pays: scan the delta, append.
        // (The prefix store exists already in a deployment; building it
        // here is untimed setup.)
        let mut store = scan_with(&ds.graph, &prefix, &policy, lambda, par).unwrap();
        let t = Timer::start();
        store.apply_delta(&ds.graph, &delta, &policy, par).unwrap();
        let apply_secs = t.secs();
        assert!(
            store.dump() == baseline,
            "delta-apply diverged from the full rescan at fraction {fraction}"
        );

        let speedup = rescan_secs / apply_secs.max(1e-9);
        table.row([
            format!("{:.0}%", fraction * 100.0),
            delta.num_new_actions().to_string(),
            format!("{rescan_secs:.3}"),
            format!("{apply_secs:.3}"),
            format!("{speedup:.1}x"),
        ]);
        runs.push(Run {
            fraction,
            delta_actions: delta.num_new_actions(),
            delta_tuples: delta.num_new_tuples(),
            rescan_secs,
            apply_secs,
        });
    }
    println!("{table}");
    println!("(equivalence checked: every path dumped byte-identically to the full rescan)");

    match write_json(path, ds.name, n, ds.log.num_tuples(), lambda, par.effective(), &runs) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Hand-rolled JSON (the workspace has no serialization dependency).
fn write_json(
    path: &std::path::Path,
    dataset: &str,
    actions: usize,
    tuples: usize,
    lambda: f64,
    threads: usize,
    runs: &[Run],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"bench-incremental\",\n");
    out.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    out.push_str(&format!("  \"actions\": {actions},\n"));
    out.push_str(&format!("  \"tuples\": {tuples},\n"));
    out.push_str(&format!("  \"lambda\": {lambda},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"host_cores\": {},\n", Parallelism::auto().effective()));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let speedup = run.rescan_secs / run.apply_secs.max(1e-9);
        out.push_str(&format!(
            "    {{\"delta_fraction\": {}, \"delta_actions\": {}, \"delta_tuples\": {}, \
             \"rescan_secs\": {:.6}, \"apply_secs\": {:.6}, \"speedup\": {speedup:.3}}}{comma}\n",
            run.fraction, run.delta_actions, run.delta_tuples, run.rescan_secs, run.apply_secs
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_is_parseable_shape() {
        let dir = std::env::temp_dir().join(format!("cdim_benchincr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_incremental.json");
        let runs = vec![
            Run {
                fraction: 0.5,
                delta_actions: 100,
                delta_tuples: 900,
                rescan_secs: 0.8,
                apply_secs: 0.5,
            },
            Run {
                fraction: 0.1,
                delta_actions: 20,
                delta_tuples: 180,
                rescan_secs: 0.8,
                apply_secs: 0.1,
            },
        ];
        write_json(&path, "flixster_large", 200, 1800, 0.001, 4, &runs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"bench-incremental\""));
        assert!(text.contains("\"delta_fraction\": 0.1"));
        assert!(text.contains("\"speedup\": 8.000"));
        // Crude structural sanity: balanced braces/brackets, no trailing
        // comma before a closer.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(!text.contains(",\n  ]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_sweep_runs_and_reports() {
        let dir = std::env::temp_dir().join(format!("cdim_benchincr_run_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_incremental.json");
        let mut scale = ExperimentScale::quick();
        scale.dataset_divisor = scale.dataset_divisor.max(64);
        run_with_output(scale, &path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"runs\""));
        assert!(text.contains("\"apply_secs\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
