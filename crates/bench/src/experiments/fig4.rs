//! Fig 4 — fraction of propagations captured within an absolute error.
//!
//! Paper shape: at every tolerance, CD captures a strictly higher fraction
//! of test traces than IC and LT (e.g. 67% vs 46%/26% within error 30 on
//! Flixster_Small).

use crate::config::ExperimentScale;
use crate::methods::Workbench;
use crate::prediction::{prediction_pairs, Method};
use cdim_datagen::presets;
use cdim_metrics::{capture_curve, Table};

/// Prints the capture curves for IC/LT/CD on both small presets.
pub fn run(scale: ExperimentScale) {
    super::banner(
        "Fig 4 — propagations captured vs absolute error",
        "Fig 4 (paper: CD dominates IC and LT at every error tolerance)",
        scale,
    );
    for spec in [presets::flixster_small(), presets::flickr_small()] {
        let wb = Workbench::prepare(spec, scale);
        print_dataset(&wb);
    }
}

fn print_dataset(wb: &Workbench) {
    let methods = Method::fig3_set();
    let pairs: Vec<(Method, Vec<(f64, f64)>)> =
        methods.iter().map(|&m| (m, prediction_pairs(wb, m))).collect();

    // Tolerance grid: ten steps up to a data-driven maximum.
    let max_actual = pairs[0].1.iter().map(|&(a, _)| a).fold(0.0f64, f64::max);
    let step = super::auto_bin_width(max_actual / 2.0, 10).max(1);
    let tolerances: Vec<f64> = (0..=10).map(|i| (i * step) as f64).collect();

    println!("--- {} ---", wb.dataset.name);
    let mut table =
        Table::new(std::iter::once("abs error ≤".to_string()).chain(methods.iter().map(|m| {
            if *m == Method::Em {
                "IC".to_string()
            } else {
                m.name().to_string()
            }
        })));
    let curves: Vec<Vec<(f64, f64)>> =
        pairs.iter().map(|(_, p)| capture_curve(p, &tolerances)).collect();
    for (i, &tol) in tolerances.iter().enumerate() {
        let mut row = vec![format!("{tol:.0}")];
        for curve in &curves {
            row.push(format!("{:.2}", curve[i].1));
        }
        table.row(row);
    }
    println!("{table}");

    // Shape check at the first nonzero tolerance — the regime the paper's
    // Fig 4 is about (everyone converges to 1 at huge tolerances).
    let at = 1.min(tolerances.len() - 1);
    let cd_idx = methods.iter().position(|&m| m == Method::Cd).unwrap();
    let cd_low = curves[cd_idx][at].1;
    let best_other = curves
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != cd_idx)
        .map(|(_, c)| c[at].1)
        .fold(0.0f64, f64::max);
    println!(
        "shape check at tolerance {}: CD captures {cd_low:.2}, best other {best_other:.2}\n\
         (paper at error ≤ 30 on Flixster_Small: CD 0.67 vs IC 0.46 vs LT 0.26)\n",
        tolerances[at]
    );
}
