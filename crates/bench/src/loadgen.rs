//! Multi-connection pipelined load generator for the serve frontend.
//!
//! One thread drives every client connection through a
//! [`cdim_util::poll::Poller`] — the same readiness machinery the server's
//! reactor uses — so ten thousand concurrent connections cost ten thousand
//! sockets, not ten thousand threads. Each connection keeps up to
//! [`LoadConfig::pipeline`] requests in flight and per-request latency is
//! measured from enqueue to response decode, which charges client-side
//! queueing to the tail like a real caller would experience it.
//!
//! For sweeps past half the fd budget the server must live in another
//! process: [`ChildServer`] re-execs the current binary with
//! [`CHILD_ENV`] set, and [`maybe_run_server_child`] (called first thing
//! in `main`) turns that child into a serve-only process that exits when
//! its stdin closes — so a dying parent can never leak a listener.

use cdim_core::{scan, CreditPolicy};
use cdim_serve::protocol::{encode_request, write_frame, Request};
use cdim_serve::{server, FrameDecoder, InfluenceService, ModelSnapshot, ServerConfig};
use cdim_util::poll::{raise_nofile_limit, Interest, Poller};
use std::collections::VecDeque;
use std::io::{self, BufRead as _, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment marker that turns a re-exec of the current binary into a
/// serve-only child; the value picks the backend (`reactor`/`threaded`).
pub const CHILD_ENV: &str = "CDIM_SERVE_CHILD";
/// Dataset divisor for the child's model (`scaled_down` factor).
const CHILD_DIVISOR_ENV: &str = "CDIM_SERVE_CHILD_DIVISOR";

/// Shape of one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Max requests in flight per connection before the client waits for
    /// responses (1 = strict request/response ping-pong).
    pub pipeline: usize,
    /// Seed sets cycled across requests (connection-offset so neighbours
    /// don't march in lockstep). Must be non-empty.
    pub seed_pool: Vec<Vec<u32>>,
    /// Abort the run if it has not finished within this budget.
    pub deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 64,
            requests_per_connection: 16,
            pipeline: 4,
            seed_pool: vec![vec![0], vec![1], vec![2], vec![0, 1], vec![1, 2]],
            deadline: Duration::from_secs(120),
        }
    }
}

/// Latency/throughput summary of one run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Connections driven.
    pub connections: usize,
    /// Total requests answered.
    pub requests: usize,
    /// Wall time from first byte written to last response decoded.
    pub elapsed: Duration,
    /// Median request latency (enqueue → response).
    pub p50: Duration,
    /// 90th-percentile request latency.
    pub p90: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Worst request latency.
    pub max: Duration,
}

impl LoadReport {
    /// Aggregate throughput in queries per second.
    pub fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Per-connection client state machine.
struct ConnState {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded-but-unwritten wire bytes (`out_pos` already sent).
    outbox: Vec<u8>,
    out_pos: usize,
    sent: usize,
    recvd: usize,
    /// Enqueue instants of in-flight requests, FIFO with responses.
    inflight: VecDeque<Instant>,
    interest: Interest,
}

/// Drives `config.connections` clients against `addr` and reports the
/// latency distribution. Fails if the server closes a connection early or
/// the run exceeds `config.deadline`.
pub fn run(addr: SocketAddr, config: &LoadConfig) -> io::Result<LoadReport> {
    assert!(!config.seed_pool.is_empty(), "seed_pool must be non-empty");
    assert!(config.pipeline >= 1, "pipeline must be at least 1");
    assert!(config.requests_per_connection >= 1, "need at least one request per connection");
    // Best-effort: the sweep sizes themselves are the caller's problem.
    let _ = raise_nofile_limit((config.connections as u64) * 2 + 64);

    let frames: Vec<Vec<u8>> = config
        .seed_pool
        .iter()
        .map(|seeds| {
            let mut wire = Vec::new();
            write_frame(&mut wire, &encode_request(&Request::Spread { seeds: seeds.clone() }))
                .expect("Vec write");
            wire
        })
        .collect();

    let mut poller = Poller::new()?;
    let mut conns: Vec<ConnState> = Vec::with_capacity(config.connections);
    for token in 0..config.connections {
        let stream = connect_with_retry(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        poller.register(stream.as_raw_fd(), token as u64, Interest::BOTH)?;
        conns.push(ConnState {
            stream,
            decoder: FrameDecoder::new(),
            outbox: Vec::new(),
            out_pos: 0,
            sent: 0,
            recvd: 0,
            inflight: VecDeque::new(),
            interest: Interest::BOTH,
        });
    }

    let total = config.requests_per_connection;
    let mut latencies: Vec<Duration> = Vec::with_capacity(config.connections * total);
    let mut remaining = config.connections;
    let started = Instant::now();
    let mut events = Vec::new();
    let mut buf = vec![0u8; 16 * 1024];
    while remaining > 0 {
        if started.elapsed() > config.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!(
                    "load run missed its {:?} deadline ({} of {} connections finished)",
                    config.deadline,
                    config.connections - remaining,
                    config.connections
                ),
            ));
        }
        poller.wait(&mut events, Some(Duration::from_millis(200)))?;
        for ev in &events {
            let token = ev.token as usize;
            let was_done = conns[token].recvd >= total;
            if was_done {
                continue;
            }
            if ev.readable || ev.closed {
                drain_responses(&mut conns[token], &mut buf, &mut latencies, total)?;
            }
            pump(&mut conns[token], config, &frames, token)?;
            if conns[token].recvd >= total {
                remaining -= 1;
                poller.deregister(conns[token].stream.as_raw_fd())?;
                continue;
            }
            update_interest(&mut poller, &mut conns[token], token, total)?;
        }
    }

    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() as f64 - 1.0) * p).round() as usize];
    Ok(LoadReport {
        connections: config.connections,
        requests: latencies.len(),
        elapsed,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        max: *latencies.last().expect("at least one request"),
    })
}

/// Loopback connects can transiently fail while the accept queue churns
/// under thousands of simultaneous SYNs; retry briefly before giving up.
fn connect_with_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Reads everything available and resolves completed responses against
/// the in-flight FIFO. EOF with requests outstanding is an error — the
/// load generator never half-closes first.
fn drain_responses(
    conn: &mut ConnState,
    buf: &mut [u8],
    latencies: &mut Vec<Duration>,
    total: usize,
) -> io::Result<()> {
    loop {
        match conn.stream.read(buf) {
            Ok(0) => {
                if conn.recvd < total {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "server closed with {} of {total} responses outstanding",
                            total - conn.recvd
                        ),
                    ));
                }
                return Ok(());
            }
            Ok(n) => {
                conn.decoder.extend(&buf[..n]);
                while let Some(_payload) = conn
                    .decoder
                    .next_frame()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                {
                    let sent_at = conn.inflight.pop_front().ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "response with no request")
                    })?;
                    latencies.push(sent_at.elapsed());
                    conn.recvd += 1;
                }
                if n < buf.len() {
                    return Ok(()); // short read: kernel buffer drained
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Tops the pipeline up with fresh requests and writes as much of the
/// outbox as the socket accepts.
fn pump(
    conn: &mut ConnState,
    config: &LoadConfig,
    frames: &[Vec<u8>],
    token: usize,
) -> io::Result<()> {
    while conn.inflight.len() < config.pipeline && conn.sent < config.requests_per_connection {
        conn.outbox.extend_from_slice(&frames[(token + conn.sent) % frames.len()]);
        conn.inflight.push_back(Instant::now());
        conn.sent += 1;
    }
    while conn.out_pos < conn.outbox.len() {
        match conn.stream.write(&conn.outbox[conn.out_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.out_pos >= conn.outbox.len() {
        conn.outbox.clear();
        conn.out_pos = 0;
    }
    Ok(())
}

/// Narrows interest to what the connection still needs (writable only
/// while the outbox has unsent bytes) to keep spurious wakeups down.
fn update_interest(
    poller: &mut Poller,
    conn: &mut ConnState,
    token: usize,
    total: usize,
) -> io::Result<()> {
    let desired = match (conn.recvd < total, conn.out_pos < conn.outbox.len()) {
        (true, true) => Interest::BOTH,
        (true, false) => Interest::READABLE,
        (false, true) => Interest::WRITABLE,
        (false, false) => Interest::NONE,
    };
    if (desired.is_readable(), desired.is_writable())
        != (conn.interest.is_readable(), conn.interest.is_writable())
    {
        poller.modify(conn.stream.as_raw_fd(), token as u64, desired)?;
        conn.interest = desired;
    }
    Ok(())
}

/// If this process was re-exec'd as a serve-only child, run the server
/// and return `true` once it has shut down (the caller should exit).
/// Otherwise return `false` immediately.
///
/// The child announces `listening on ADDR` on stdout and serves until its
/// stdin reaches EOF — tying its lifetime to the parent's pipe, so an
/// aborted parent cannot strand it.
pub fn maybe_run_server_child() -> bool {
    let Ok(mode) = std::env::var(CHILD_ENV) else { return false };
    let divisor: usize = std::env::var(CHILD_DIVISOR_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&d| d > 0)
        .unwrap_or(8);
    let service = Arc::new(child_service(divisor));
    let config = ServerConfig { max_connections: 16_384, ..ServerConfig::default() };
    let addr = match mode.as_str() {
        "threaded" => {
            let handle =
                server::threaded::spawn_threaded(service, "127.0.0.1:0", config).expect("bind");
            let addr = handle.addr();
            announce(addr);
            wait_for_stdin_eof();
            handle.shutdown();
            addr
        }
        _ => {
            let handle = server::spawn_with(service, "127.0.0.1:0", config).expect("bind");
            let addr = handle.addr();
            announce(addr);
            wait_for_stdin_eof();
            handle.shutdown();
            addr
        }
    };
    let _ = addr;
    true
}

/// The child's model: a trained store on a scaled-down preset.
fn child_service(divisor: usize) -> InfluenceService {
    let ds = cdim_datagen::presets::flixster_small().scaled_down(divisor).generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store = scan(&ds.graph, &ds.log, &policy, 0.001).expect("scan");
    InfluenceService::new(ModelSnapshot::from_store(store), 4096)
}

fn announce(addr: SocketAddr) {
    println!("listening on {addr}");
    io::stdout().flush().ok();
}

fn wait_for_stdin_eof() {
    let mut sink = [0u8; 256];
    let mut stdin = io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
}

/// A serve-only child process (see [`maybe_run_server_child`]); dropping
/// it closes the child's stdin, which makes the child exit.
pub struct ChildServer {
    child: std::process::Child,
    addr: SocketAddr,
}

impl ChildServer {
    /// Re-execs the current binary as a `mode` (`"reactor"`/`"threaded"`)
    /// server child over a `scaled_down(divisor)` model and waits for its
    /// `listening on` announcement.
    pub fn spawn(mode: &str, divisor: usize) -> io::Result<ChildServer> {
        let exe = std::env::current_exe()?;
        let mut child = std::process::Command::new(exe)
            .env(CHILD_ENV, mode)
            .env(CHILD_DIVISOR_ENV, divisor.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = io::BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(rest) = line.strip_prefix("listening on ") {
                        break rest.trim().parse().map_err(|e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad child address {rest:?}: {e}"),
                            )
                        })?;
                    }
                }
                Some(Err(e)) => return Err(e),
                None => {
                    let status = child.wait()?;
                    return Err(io::Error::other(format!(
                        "server child exited ({status}) before announcing its address"
                    )));
                }
            }
        };
        Ok(ChildServer { child, addr })
    }

    /// The child's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        // Closing our write end of the child's stdin is the shutdown
        // signal; then reap so no zombie outlives the bench.
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_service() -> Arc<InfluenceService> {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
        Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), 1024))
    }

    #[test]
    fn loadgen_answers_every_pipelined_request() {
        let handle = server::spawn(tiny_service(), "127.0.0.1:0").unwrap();
        let config = LoadConfig {
            connections: 8,
            requests_per_connection: 16,
            pipeline: 4,
            ..LoadConfig::default()
        };
        let report = run(handle.addr(), &config).unwrap();
        assert_eq!(report.requests, 8 * 16);
        assert_eq!(report.connections, 8);
        assert!(report.p50 <= report.p99 && report.p99 <= report.max);
        assert!(report.qps() > 0.0);
        handle.shutdown();
    }

    #[test]
    fn loadgen_works_against_the_threaded_baseline() {
        let handle = server::threaded::spawn_threaded(
            tiny_service(),
            "127.0.0.1:0",
            server::threaded::baseline_config(),
        )
        .unwrap();
        let config = LoadConfig {
            connections: 4,
            requests_per_connection: 8,
            pipeline: 2,
            ..LoadConfig::default()
        };
        let report = run(handle.addr(), &config).unwrap();
        assert_eq!(report.requests, 4 * 8);
        handle.shutdown();
    }

    #[test]
    fn strict_ping_pong_still_completes() {
        let handle = server::spawn(tiny_service(), "127.0.0.1:0").unwrap();
        let config = LoadConfig {
            connections: 2,
            requests_per_connection: 5,
            pipeline: 1,
            ..LoadConfig::default()
        };
        let report = run(handle.addr(), &config).unwrap();
        assert_eq!(report.requests, 10);
        handle.shutdown();
    }
}
