//! Scaling knobs shared by all experiments.

use cdim_util::Parallelism;

/// How hard to push each experiment.
///
/// `full` matches the DESIGN.md preset sizes; `quick` shrinks everything
/// for smoke runs (used by `cargo test` integration tests and CI).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentScale {
    /// Divide preset node/action counts by this factor.
    pub dataset_divisor: usize,
    /// Monte-Carlo simulations per spread estimate (paper: 10,000).
    pub mc_simulations: usize,
    /// Seed-set size for selection experiments (paper: 50).
    pub k: usize,
    /// Number of test propagations to evaluate in prediction experiments
    /// (0 = all).
    pub max_test_traces: usize,
    /// Worker threads for every parallel stage — the credit scan and
    /// Monte-Carlo estimation (0 = available parallelism).
    pub threads: usize,
}

impl ExperimentScale {
    /// The default evaluation scale (minutes per experiment).
    pub fn full() -> Self {
        ExperimentScale {
            dataset_divisor: 1,
            mc_simulations: 300,
            k: 50,
            max_test_traces: 400,
            threads: 0,
        }
    }

    /// Smoke-test scale (seconds per experiment).
    pub fn quick() -> Self {
        ExperimentScale {
            dataset_divisor: 8,
            mc_simulations: 60,
            k: 10,
            max_test_traces: 60,
            threads: 0,
        }
    }

    /// The worker-pool view of [`Self::threads`], handed to the credit
    /// scan and the MC estimator alike.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::fixed(self.threads)
    }

    /// Describes the scale in the experiment output.
    pub fn describe(&self) -> String {
        format!(
            "scale: dataset 1/{}, {} MC sims (paper: 10k), k = {}, ≤{} test traces, {} worker threads",
            self.dataset_divisor,
            self.mc_simulations,
            self.k,
            self.max_test_traces,
            self.parallelism()
        )
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExperimentScale::quick();
        let f = ExperimentScale::full();
        assert!(q.dataset_divisor > f.dataset_divisor);
        assert!(q.mc_simulations < f.mc_simulations);
        assert!(q.k < f.k);
    }

    #[test]
    fn describe_mentions_the_knobs() {
        let d = ExperimentScale::full().describe();
        assert!(d.contains("MC sims"));
        assert!(d.contains("k = 50"));
    }
}
