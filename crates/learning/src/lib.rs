#![warn(missing_docs)]
//! Learning influence parameters from propagation traces.
//!
//! §3 of the paper compares five ways of putting probabilities on edges:
//!
//! * **UN** — every edge gets `p = 0.01` ([`assign::uniform`]);
//! * **TV** — trivalency: uniform draw from `{0.1, 0.01, 0.001}`
//!   ([`assign::trivalency`]);
//! * **WC** — weighted cascade: `p(v,u) = 1 / in_degree(u)`
//!   ([`assign::weighted_cascade`]);
//! * **EM** — probabilities learned from the training traces with the
//!   EM method of Saito et al. ([`em::EmLearner`]);
//! * **PT** — EM probabilities perturbed by ±20% noise
//!   ([`assign::perturb`]).
//!
//! For the LT model the paper learns weights `p(v,u) = A_{v2u} / N`
//! ([`ltweights::learn_lt_weights`]), and for the credit-distribution
//! model's time-aware direct credit (Eq 9) it learns the per-edge mean
//! propagation delay `τ_{v,u}` and per-user influenceability `infl(u)`
//! ([`temporal::TemporalModel`]).

pub mod assign;
pub mod em;
pub mod ltweights;
pub mod temporal;

pub use assign::{perturb, trivalency, uniform, weighted_cascade};
pub use em::{EmConfig, EmLearner};
pub use ltweights::learn_lt_weights;
pub use temporal::TemporalModel;
