//! LT weight learning.
//!
//! §6 ("Methods Compared"): `p_{v,u} = A_{v2u} / N`, where `A_{v2u}` is the
//! number of actions that propagated from `v` to `u` in the training set
//! and `N` normalizes each node's incoming weights to sum to 1.

use cdim_actionlog::{ActionLog, PropagationDag};
use cdim_diffusion::EdgeProbabilities;
use cdim_graph::DirectedGraph;

/// Learns LT in-weights from the training log.
///
/// Nodes with no observed incoming propagation keep all-zero in-weights
/// (they are simply never influenced under the learned model).
pub fn learn_lt_weights(graph: &DirectedGraph, train: &ActionLog) -> EdgeProbabilities {
    let m = graph.num_edges();
    // In-aligned counts of propagated actions per edge.
    let mut counts = vec![0u32; m];
    for a in train.actions() {
        let dag = PropagationDag::build(train, graph, a);
        for i in 0..dag.len() {
            let u = dag.user(i);
            for &pj in dag.parents_of(i) {
                let v = dag.user(pj as usize);
                let e = graph.in_edge_position(v, u).expect("social edge");
                counts[e] += 1;
            }
        }
    }
    // Per-node normalization over in-edges.
    let mut weights = vec![0.0f64; m];
    for u in graph.nodes() {
        let range = graph.in_range(u);
        let total: u64 = range.clone().map(|e| counts[e] as u64).sum();
        if total > 0 {
            for e in range {
                weights[e] = counts[e] as f64 / total as f64;
            }
        }
    }
    // Convert to the canonical (out-aligned) constructor.
    let mut out_aligned = vec![0.0; m];
    for out_pos in 0..m {
        out_aligned[out_pos] = weights[graph.out_pos_to_in_pos(out_pos)];
    }
    EdgeProbabilities::from_out_aligned(graph, out_aligned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    #[test]
    fn weights_are_propagation_frequencies_normalized() {
        // u=2 is influenced 3 times by 0 and 1 time by 1.
        let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let mut b = ActionLogBuilder::new(3);
        for a in 0..3u32 {
            b.push(0, a, 1.0);
            b.push(2, a, 2.0);
        }
        b.push(1, 3, 1.0);
        b.push(2, 3, 2.0);
        let log = b.build();
        let w = learn_lt_weights(&g, &log);
        assert!((w.get(&g, 0, 2).unwrap() - 0.75).abs() < 1e-12);
        assert!((w.get(&g, 1, 2).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn in_weights_sum_to_one_or_zero() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 1), (3, 1), (0, 3), (1, 2)]).build();
        let mut b = ActionLogBuilder::new(4);
        let mut t = 0.0;
        for a in 0..8u32 {
            for u in [0u32, 2, 1, 3] {
                if (a as usize + u as usize).is_multiple_of(2) {
                    t += 1.0;
                    b.push(u, a, t);
                }
            }
        }
        let log = b.build();
        let w = learn_lt_weights(&g, &log);
        for u in g.nodes() {
            let s = w.in_weight_sum(&g, u);
            assert!(s.abs() < 1e-12 || (s - 1.0).abs() < 1e-12, "node {u}: sum = {s}");
        }
    }

    #[test]
    fn no_observations_means_zero_weights() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let log = ActionLogBuilder::new(2).build();
        let w = learn_lt_weights(&g, &log);
        assert_eq!(w.get(&g, 0, 1), Some(0.0));
    }

    #[test]
    fn valid_lt_instance() {
        let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let mut b = ActionLogBuilder::new(3);
        b.push(0, 0, 1.0);
        b.push(1, 0, 1.5);
        b.push(2, 0, 2.0);
        let log = b.build();
        let w = learn_lt_weights(&g, &log);
        assert!(w.max_in_weight_sum(&g) <= 1.0 + 1e-12);
    }
}
