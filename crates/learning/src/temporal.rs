//! Temporal influence parameters for the time-aware direct credit (Eq 9).
//!
//! From Goyal et al. (WSDM 2010), as adopted by §4 "Assigning Direct
//! Credit":
//!
//! * `τ_{v,u}` — the average time actions take to propagate from `v` to
//!   `u`, estimated over all training actions with `v ∈ N_in(u, a)`;
//! * `infl(u)` — user influenceability: the fraction of `u`'s actions
//!   performed "under the influence" of some neighbor, i.e. with
//!   `t(u,a) − t(v,a) ≤ τ_{v,u}` for at least one potential influencer.

use cdim_actionlog::{ActionLog, PropagationDag};
use cdim_graph::DirectedGraph;
use cdim_util::HeapSize;

/// Learned temporal parameters.
#[derive(Clone, Debug)]
pub struct TemporalModel {
    /// `τ` per in-aligned edge position; `f64::INFINITY` when the edge was
    /// never observed propagating (so `exp(-Δ/τ) = 1` degenerates safely
    /// only if never used; lookups fall back to [`Self::default_tau`]).
    tau: Vec<f64>,
    /// Influenceability per user, in `[0, 1]`.
    infl: Vec<f64>,
    /// Global mean propagation delay — fallback for unobserved edges.
    default_tau: f64,
}

impl TemporalModel {
    /// Learns `τ` and `infl` from the training log in two passes.
    pub fn learn(graph: &DirectedGraph, train: &ActionLog) -> Self {
        let m = graph.num_edges();
        let mut delay_sum = vec![0.0f64; m];
        let mut delay_count = vec![0u32; m];

        let dags: Vec<PropagationDag> =
            train.actions().map(|a| PropagationDag::build(train, graph, a)).collect();

        // Pass 1: per-edge mean delays.
        for dag in &dags {
            for i in 0..dag.len() {
                let u = dag.user(i);
                let tu = dag.time(i);
                for &pj in dag.parents_of(i) {
                    let v = dag.user(pj as usize);
                    let tv = dag.time(pj as usize);
                    let e = graph.in_edge_position(v, u).expect("social edge");
                    delay_sum[e] += tu - tv;
                    delay_count[e] += 1;
                }
            }
        }
        let total_sum: f64 = delay_sum.iter().sum();
        let total_count: u64 = delay_count.iter().map(|&c| c as u64).sum();
        let default_tau = if total_count > 0 {
            (total_sum / total_count as f64).max(f64::MIN_POSITIVE)
        } else {
            1.0
        };
        let tau: Vec<f64> = (0..m)
            .map(|e| {
                if delay_count[e] > 0 {
                    // Guard against zero mean delay (all propagations
                    // instantaneous) — exp(-Δ/0) would be NaN for Δ = 0.
                    (delay_sum[e] / delay_count[e] as f64).max(f64::MIN_POSITIVE)
                } else {
                    f64::INFINITY
                }
            })
            .collect();

        // Pass 2: influenceability.
        let mut influenced_actions = vec![0u32; graph.num_nodes()];
        for dag in &dags {
            for i in 0..dag.len() {
                let u = dag.user(i);
                let tu = dag.time(i);
                let within_tau = dag.parents_of(i).iter().any(|&pj| {
                    let v = dag.user(pj as usize);
                    let tv = dag.time(pj as usize);
                    let e = graph.in_edge_position(v, u).expect("social edge");
                    tu - tv <= tau[e]
                });
                if within_tau {
                    influenced_actions[u as usize] += 1;
                }
            }
        }
        let infl: Vec<f64> = (0..graph.num_nodes())
            .map(|u| {
                let au = train.actions_performed_by(u as u32);
                if au == 0 {
                    0.0
                } else {
                    influenced_actions[u] as f64 / au as f64
                }
            })
            .collect();

        TemporalModel { tau, infl, default_tau }
    }

    /// `τ` for the in-aligned edge position, falling back to the global
    /// mean when the edge was never observed propagating.
    #[inline]
    pub fn tau_at(&self, in_pos: usize) -> f64 {
        let t = self.tau[in_pos];
        if t.is_finite() {
            t
        } else {
            self.default_tau
        }
    }

    /// `τ_{v,u}` by endpoints, if the social edge exists.
    pub fn tau(&self, graph: &DirectedGraph, v: u32, u: u32) -> Option<f64> {
        graph.in_edge_position(v, u).map(|e| self.tau_at(e))
    }

    /// Influenceability of `u`.
    #[inline]
    pub fn infl(&self, u: u32) -> f64 {
        self.infl[u as usize]
    }

    /// Global mean propagation delay.
    #[inline]
    pub fn default_tau(&self) -> f64 {
        self.default_tau
    }
}

impl HeapSize for TemporalModel {
    fn heap_bytes(&self) -> usize {
        self.tau.heap_bytes() + self.infl.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    #[test]
    fn tau_is_mean_delay() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 0.0);
        b.push(1, 0, 2.0); // delay 2
        b.push(0, 1, 0.0);
        b.push(1, 1, 4.0); // delay 4
        let log = b.build();
        let t = TemporalModel::learn(&g, &log);
        assert!((t.tau(&g, 0, 1).unwrap() - 3.0).abs() < 1e-12);
        assert!((t.default_tau() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unobserved_edge_falls_back_to_global_mean() {
        let g = GraphBuilder::new(3).edges([(0, 1), (2, 1)]).build();
        let mut b = ActionLogBuilder::new(3);
        b.push(0, 0, 0.0);
        b.push(1, 0, 2.0);
        let log = b.build();
        let t = TemporalModel::learn(&g, &log);
        assert!((t.tau(&g, 2, 1).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn infl_counts_influenced_fraction() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        // Action 0: 1 follows 0 after delay 1.
        b.push(0, 0, 0.0);
        b.push(1, 0, 1.0);
        // Action 1: 1 follows 0 after a huge delay (mean tau becomes
        // (1 + 99) / 2 = 50, so both delays are within tau... to build a
        // *not*-influenced case we need an action with no parents at all).
        b.push(1, 1, 5.0); // initiator, no influence
        let log = b.build();
        let t = TemporalModel::learn(&g, &log);
        // User 1 performed 2 actions, 1 under influence.
        assert!((t.infl(1) - 0.5).abs() < 1e-12);
        // User 0's actions were never influenced.
        assert_eq!(t.infl(0), 0.0);
    }

    #[test]
    fn infl_respects_tau_cutoff() {
        let g = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let mut b = ActionLogBuilder::new(3);
        // Edge (0,2): delays 1 and 9 -> tau = 5. The 9-delay action is NOT
        // within tau... but the delay-1 action is.
        b.push(0, 0, 0.0);
        b.push(2, 0, 1.0);
        b.push(0, 1, 0.0);
        b.push(2, 1, 9.0);
        let log = b.build();
        let t = TemporalModel::learn(&g, &log);
        // tau(0,2) = 5; action 0 within, action 1 not -> infl = 1/2.
        assert!((t.infl(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inactive_user_has_zero_infl() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let log = ActionLogBuilder::new(2).build();
        let t = TemporalModel::learn(&g, &log);
        assert_eq!(t.infl(0), 0.0);
        assert_eq!(t.infl(1), 0.0);
        assert_eq!(t.default_tau(), 1.0);
    }

    #[test]
    fn zero_delay_is_guarded() {
        // Simultaneity is excluded by the DAG, but near-zero deltas are
        // possible; tau must stay strictly positive.
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 1.0);
        b.push(1, 0, 1.0 + 1e-300);
        let log = b.build();
        let t = TemporalModel::learn(&g, &log);
        assert!(t.tau(&g, 0, 1).unwrap() > 0.0);
    }
}
