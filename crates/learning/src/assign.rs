//! Ad-hoc edge-probability assignment methods (UN, TV, WC, PT).
//!
//! These are the assignment conventions used throughout the pre-2011
//! influence-maximization literature, which §3 shows to be poor predictors
//! of real spread compared to learned probabilities.

use cdim_diffusion::EdgeProbabilities;
use cdim_graph::DirectedGraph;
use cdim_util::Rng;

/// **UN**: constant probability on every edge (the paper uses `0.01`).
pub fn uniform(graph: &DirectedGraph, p: f64) -> EdgeProbabilities {
    EdgeProbabilities::uniform(graph, p)
}

/// **TV** (trivalency): each edge draws uniformly from
/// `{0.1, 0.01, 0.001}`.
pub fn trivalency(graph: &DirectedGraph, seed: u64) -> EdgeProbabilities {
    const LEVELS: [f64; 3] = [0.1, 0.01, 0.001];
    let mut rng = Rng::seed_from_u64(seed);
    let values: Vec<f64> =
        (0..graph.num_edges()).map(|_| LEVELS[rng.index(LEVELS.len())]).collect();
    EdgeProbabilities::from_out_aligned(graph, values)
}

/// **WC** (weighted cascade): `p(v, u) = 1 / in_degree(u)`.
pub fn weighted_cascade(graph: &DirectedGraph) -> EdgeProbabilities {
    EdgeProbabilities::from_fn(graph, |_, u| 1.0 / graph.in_degree(u) as f64)
}

/// **PT**: multiplies each probability by a factor drawn uniformly from
/// `[1 - noise, 1 + noise]`, clamping into `[0, 1]` (§3 uses
/// `noise = 0.2`).
pub fn perturb(
    graph: &DirectedGraph,
    probs: &EdgeProbabilities,
    noise: f64,
    seed: u64,
) -> EdgeProbabilities {
    assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
    let mut rng = Rng::seed_from_u64(seed);
    let values: Vec<f64> = probs
        .out_view()
        .iter()
        .map(|&p| {
            let factor = 1.0 + rng.range_f64(-noise, noise);
            (p * factor).clamp(0.0, 1.0)
        })
        .collect();
    EdgeProbabilities::from_out_aligned(graph, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::GraphBuilder;

    fn diamond() -> DirectedGraph {
        GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build()
    }

    #[test]
    fn uniform_assigns_constant() {
        let g = diamond();
        let p = uniform(&g, 0.01);
        assert!(p.out_view().iter().all(|&x| x == 0.01));
    }

    #[test]
    fn trivalency_uses_only_three_levels() {
        let g = diamond();
        let p = trivalency(&g, 7);
        for &x in p.out_view() {
            assert!([0.1, 0.01, 0.001].contains(&x), "unexpected probability {x}");
        }
    }

    #[test]
    fn trivalency_is_seed_deterministic() {
        let g = diamond();
        assert_eq!(trivalency(&g, 5), trivalency(&g, 5));
    }

    #[test]
    fn weighted_cascade_is_reciprocal_in_degree() {
        let g = diamond();
        let p = weighted_cascade(&g);
        assert_eq!(p.get(&g, 0, 1), Some(1.0)); // in_degree(1) = 1
        assert_eq!(p.get(&g, 1, 3), Some(0.5)); // in_degree(3) = 2

        // In-weights sum to exactly 1 per node with in-edges: valid LT too.
        assert!((p.in_weight_sum(&g, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perturb_stays_within_factor_and_bounds() {
        let g = diamond();
        let base = uniform(&g, 0.5);
        let p = perturb(&g, &base, 0.2, 3);
        for &x in p.out_view() {
            assert!((0.4..=0.6).contains(&x), "{x} outside ±20% of 0.5");
        }
        // Perturbation near 1.0 clamps rather than exceeding 1.
        let high = uniform(&g, 0.99);
        let q = perturb(&g, &high, 0.2, 3);
        assert!(q.out_view().iter().all(|&x| x <= 1.0));
    }

    #[test]
    fn perturb_zero_noise_is_identity() {
        let g = diamond();
        let base = weighted_cascade(&g);
        let p = perturb(&g, &base, 0.0, 9);
        assert_eq!(p, base);
    }
}
