//! EM learning of IC influence probabilities (Saito et al., KES 2008).
//!
//! The likelihood of the observed traces under IC treats, for each action
//! `a` and each potential influence edge `(v, u)`:
//!
//! * a **success trial** when `v ∈ N_in(u, a)` — `v` was active before `u`
//!   and `u` did activate; the activation is explained by *some* parent:
//!   `P_u(a) = 1 − Π_{w ∈ N_in(u,a)} (1 − p_{w,u})`;
//! * a **failure trial** when `v` performed `a`, `u` is `v`'s out-neighbor
//!   and `u` never performed `a` — `v` had its shot and missed.
//!
//! E-step: responsibility `q_{v,u}(a) = p_{v,u} / P_u(a)` for success
//! trials. M-step: `p_{v,u} = Σ_a q_{v,u}(a) / (#successes + #failures)`.
//!
//! As §3 notes, real logs are not round-based, so *all previously activated
//! neighbors* count as potential influencers (that is exactly what
//! `N_in(u, a)` contains in our data model).
//!
//! The paper's "maximum-confidence anomaly" falls out naturally: a user
//! with one action that reached a follower gets `p = 1` on that edge
//! (1 success / 1 trial), which is why EM-greedy can pick statistically
//! insignificant seeds (§6, "Spread Achieved").

use cdim_actionlog::{ActionLog, PropagationDag};
use cdim_diffusion::EdgeProbabilities;
use cdim_graph::DirectedGraph;
use cdim_util::FxHashMap;

/// EM hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct EmConfig {
    /// Initial probability for every edge with at least one trial.
    pub initial_p: f64,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the maximum absolute parameter change drops below this.
    pub tolerance: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig { initial_p: 0.2, max_iterations: 30, tolerance: 1e-6 }
    }
}

/// Precomputed trial statistics plus the EM loop.
pub struct EmLearner<'a> {
    graph: &'a DirectedGraph,
    /// Per in-aligned edge position: number of success trials.
    successes: Vec<u32>,
    /// Per in-aligned edge position: total trials (successes + failures).
    trials: Vec<u32>,
    /// For every (action, performer-with-parents): the in-aligned edge
    /// positions of its parent edges, flattened CSR-style. Groups are the
    /// unit over which `P_u(a)` is computed.
    group_offsets: Vec<usize>,
    parent_edges: Vec<u32>,
}

impl<'a> EmLearner<'a> {
    /// Scans the training log once and precomputes all trial statistics.
    pub fn new(graph: &'a DirectedGraph, train: &ActionLog) -> Self {
        let m = graph.num_edges();
        let mut successes = vec![0u32; m];
        let mut trials = vec![0u32; m];
        let mut group_offsets = vec![0usize];
        let mut parent_edges: Vec<u32> = Vec::new();
        let mut performed: FxHashMap<u32, f64> = FxHashMap::default();

        for a in train.actions() {
            let dag = PropagationDag::build(train, graph, a);
            performed.clear();
            for (i, (&u, &t)) in dag.users().iter().zip(dag.times()).enumerate() {
                if dag.in_degree(i) > 0 {
                    for &p in dag.parents_of(i) {
                        let v = dag.user(p as usize);
                        let e = graph
                            .in_edge_position(v, u)
                            .expect("propagation edge must be a social edge");
                        successes[e] += 1;
                        trials[e] += 1;
                        parent_edges.push(e as u32);
                    }
                    group_offsets.push(parent_edges.len());
                }
                performed.insert(u, t);
            }
            // Failure trials: v acted, out-neighbor u never did.
            for &v in dag.users() {
                for &u in graph.out_neighbors(v) {
                    if !performed.contains_key(&u) {
                        let e = graph.in_edge_position(v, u).expect("edge exists");
                        trials[e] += 1;
                    }
                }
            }
        }

        EmLearner { graph, successes, trials, group_offsets, parent_edges }
    }

    /// Number of success-trial groups (activations with parents).
    pub fn num_activation_groups(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Success count of the edge at an in-aligned position — the
    /// `A_{v2u}` statistic (also the LT-weight numerator), exposed for
    /// diagnostics such as the "maximum-confidence anomaly" analysis of
    /// §6 (support = successes, confidence = successes / trials).
    pub fn successes_at(&self, in_pos: usize) -> u32 {
        self.successes[in_pos]
    }

    /// Trial count of the edge at an in-aligned position.
    pub fn trials_at(&self, in_pos: usize) -> u32 {
        self.trials[in_pos]
    }

    /// Runs EM and returns the learned probabilities plus the number of
    /// iterations performed.
    pub fn learn(&self, config: EmConfig) -> (EdgeProbabilities, usize) {
        let m = self.graph.num_edges();
        // In-aligned parameter vector; edges with no trials stay 0.
        let mut p: Vec<f64> =
            (0..m).map(|e| if self.trials[e] > 0 { config.initial_p } else { 0.0 }).collect();
        let mut acc = vec![0.0f64; m];
        let mut iterations = 0;

        for _ in 0..config.max_iterations {
            iterations += 1;
            acc.fill(0.0);
            // E-step: distribute each activation across its parent edges.
            for g in 0..self.num_activation_groups() {
                let edges = &self.parent_edges[self.group_offsets[g]..self.group_offsets[g + 1]];
                let mut none_prob = 1.0;
                for &e in edges {
                    none_prob *= 1.0 - p[e as usize];
                }
                let p_u = 1.0 - none_prob;
                if p_u <= f64::MIN_POSITIVE {
                    continue;
                }
                for &e in edges {
                    acc[e as usize] += p[e as usize] / p_u;
                }
            }
            // M-step.
            let mut max_delta = 0.0f64;
            for e in 0..m {
                if self.trials[e] == 0 {
                    continue;
                }
                let next = (acc[e] / self.trials[e] as f64).clamp(0.0, 1.0);
                max_delta = max_delta.max((next - p[e]).abs());
                p[e] = next;
            }
            if max_delta < config.tolerance {
                break;
            }
        }

        // Convert the in-aligned vector to the canonical overlay.
        let mut out_aligned = vec![0.0; m];
        for out_pos in 0..m {
            out_aligned[out_pos] = p[self.graph.out_pos_to_in_pos(out_pos)];
        }
        (EdgeProbabilities::from_out_aligned(self.graph, out_aligned), iterations)
    }
}

/// Convenience wrapper: scan + learn in one call.
pub fn learn_ic_probabilities(
    graph: &DirectedGraph,
    train: &ActionLog,
    config: EmConfig,
) -> EdgeProbabilities {
    EmLearner::new(graph, train).learn(config).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    /// 0 -> 1: action propagates on half the trials.
    #[test]
    fn single_edge_frequency_estimate() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        // 4 actions performed by 0; 2 of them reach 1.
        for a in 0..4u32 {
            b.push(0, a, 1.0);
            if a < 2 {
                b.push(1, a, 2.0);
            }
        }
        let log = b.build();
        let learner = EmLearner::new(&g, &log);
        let (p, _) = learner.learn(EmConfig::default());
        // 2 successes, 2 failures -> p = 0.5; single-parent groups converge
        // in one step.
        assert!((p.get(&g, 0, 1).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn certain_influencer_gets_probability_one() {
        // The "statistically insignificant seed" anomaly: one action, one
        // propagation, no failures -> p = 1.
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        let log = b.build();
        let (p, _) = EmLearner::new(&g, &log).learn(EmConfig::default());
        assert!((p.get(&g, 0, 1).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edge_never_observed_stays_zero() {
        let g = GraphBuilder::new(3).edges([(0, 1), (2, 1)]).build();
        let mut b = ActionLogBuilder::new(3);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        let log = b.build();
        let (p, _) = EmLearner::new(&g, &log).learn(EmConfig::default());
        // User 2 never acted: edge (2,1) has no trial at all.
        assert_eq!(p.get(&g, 2, 1), Some(0.0));
    }

    #[test]
    fn pure_failures_drive_probability_to_zero() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        for a in 0..5u32 {
            b.push(0, a, 1.0); // 1 never follows
        }
        let log = b.build();
        let (p, _) = EmLearner::new(&g, &log).learn(EmConfig::default());
        assert_eq!(p.get(&g, 0, 1), Some(0.0));
    }

    #[test]
    fn shared_credit_between_two_parents() {
        // v0 and v2 both precede u1 on every action; symmetric evidence
        // must produce symmetric probabilities.
        let g = GraphBuilder::new(3).edges([(0, 1), (2, 1)]).build();
        let mut b = ActionLogBuilder::new(3);
        for a in 0..6u32 {
            b.push(0, a, 1.0);
            b.push(2, a, 1.5);
            if a < 3 {
                b.push(1, a, 2.0);
            }
        }
        let log = b.build();
        let (p, _) = EmLearner::new(&g, &log).learn(EmConfig::default());
        let p01 = p.get(&g, 0, 1).unwrap();
        let p21 = p.get(&g, 2, 1).unwrap();
        assert!((p01 - p21).abs() < 1e-9, "{p01} vs {p21}");
        assert!(p01 > 0.0 && p01 < 1.0);
        // Joint activation probability should roughly match the observed
        // activation frequency (3 of 6).
        let joint = 1.0 - (1.0 - p01) * (1.0 - p21);
        assert!((joint - 0.5).abs() < 0.05, "joint = {joint}");
    }

    #[test]
    fn respects_time_order_for_trials() {
        // u acts *before* v: no success trial, and since u did perform the
        // action it is not a failure trial either — p must stay at init
        // value only if it had other trials; with none it should be 0.
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(1, 0, 1.0); // u first
        b.push(0, 0, 2.0); // v later
        let log = b.build();
        let learner = EmLearner::new(&g, &log);
        assert_eq!(learner.num_activation_groups(), 0);
        let (p, _) = learner.learn(EmConfig::default());
        assert_eq!(p.get(&g, 0, 1), Some(0.0));
    }

    #[test]
    fn converges_and_reports_iterations() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 1.0);
        b.push(1, 0, 2.0);
        b.push(0, 1, 1.0);
        let log = b.build();
        let (_, iters) = EmLearner::new(&g, &log).learn(EmConfig::default());
        assert!((1..=30).contains(&iters));
    }

    #[test]
    fn probabilities_always_within_bounds() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)]).build();
        let mut b = ActionLogBuilder::new(4);
        let mut t = 0.0;
        for a in 0..10u32 {
            for u in 0..4u32 {
                if (a + u) % 3 != 0 {
                    t += 1.0;
                    b.push(u, a, t);
                }
            }
        }
        let log = b.build();
        let (p, _) = EmLearner::new(&g, &log).learn(EmConfig::default());
        for &x in p.out_view() {
            assert!((0.0..=1.0).contains(&x), "p = {x}");
        }
    }
}
