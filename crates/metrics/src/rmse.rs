//! RMSE, plain and stratified by actual spread.

/// RMSE over `(actual, predicted)` pairs. Returns 0 for empty input.
pub fn rmse(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mse: f64 = pairs.iter().map(|&(a, p)| (a - p) * (a - p)).sum::<f64>() / pairs.len() as f64;
    mse.sqrt()
}

/// One stratum of the size-binned RMSE plots (Figs 2a/2c/3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinnedError {
    /// Inclusive lower edge of the bin (a multiple of the bin width).
    pub bin_start: usize,
    /// Number of propagations in the bin.
    pub count: usize,
    /// RMSE within the bin.
    pub rmse: f64,
}

/// Groups pairs by `actual` into bins of `bin_width` and reports RMSE per
/// bin, ascending. §3 uses bins "at multiples of 100" (Flixster) and
/// "at multiples of 20" (Flickr).
pub fn binned_rmse(pairs: &[(f64, f64)], bin_width: usize) -> Vec<BinnedError> {
    assert!(bin_width > 0, "bin width must be positive");
    let mut bins: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for &(a, p) in pairs {
        let bin = (a.max(0.0) as usize / bin_width) * bin_width;
        bins.entry(bin).or_default().push((a, p));
    }
    bins.into_iter()
        .map(|(bin_start, members)| BinnedError {
            bin_start,
            count: members.len(),
            rmse: rmse(&members),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_exact_predictions_is_zero() {
        assert_eq!(rmse(&[(1.0, 1.0), (5.0, 5.0)]), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // Errors 3 and 4 -> sqrt((9 + 16)/2) = sqrt(12.5).
        let r = rmse(&[(0.0, 3.0), (0.0, 4.0)]);
        assert!((r - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(rmse(&[]), 0.0);
    }

    #[test]
    fn binning_groups_by_actual() {
        let pairs = [(5.0, 6.0), (15.0, 15.0), (17.0, 20.0), (25.0, 24.0)];
        let bins = binned_rmse(&pairs, 10);
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].bin_start, 0);
        assert_eq!(bins[0].count, 1);
        assert!((bins[0].rmse - 1.0).abs() < 1e-12);
        assert_eq!(bins[1].bin_start, 10);
        assert_eq!(bins[1].count, 2);
        assert_eq!(bins[2].bin_start, 20);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_rejected() {
        let _ = binned_rmse(&[(1.0, 1.0)], 0);
    }
}
