//! Seed-set intersection (Table 2, Fig 5, Fig 9's "true seeds").

/// `|a ∩ b|`, treating the slices as sets.
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let set: std::collections::HashSet<u32> = a.iter().copied().collect();
    b.iter()
        .copied()
        .collect::<std::collections::HashSet<u32>>()
        .iter()
        .filter(|x| set.contains(x))
        .count()
}

/// Pairwise intersection matrix over named seed sets;
/// `matrix[i][j] = |sets[i] ∩ sets[j]|`.
pub fn intersection_matrix(sets: &[(&str, Vec<u32>)]) -> Vec<Vec<usize>> {
    sets.iter().map(|(_, a)| sets.iter().map(|(_, b)| intersection_size(a, b)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_intersection() {
        assert_eq!(intersection_size(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[1, 1, 2], &[1]), 1);
    }

    #[test]
    fn matrix_diagonal_is_set_size() {
        let sets = vec![("a", vec![1, 2, 3]), ("b", vec![3, 4]), ("c", vec![9])];
        let m = intersection_matrix(&sets);
        assert_eq!(m[0][0], 3);
        assert_eq!(m[1][1], 2);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[2][0], 0);
    }
}
