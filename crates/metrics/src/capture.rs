//! Capture curves (Fig 4): fraction of test propagations whose prediction
//! error is within a given absolute tolerance.

/// Fraction of pairs with `|actual − predicted| ≤ tolerance`.
pub fn capture_ratio_at(pairs: &[(f64, f64)], tolerance: f64) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let captured = pairs.iter().filter(|&&(a, p)| (a - p).abs() <= tolerance).count();
    captured as f64 / pairs.len() as f64
}

/// The full curve at the given tolerances, as `(tolerance, ratio)` points.
/// A point `(x, y)` reads: "a fraction `y` of propagations is predicted
/// within absolute error `x`" (Fig 4's axes).
pub fn capture_curve(pairs: &[(f64, f64)], tolerances: &[f64]) -> Vec<(f64, f64)> {
    tolerances.iter().map(|&t| (t, capture_ratio_at(pairs, t))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAIRS: [(f64, f64); 4] = [(10.0, 10.0), (10.0, 15.0), (10.0, 30.0), (10.0, 9.0)];

    #[test]
    fn ratio_counts_within_tolerance() {
        assert!((capture_ratio_at(&PAIRS, 0.0) - 0.25).abs() < 1e-12);
        assert!((capture_ratio_at(&PAIRS, 1.0) - 0.5).abs() < 1e-12);
        assert!((capture_ratio_at(&PAIRS, 5.0) - 0.75).abs() < 1e-12);
        assert!((capture_ratio_at(&PAIRS, 20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let curve = capture_curve(&PAIRS, &[0.0, 1.0, 2.0, 5.0, 10.0, 20.0]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(capture_ratio_at(&[], 10.0), 0.0);
    }
}
