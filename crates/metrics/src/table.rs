//! Minimal plain-text table rendering for the experiment harness.

use std::fmt::Write as _;

/// A column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment, a header rule, and `|` separators.
    pub fn render(&self) -> String {
        let columns = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str(" | ");
                }
                let _ = write!(out, "{cell:>width$}");
            }
            out.push('\n');
        };
        if !self.header.is_empty() {
            write_row(&mut out, &self.header);
            let total: usize = widths.iter().sum::<usize>() + 3 * (columns - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with three significant decimals, trimming noise.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All rows share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(2.34567), "2.35");
        assert_eq!(fmt_f64(0.012345), "0.0123");
    }
}
