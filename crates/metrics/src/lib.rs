#![warn(missing_docs)]
//! Evaluation metrics and reporting helpers for the experiments.
//!
//! * [`mod@rmse`] — root-mean-squared error, optionally stratified by actual
//!   spread (Figs 2–3 bin "propagations … with respect to their size");
//! * [`capture`] — the fraction-captured-within-absolute-error curves of
//!   Fig 4;
//! * [`intersect`] — seed-set intersection matrices (Tables 2, Fig 5);
//! * [`table`] — plain-text table rendering for the experiment harness.

pub mod capture;
pub mod intersect;
pub mod rmse;
pub mod table;

pub use capture::{capture_curve, capture_ratio_at};
pub use intersect::{intersection_matrix, intersection_size};
pub use rmse::{binned_rmse, rmse, BinnedError};
pub use table::Table;
