//! The reactor over the portable `poll(2)` backend.
//!
//! `CDIM_POLL_BACKEND=poll` forces `cdim_util::poll::Poller` off epoll;
//! this file (its own test process, so the env var leaks nowhere) reruns
//! the core serving flows on that fallback path.

use cdim_core::{scan, CreditPolicy};
use cdim_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, Response,
};
use cdim_serve::{spawn, InfluenceService, ModelSnapshot};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn test_service() -> Arc<InfluenceService> {
    std::env::set_var("CDIM_POLL_BACKEND", "poll");
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
    Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), 64))
}

#[test]
fn pipelined_queries_work_on_the_poll_backend() {
    let service = test_service();
    let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    let mut burst = Vec::new();
    for u in 0..6u32 {
        write_frame(&mut burst, &encode_request(&Request::Spread { seeds: vec![u % 3] })).unwrap();
    }
    write_frame(&mut burst, &encode_request(&Request::Info)).unwrap();
    stream.write_all(&burst).unwrap();

    for _ in 0..6 {
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(decode_response(&payload).unwrap(), Response::Spread(_)));
    }
    let payload = read_frame(&mut stream).unwrap().unwrap();
    match decode_response(&payload).unwrap() {
        Response::Info(info) => {
            assert_eq!(info.num_users as usize, service.snapshot().num_users())
        }
        other => panic!("expected Info, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn many_connections_work_on_the_poll_backend() {
    let service = test_service();
    let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut streams: Vec<TcpStream> =
        (0..64).map(|_| TcpStream::connect(server.addr()).unwrap()).collect();
    let frame = {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Spread { seeds: vec![0] })).unwrap();
        wire
    };
    for stream in &mut streams {
        stream.write_all(&frame).unwrap();
    }
    for stream in &mut streams {
        let payload = read_frame(stream).unwrap().unwrap();
        assert!(matches!(decode_response(&payload).unwrap(), Response::Spread(_)));
    }
    server.shutdown();
}
