//! Serving failure paths: snapshot files that must be rejected, and the
//! publish/query race — clients must always see a complete model, old or
//! new, never a torn one.

use cdim_core::{scan, CdSelector, CreditPolicy, Parallelism};
use cdim_serve::{Answer, InfluenceService, ModelSnapshot, Query, SnapshotError};
use cdim_util::checksum::crc32;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A trained snapshot over the deterministic tiny preset.
fn snapshot() -> ModelSnapshot {
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    ModelSnapshot::from_store(scan(&ds.graph, &ds.log, &policy, 0.001).unwrap())
}

/// Re-seals a mutated snapshot body with a valid CRC trailer, so the
/// decoder exercises structural validation instead of the checksum.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let mut bytes = snapshot().to_bytes();
    // Version word sits right after the 8-byte magic.
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    reseal(&mut bytes);
    match ModelSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion(7)) => {}
        other => panic!("expected UnsupportedVersion(7), got {other:?}"),
    }
    let message = ModelSnapshot::from_bytes(&bytes).unwrap_err().to_string();
    assert!(message.contains('7'), "message must name the file version: {message}");
    assert!(
        message.contains(&cdim_serve::snapshot::FORMAT_VERSION.to_string()),
        "message must name the supported version: {message}"
    );
}

#[test]
fn version_zero_is_rejected_too() {
    let mut bytes = snapshot().to_bytes();
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::UnsupportedVersion(0))));
}

#[test]
fn mid_stream_corruption_is_always_detected() {
    let bytes = snapshot().to_bytes();
    // Flip one bit at every 97th offset past the magic — deep inside the
    // CREDITS/SC payloads included — and demand a hard error every time.
    // The CRC trailer covers every body byte, so nothing may slip through
    // as a silently different model.
    for at in (8..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[at] ^= 0x01;
        match ModelSnapshot::from_bytes(&bad) {
            Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed, "offset {at}");
            }
            // Corrupting the version word itself reports the version
            // first (it is read before the payload is trusted).
            Err(SnapshotError::UnsupportedVersion(_)) if (8..12).contains(&at) => {}
            // Corrupting the CRC trailer still surfaces as a mismatch.
            other => panic!("corruption at {at} must fail loudly, got {other:?}"),
        }
    }
}

#[test]
fn corrupt_file_on_disk_fails_cleanly() {
    let snap = snapshot();
    let dir = std::env::temp_dir().join(format!("cdim_failpaths_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.snap");
    snap.save(&path).unwrap();

    // Truncate mid-stream (a crashed copy) and corrupt one byte in place.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ModelSnapshot::load(&path).is_err());

    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x80;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(ModelSnapshot::load(&path), Err(SnapshotError::ChecksumMismatch { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

/// The answer a fresh single-use service computes for `q` on `snap` —
/// the bitwise ground truth a concurrent client must match exactly.
fn expected_answer(snap: &ModelSnapshot, q: &Query) -> Answer {
    InfluenceService::new(snap.clone(), 0).query(q).unwrap()
}

#[test]
fn publish_delta_racing_queries_shows_old_or_new_never_torn() {
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::Uniform;
    let split = ds.log.num_actions() * 4 / 5;
    let (prefix, delta) = ds.log.split_at_action(split);

    let old_snap = ModelSnapshot::from_store(scan(&ds.graph, &prefix, &policy, 0.001).unwrap());
    let new_snap = old_snap.extend(&ds.graph, &delta, &policy, Parallelism::fixed(2)).unwrap();

    // Queries whose answers genuinely differ across the refresh.
    let queries: Vec<Query> = vec![
        Query::Spread { seeds: vec![0, 1, 2, 3] },
        Query::Spread { seeds: vec![5, 9, 17] },
        Query::MarginalGain { seeds: vec![0, 1], candidate: 7 },
    ];
    let old_answers: Vec<Answer> = queries.iter().map(|q| expected_answer(&old_snap, q)).collect();
    let new_answers: Vec<Answer> = queries.iter().map(|q| expected_answer(&new_snap, q)).collect();
    assert_ne!(old_answers, new_answers, "refresh must change at least one answer");

    let svc = Arc::new(InfluenceService::new(old_snap, 64));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for q in &queries {
                        observed.push(svc.query(q).unwrap());
                    }
                }
                observed
            })
        })
        .collect();

    // Let the readers warm up against the old model, then hot-swap.
    std::thread::sleep(std::time::Duration::from_millis(20));
    svc.publish_delta(&ds.graph, &delta, &policy, Parallelism::fixed(2)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);

    for reader in readers {
        let observed = reader.join().unwrap();
        assert!(!observed.is_empty());
        for (i, answer) in observed.into_iter().enumerate() {
            let slot = i % queries.len();
            assert!(
                answer == old_answers[slot] || answer == new_answers[slot],
                "query {slot} observed a torn answer: {answer:?}\n  old: {:?}\n  new: {:?}",
                old_answers[slot],
                new_answers[slot]
            );
        }
    }

    // After the swap the service answers from the new model only.
    for (q, expect) in queries.iter().zip(&new_answers) {
        assert_eq!(&svc.query(q).unwrap(), expect);
    }
    assert_eq!(svc.stats().snapshots_published, 1);
}

#[test]
fn publish_delta_rejects_stale_deltas_and_keeps_serving() {
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::Uniform;
    let split = ds.log.num_actions() / 2;
    let (prefix, _) = ds.log.split_at_action(split);
    let snap = ModelSnapshot::from_store(scan(&ds.graph, &prefix, &policy, 0.001).unwrap());
    let svc = InfluenceService::new(snap, 8);

    let q = Query::Spread { seeds: vec![0, 1] };
    let before = svc.query(&q).unwrap();

    // A delta cut against the wrong base must be refused atomically…
    let stale = ds.log.delta_range(split + 1, ds.log.num_actions());
    assert!(svc.publish_delta(&ds.graph, &stale, &policy, Parallelism::auto()).is_err());
    // …leaving the served model untouched.
    assert_eq!(svc.query(&q).unwrap(), before);
    assert_eq!(svc.stats().snapshots_published, 0);
}

#[test]
fn extended_snapshot_round_trips_through_the_file_format() {
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::Uniform;
    let (prefix, delta) = ds.log.split_at_action(ds.log.num_actions() / 2);

    // A mid-campaign snapshot (committed seed) extended by a delta must
    // survive save/load byte-identically like any other snapshot.
    let mut selector = CdSelector::new(scan(&ds.graph, &prefix, &policy, 0.001).unwrap());
    let seed = CdSelector::new(selector.store().clone()).select(1).seeds[0];
    selector.update(seed);
    let snap = ModelSnapshot::from_selector(selector)
        .extend(&ds.graph, &delta, &policy, Parallelism::fixed(3))
        .unwrap();
    let bytes = snap.to_bytes();
    let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(restored.to_bytes(), bytes);
    assert_eq!(restored.selector().seeds(), snap.selector().seeds());
}
