//! End-to-end tests for the reactor frontend — pipelining, backpressure,
//! slow peers, connection caps, and the regression tests for the PR-2
//! connection-handling bugs (each of these fails against the old
//! thread-per-connection server).

use cdim_core::{scan, CreditPolicy};
use cdim_serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, MAX_FRAME_LEN,
};
use cdim_serve::server::threaded::spawn_threaded;
use cdim_serve::{spawn, spawn_with, Answer, InfluenceService, ModelSnapshot, Query, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_service() -> Arc<InfluenceService> {
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
    Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), 256))
}

fn expect_spread(payload: &[u8]) -> f64 {
    match decode_response(payload).unwrap() {
        Response::Spread(sigma) => sigma,
        other => panic!("expected Spread, got {other:?}"),
    }
}

/// N requests written before any response is read; the answers must come
/// back complete and in request order, on both architectures.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let service = test_service();
    let num_users = service.snapshot().num_users() as u32;
    let expected: Vec<f64> = (0..num_users)
        .map(|u| match service.query(&Query::Spread { seeds: vec![u] }).unwrap() {
            Answer::Spread(sigma) => sigma,
            other => panic!("unexpected {other:?}"),
        })
        .collect();

    let reactor = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let threaded =
        spawn_threaded(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    for (label, addr) in [("reactor", reactor.addr()), ("threaded", threaded.addr())] {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Write the whole burst up front…
        let mut burst = Vec::new();
        for u in 0..num_users {
            write_frame(&mut burst, &encode_request(&Request::Spread { seeds: vec![u] })).unwrap();
        }
        stream.write_all(&burst).unwrap();
        // …then read every response: order must match request order.
        for (u, want) in expected.iter().enumerate() {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let got = expect_spread(&payload);
            assert_eq!(got.to_bits(), want.to_bits(), "{label}: answer {u} out of order");
        }
    }
    reactor.shutdown();
    threaded.shutdown();
}

/// Regression (PR-2 bug: a read timeout mid-frame was treated as idle and
/// the half-delivered request silently dropped). A slow-but-alive writer
/// that trickles a request one byte at a time — each gap shorter than the
/// idle timeout, the whole frame far longer — must still get its answer.
#[test]
fn slow_writer_request_survives_longer_than_the_idle_timeout() {
    let service = test_service();
    let config = ServerConfig { idle_timeout: Duration::from_millis(250), ..Default::default() };
    let reactor = spawn_with(Arc::clone(&service), "127.0.0.1:0", config.clone()).unwrap();
    let threaded = spawn_threaded(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let expected = match service.query(&Query::Spread { seeds: vec![0] }).unwrap() {
        Answer::Spread(sigma) => sigma,
        other => panic!("unexpected {other:?}"),
    };
    for (label, addr) in [("reactor", reactor.addr()), ("threaded", threaded.addr())] {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Spread { seeds: vec![0] })).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let start = Instant::now();
        for &byte in &wire {
            stream.write_all(&[byte]).unwrap();
            std::thread::sleep(Duration::from_millis(40));
        }
        assert!(
            start.elapsed() > Duration::from_millis(250),
            "the trickle must outlast the idle timeout for the test to mean anything"
        );
        let payload = read_frame(&mut stream)
            .unwrap_or_else(|e| panic!("{label}: slow request was dropped: {e}"))
            .unwrap_or_else(|| panic!("{label}: connection closed on the slow writer"));
        assert_eq!(expect_spread(&payload).to_bits(), expected.to_bits(), "{label}");
    }
    reactor.shutdown();
    threaded.shutdown();
}

/// The other half of the timeout fix: a peer that *stalls* mid-frame past
/// the idle timeout is told why before the close (the old server closed
/// silently), and a fully idle peer still closes silently.
#[test]
fn mid_frame_stall_gets_an_error_while_idle_close_stays_silent() {
    let service = test_service();
    let config = ServerConfig { idle_timeout: Duration::from_millis(200), ..Default::default() };
    let reactor = spawn_with(Arc::clone(&service), "127.0.0.1:0", config.clone()).unwrap();
    let threaded = spawn_threaded(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    for (label, addr) in [("reactor", reactor.addr()), ("threaded", threaded.addr())] {
        // Half a frame, then silence.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.set_nodelay(true).unwrap();
        stalled.write_all(&[9, 0]).unwrap(); // 2 of 4 length-prefix bytes
        stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let payload = read_frame(&mut stalled)
            .unwrap_or_else(|e| panic!("{label}: expected an error frame, got {e}"))
            .unwrap_or_else(|| panic!("{label}: closed without explaining the mid-frame stall"));
        match decode_response(&payload).unwrap() {
            Response::Error(message) => {
                assert!(message.contains("mid-frame"), "{label}: {message}")
            }
            other => panic!("{label}: expected Error, got {other:?}"),
        }
        assert!(
            matches!(read_frame(&mut stalled), Ok(None) | Err(_)),
            "{label}: connection must close after the mid-frame error"
        );

        // Nothing at all, then silence: closed with no frame.
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 1];
        match idle.read(&mut buf) {
            Ok(0) => {}
            Ok(n) => panic!("{label}: idle close must not send bytes, got {n}"),
            Err(e) => panic!("{label}: idle connection not closed within the timeout: {e}"),
        }
    }
    reactor.shutdown();
    threaded.shutdown();
}

/// A client that pipelines thousands of requests and never reads is
/// disconnected once its un-flushed responses pass the outbound cap,
/// instead of buffering without bound.
#[test]
fn nonreading_client_is_disconnected_at_the_backpressure_cap() {
    let service = test_service();
    let config = ServerConfig {
        max_outbound_bytes: 64 * 1024,
        idle_timeout: Duration::from_secs(60),
        ..Default::default()
    };
    let server = spawn_with(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let registry = service.metrics_registry();
    let disconnects = registry.counter("cdim_serve_backpressure_disconnects_total");
    let before = disconnects.get();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Cached TopK answers flow back at memory speed while this client
    // reads nothing; kernel socket buffers fill, then the server-side
    // outbound queue passes the cap and the server hangs up (surfacing
    // here as a write error once our own send buffer backs up, or as EOF).
    let frame = {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::TopKSeeds { budget: 20 })).unwrap();
        wire
    };
    stream.set_write_timeout(Some(Duration::from_millis(200))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut dropped = false;
    // Plain `write` with a resume offset: a timed-out partial write must
    // continue mid-frame, not restart it, or the stream would corrupt and
    // the close we observe would be a protocol error, not backpressure.
    let mut pos = 0usize;
    while Instant::now() < deadline {
        match stream.write(&frame[pos..]) {
            Ok(0) => {
                dropped = true;
                break;
            }
            Ok(n) => pos = (pos + n) % frame.len(),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                dropped = true;
                break;
            }
        }
        if disconnects.get() > before {
            dropped = true;
            break;
        }
    }
    assert!(dropped, "server never applied backpressure to a non-reading client");
    // The counter is the authoritative signal (the write error can also
    // come from an unrelated reset) — wait briefly for it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while disconnects.get() == before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(disconnects.get() > before, "backpressure disconnect counter never moved");
    server.shutdown();
}

/// Regression (PR-2 bug: unbounded thread spawn — no connection cap at
/// all). Connections beyond `max_connections` are closed immediately;
/// established ones keep working.
#[test]
fn connection_cap_rejects_the_excess_connection() {
    let service = test_service();
    let config = ServerConfig { max_connections: 4, ..Default::default() };
    let server = spawn_with(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let registry = service.metrics_registry();
    let rejected = registry.counter("cdim_serve_conns_rejected_total");

    // Fill the cap and prove the connections are live.
    let mut keepers: Vec<TcpStream> = Vec::new();
    for _ in 0..4 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &encode_request(&Request::Info)).unwrap();
        assert!(read_frame(&mut stream).unwrap().is_some());
        keepers.push(stream);
    }
    // The fifth is accepted and dropped without an answer.
    let mut excess = TcpStream::connect(server.addr()).unwrap();
    excess.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = write_frame(&mut excess, &encode_request(&Request::Info));
    assert!(
        matches!(read_frame(&mut excess), Ok(None) | Err(_)),
        "connection over the cap must be closed unanswered"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while rejected.get() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(rejected.get() >= 1, "rejection counter never moved");

    // The established connections still answer after the rejection.
    for stream in &mut keepers {
        write_frame(stream, &encode_request(&Request::Info)).unwrap();
        assert!(read_frame(stream).unwrap().is_some());
    }
    server.shutdown();
}

/// An oversized length prefix destroys framing: one error response, then
/// the connection closes.
#[test]
fn oversized_frame_prefix_gets_an_error_then_close() {
    let service = test_service();
    let server = spawn(service, "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
    let payload = read_frame(&mut stream).unwrap().unwrap();
    match decode_response(&payload).unwrap() {
        Response::Error(message) => assert!(message.contains("exceeds"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
    server.shutdown();
}

/// ≥1k live connections on one reactor thread, all answered. (The 10k
/// sweep lives in `bench_serve`; this is the CI-sized smoke.)
#[test]
fn a_thousand_concurrent_connections_are_served() {
    let service = test_service();
    let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let conns = 1000;
    let mut streams: Vec<TcpStream> = Vec::with_capacity(conns);
    for i in 0..conns {
        let stream = connect_with_retry(addr, i);
        streams.push(stream);
    }
    let gauge = service.metrics_registry().gauge("cdim_serve_connections");
    // All connections are open simultaneously before any is used.
    let deadline = Instant::now() + Duration::from_secs(30);
    while (gauge.get() as usize) < conns && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(gauge.get() as usize, conns, "connections gauge must see every socket");

    // One pipelined write per connection, then read everything back.
    let frame = {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::Spread { seeds: vec![0] })).unwrap();
        wire
    };
    for stream in &mut streams {
        stream.write_all(&frame).unwrap();
    }
    for (i, stream) in streams.iter_mut().enumerate() {
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let payload = read_frame(stream)
            .unwrap_or_else(|e| panic!("connection {i} failed: {e}"))
            .unwrap_or_else(|| panic!("connection {i} closed unanswered"));
        expect_spread(&payload);
    }
    drop(streams);
    server.shutdown();
    assert_eq!(gauge.get() as usize, 0, "shutdown must deregister every connection");
}

/// Shutdown with live connections and in-flight requests joins every
/// thread without hanging.
#[test]
fn shutdown_is_deterministic_with_live_connections() {
    let service = test_service();
    let server = spawn(service, "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &encode_request(&Request::Spread { seeds: vec![0] })).unwrap();
    let start = Instant::now();
    server.shutdown();
    assert!(start.elapsed() < Duration::from_secs(10), "shutdown hung");
    // The socket is dead afterwards.
    let mut buf = [0u8; 1];
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue, // drain whatever response was in flight
        }
    }
}

/// Queries pipelined through the reactor land in the per-tick batch path;
/// the batch-size histogram must record them.
#[test]
fn batched_queries_show_up_in_the_batch_histogram() {
    let service = test_service();
    let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut burst = Vec::new();
    for u in 0..8u32 {
        write_frame(&mut burst, &encode_request(&Request::Spread { seeds: vec![u % 4] })).unwrap();
    }
    stream.write_all(&burst).unwrap();
    for _ in 0..8 {
        assert!(read_frame(&mut stream).unwrap().is_some());
    }
    let hist = service.metrics_registry().histogram("cdim_serve_batch_size");
    assert!(hist.count() >= 1, "at least one batch must have been dispatched");
    server.shutdown();
}

fn connect_with_retry(addr: SocketAddr, i: usize) -> TcpStream {
    // Under load the SYN backlog can briefly overflow; retry with a pause.
    for attempt in 0..50 {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(_) if attempt < 49 => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("connection {i} failed after retries: {e}"),
        }
    }
    unreachable!()
}
