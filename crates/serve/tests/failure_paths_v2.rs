//! v2 (zero-copy) snapshot failure paths, mirroring `failure_paths.rs`
//! for the version-1 format: corrupted, truncated, and resealed-garbage
//! files must all fail with typed errors — and a healthy v2 file must
//! answer every query bit-identically to its v1 twin.

use cdim_core::{scan, CdSelector, CreditPolicy};
use cdim_serve::{ModelSnapshot, SnapshotError, SnapshotFormat};
use cdim_util::checksum::crc32c;

/// A trained snapshot over the deterministic tiny preset, with one
/// committed seed so the SC map and seed list are non-empty.
fn snapshot() -> ModelSnapshot {
    let ds = cdim_datagen::presets::tiny().generate();
    let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
    let mut selector = CdSelector::new(scan(&ds.graph, &ds.log, &policy, 0.001).unwrap());
    let seed = CdSelector::new(selector.store().clone()).select(1).seeds[0];
    selector.update(seed);
    ModelSnapshot::from_selector(selector)
}

/// Re-seals a mutated v2 body with a valid CRC-32C trailer, so the
/// decoder exercises structural validation instead of the checksum.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len();
    let crc = crc32c(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn v2_round_trips_and_loads_zero_copy() {
    let snap = snapshot();
    let bytes = snap.to_bytes_v2();
    let dir = std::env::temp_dir().join(format!("cdim_failv2_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.v2.snap");
    snap.save_as(&path, SnapshotFormat::V2).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), bytes, "save_as must write to_bytes_v2 verbatim");

    let loaded = ModelSnapshot::load(&path).unwrap();
    assert!(loaded.is_compact(), "a v2 file must load into the compact representation");
    assert_eq!(loaded.to_bytes_v2(), bytes, "v2 re-encoding must be canonical");
    assert_eq!(loaded.to_bytes(), snap.to_bytes(), "v1 re-encoding must match the source");
    assert!(loaded.resident_bytes() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_from_bytes_handles_arbitrary_alignment() {
    // `from_bytes` receives a borrowed slice at whatever alignment the
    // caller has; pad the front to force every misalignment 1..8.
    let snap = snapshot();
    let bytes = snap.to_bytes_v2();
    let expected = snap.to_bytes();
    for shift in 1..8 {
        let mut padded = vec![0u8; shift];
        padded.extend_from_slice(&bytes);
        let loaded = ModelSnapshot::from_bytes(&padded[shift..]).unwrap();
        assert_eq!(loaded.to_bytes(), expected, "misalignment {shift}");
    }
}

#[test]
fn v2_mid_stream_corruption_is_always_detected() {
    let bytes = snapshot().to_bytes_v2();
    // Flip one bit at every 97th offset — header, arena, and trailer
    // alike — and demand a hard error every time.
    for at in (8..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[at] ^= 0x01;
        match ModelSnapshot::from_bytes(&bad) {
            Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed, "offset {at}");
            }
            // The version word is read before the payload is trusted.
            Err(SnapshotError::UnsupportedVersion(_)) if (8..12).contains(&at) => {}
            other => panic!("corruption at {at} must fail loudly, got {other:?}"),
        }
    }
}

#[test]
fn v2_every_truncation_is_a_clean_error() {
    let bytes = snapshot().to_bytes_v2();
    for len in (0..bytes.len()).step_by(7) {
        assert!(
            ModelSnapshot::from_bytes(&bytes[..len]).is_err(),
            "prefix of {len} bytes decoded successfully"
        );
    }
}

#[test]
fn v2_nonzero_reserved_word_is_rejected() {
    let mut bytes = snapshot().to_bytes_v2();
    bytes[12..16].copy_from_slice(&1u32.to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::Malformed(_))));
}

#[test]
fn v2_absurd_header_counts_fail_without_allocating() {
    // num_users is the first u64 count, at offset 24. Claiming u32::MAX
    // users with a valid CRC must be rejected structurally, not by a
    // giant allocation or overflowing layout arithmetic.
    let mut bytes = snapshot().to_bytes_v2();
    bytes[24..32].copy_from_slice(&u64::from(u32::MAX).to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::Malformed(_))));
}

#[test]
fn v2_arena_length_mismatch_is_rejected() {
    // The arena length word (offset 88) must agree with the counts.
    let mut bytes = snapshot().to_bytes_v2();
    let stored = u64::from_le_bytes(bytes[88..96].try_into().unwrap());
    bytes[88..96].copy_from_slice(&(stored + 8).to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::Malformed(_))));
}

#[test]
fn v2_trailing_bytes_are_rejected() {
    let mut bytes = snapshot().to_bytes_v2();
    let at = bytes.len() - 4;
    bytes.splice(at..at, [0u8; 8]); // 8 junk bytes between arena and CRC
    reseal(&mut bytes);
    assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::Malformed(_))));
}

#[test]
fn v2_resealed_structural_garbage_is_rejected() {
    // A validly-checksummed arena whose first ua_offsets entry is not 0:
    // the CRC passes, structural validation must still reject it.
    let mut bytes = snapshot().to_bytes_v2();
    bytes[96..100].copy_from_slice(&1u32.to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::Malformed(_))));
}

#[test]
fn v2_corrupt_file_on_disk_fails_cleanly() {
    let snap = snapshot();
    let dir = std::env::temp_dir().join(format!("cdim_failv2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.v2.snap");
    snap.save_as(&path, SnapshotFormat::V2).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ModelSnapshot::load(&path).is_err());

    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x80;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(ModelSnapshot::load(&path), Err(SnapshotError::ChecksumMismatch { .. })));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_and_v2_loads_answer_bit_identically() {
    let snap = snapshot();
    let dir = std::env::temp_dir().join(format!("cdim_failv2_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("model.v1.snap");
    let v2_path = dir.join("model.v2.snap");
    snap.save_as(&v1_path, SnapshotFormat::V1).unwrap();
    snap.save_as(&v2_path, SnapshotFormat::V2).unwrap();

    let v1 = ModelSnapshot::load(&v1_path).unwrap();
    let v2 = ModelSnapshot::load(&v2_path).unwrap();
    assert!(!v1.is_compact() && v2.is_compact());
    assert_eq!(v1.to_bytes(), v2.to_bytes());
    assert_eq!(v1.lambda().to_bits(), v2.lambda().to_bits());
    assert_eq!(v1.committed_seeds(), v2.committed_seeds());

    let (s1, s2) = (v1.top_k(3), v2.top_k(3));
    assert_eq!(s1.seeds, s2.seeds);
    let bits = |gains: &[f64]| gains.iter().map(|g| g.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&s1.marginal_gains), bits(&s2.marginal_gains));

    for x in 0..snap.num_users() as u32 {
        assert_eq!(
            v1.single_marginal_gain(x).to_bits(),
            v2.single_marginal_gain(x).to_bits(),
            "single_marginal_gain({x})"
        );
        assert_eq!(
            v1.gain_over(&s1.seeds, x).to_bits(),
            v2.gain_over(&s2.seeds, x).to_bits(),
            "gain_over({x})"
        );
    }
    assert_eq!(
        v1.telescoped_spread(&s1.seeds).to_bits(),
        v2.telescoped_spread(&s2.seeds).to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}
