//! The concurrent influence-query engine.
//!
//! An [`InfluenceService`] owns an immutable [`ModelSnapshot`] behind an
//! `Arc` and answers three query shapes from any number of threads:
//!
//! * **top-k seeds** — CELF (Algorithm 3) over the snapshot store;
//! * **spread** — σ_cd(S) for an arbitrary seed set, computed by
//!   telescoping Theorem-3 marginal gains over the canonicalized set;
//! * **marginal gain** — σ_cd(S + x) − σ_cd(S) for a candidate `x`.
//!
//! Answers for hot keys are cached in an
//! [`cdim_util::LruCache`] keyed on *canonicalized* seed sets
//! (sorted, deduplicated), so `{3, 1}` and `{1, 3, 3}` share one entry and
//! one floating-point evaluation order. A retrain is published with
//! [`InfluenceService::publish`]: the `Arc` snapshot is swapped under a
//! brief write lock and the cache is invalidated, while in-flight queries
//! keep the old snapshot alive until they finish — zero downtime.

use crate::snapshot::ModelSnapshot;
use cdim_obs::{Counter, Gauge, Histogram, MetricsRegistry, Stage, TraceCtx, Tracer};
use cdim_util::{LruCache, Timer};
use std::sync::{Arc, Mutex, RwLock};

/// A query against the current snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// The `budget` best seeds by CELF, with their marginal gains.
    TopKSeeds {
        /// Number of seeds to select.
        budget: u32,
    },
    /// Predicted spread σ_cd of an arbitrary seed set.
    Spread {
        /// The seed set (any order, duplicates tolerated).
        seeds: Vec<u32>,
    },
    /// Marginal gain of adding `candidate` to `seeds`.
    MarginalGain {
        /// The existing seed set.
        seeds: Vec<u32>,
        /// The candidate user.
        candidate: u32,
    },
}

/// A successful answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// Seeds in selection order with their telescoping marginal gains.
    TopKSeeds {
        /// Chosen seeds, best first.
        seeds: Vec<u32>,
        /// Marginal gain of each seed at its selection step.
        gains: Vec<f64>,
    },
    /// σ_cd of the queried set.
    Spread(f64),
    /// The queried marginal gain.
    MarginalGain(f64),
}

/// Why a query was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A user id exceeds the snapshot's user universe.
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// Users in the snapshot.
        num_users: usize,
    },
    /// The marginal-gain candidate is already in the queried seed set.
    CandidateInSeedSet(u32),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UserOutOfRange { user, num_users } => {
                write!(f, "user {user} out of range (snapshot has {num_users} users)")
            }
            QueryError::CandidateInSeedSet(x) => {
                write!(f, "candidate {x} is already in the seed set")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Cache key: the query with its seed set in canonical form.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum CacheKey {
    TopK(u32),
    Spread(Vec<u32>),
    Gain(Vec<u32>, u32),
}

/// Counters exposed for monitoring and tests.
///
/// A long-running follower + server pair is monitored through these (via
/// the wire `Stats` op and `cdim stats`): `queries` says whether traffic
/// is arriving, the hit/miss split says whether the cache is earning its
/// memory, and `snapshots_published` / `model_version` say whether the
/// online-retraining loop is actually refreshing the served model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries received by [`InfluenceService::query`] (including ones
    /// rejected with a [`QueryError`]).
    pub queries: u64,
    /// Queries answered from the LRU cache.
    pub cache_hits: u64,
    /// Queries that had to be computed.
    pub cache_misses: u64,
    /// Snapshots published over the service's lifetime (the initial one
    /// counts as zero).
    pub snapshots_published: u64,
    /// Version of the currently served model: starts at 0 and increments
    /// on every publish (equals `snapshots_published` unless stats are
    /// read mid-publish).
    pub model_version: u64,
}

/// The service's handles into its [`MetricsRegistry`]: resolved once at
/// construction so the hot path never pays a name lookup.
struct ServeMetrics {
    queries: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    published: Arc<Counter>,
    inflight: Arc<Gauge>,
    query_seconds: Arc<Histogram>,
    publish_seconds: Arc<Histogram>,
    retract_seconds: Arc<Histogram>,
    swap_seconds: Arc<Histogram>,
}

impl ServeMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            queries: registry.counter("cdim_serve_queries_total"),
            hits: registry.counter("cdim_serve_cache_hits_total"),
            misses: registry.counter("cdim_serve_cache_misses_total"),
            published: registry.counter("cdim_serve_publishes_total"),
            inflight: registry.gauge("cdim_serve_inflight_queries"),
            query_seconds: registry.histogram("cdim_serve_query_seconds"),
            publish_seconds: registry.histogram("cdim_serve_publish_seconds"),
            retract_seconds: registry.histogram("cdim_serve_retract_seconds"),
            swap_seconds: registry.histogram("cdim_serve_swap_seconds"),
        }
    }
}

/// The service's interned trace stages, resolved once at construction
/// (the flight-recorder analogue of [`ServeMetrics`]). Spans record into
/// the process-wide [`Tracer`] so one op-7 dump shows the whole request
/// path across reactor, service and scan.
struct ServeTrace {
    tracer: Arc<Tracer>,
    query: Stage,
    snapshot: Stage,
    probe: Stage,
    compute: Stage,
    dedup: Stage,
    publish: Stage,
    publish_delta: Stage,
    retract_delta: Stage,
    extend: Stage,
    retract: Stage,
    swap: Stage,
    k_queries: Stage,
    k_hits: Stage,
}

impl ServeTrace {
    fn register(tracer: Arc<Tracer>) -> Self {
        ServeTrace {
            query: tracer.stage("service.query"),
            snapshot: tracer.stage("service.snapshot"),
            probe: tracer.stage("service.cache_probe"),
            compute: tracer.stage("service.compute"),
            dedup: tracer.stage("service.dedup"),
            publish: tracer.stage("service.publish"),
            publish_delta: tracer.stage("service.publish_delta"),
            retract_delta: tracer.stage("service.retract_delta"),
            extend: tracer.stage("service.extend"),
            retract: tracer.stage("service.retract"),
            swap: tracer.stage("service.swap"),
            k_queries: tracer.stage("queries"),
            k_hits: tracer.stage("hits"),
            tracer,
        }
    }
}

/// Thread-safe influence-query service over an immutable model snapshot.
pub struct InfluenceService {
    /// The served model plus its publish epoch. Reading them as a pair is
    /// what lets a finished computation prove its answer is not stale
    /// before caching it.
    snapshot: RwLock<(u64, Arc<ModelSnapshot>)>,
    cache: Mutex<LruCache<CacheKey, Answer>>,
    /// The registry this service reports into; [`ServiceStats`] reads the
    /// same counters back, so there is exactly one source of truth.
    registry: Arc<MetricsRegistry>,
    metrics: ServeMetrics,
    trace: ServeTrace,
}

impl InfluenceService {
    /// Wraps `snapshot` with an answer cache of `cache_capacity` entries
    /// (0 disables caching). The service gets a private
    /// [`MetricsRegistry`]; use [`Self::with_registry`] to share one.
    pub fn new(snapshot: ModelSnapshot, cache_capacity: usize) -> Self {
        Self::with_registry(snapshot, cache_capacity, Arc::new(MetricsRegistry::new()))
    }

    /// Like [`Self::new`], but reporting into `registry` — pass
    /// [`MetricsRegistry::global`] to surface the service's series on the
    /// process-wide scrape endpoint and wire op 6.
    pub fn with_registry(
        snapshot: ModelSnapshot,
        cache_capacity: usize,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let metrics = ServeMetrics::register(&registry);
        InfluenceService {
            snapshot: RwLock::new((0, Arc::new(snapshot))),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            registry,
            metrics,
            trace: ServeTrace::register(Tracer::global()),
        }
    }

    /// The registry this service reports into (the one wire op 6 dumps).
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The currently-served snapshot. The returned `Arc` stays valid (and
    /// the old model stays alive) across concurrent [`publish`] calls.
    ///
    /// [`publish`]: Self::publish
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned").1)
    }

    /// The served snapshot together with its publish epoch.
    fn snapshot_with_epoch(&self) -> (u64, Arc<ModelSnapshot>) {
        let guard = self.snapshot.read().expect("snapshot lock poisoned");
        (guard.0, Arc::clone(&guard.1))
    }

    /// Current publish epoch.
    fn epoch(&self) -> u64 {
        self.snapshot.read().expect("snapshot lock poisoned").0
    }

    /// Atomically replaces the served snapshot and invalidates the answer
    /// cache. Queries already in flight finish against the old snapshot;
    /// new queries see the new one. No query is ever blocked for longer
    /// than the pointer swap + cache clear.
    pub fn publish(&self, snapshot: ModelSnapshot) {
        let tracer = &self.trace.tracer;
        let root = tracer.open(tracer.begin_trace(), self.trace.publish);
        self.publish_traced(snapshot, root.ctx());
        tracer.close(root);
    }

    /// The swap itself, recorded under `ctx` so a delta/retract publish
    /// shows up as one trace rather than nested roots.
    fn publish_traced(&self, snapshot: ModelSnapshot, ctx: TraceCtx) {
        let next = Arc::new(snapshot);
        // Bump the epoch together with the swap, *then* clear. A query
        // that computed against the old snapshot either sees the bumped
        // epoch and skips its cache insert, or inserted before the bump —
        // in which case the clear below removes the entry. Either way no
        // old-model answer survives the publish.
        let timer = Timer::start();
        let swap_span = self.trace.tracer.open(ctx, self.trace.swap);
        {
            let mut slot = self.snapshot.write().expect("snapshot lock poisoned");
            *slot = (slot.0 + 1, next);
        }
        self.cache.lock().expect("cache lock poisoned").clear();
        self.trace.tracer.close(swap_span);
        self.metrics.swap_seconds.observe(timer.secs());
        self.metrics.published.inc();
    }

    /// Incremental hot-swap: extends the *currently served* snapshot with
    /// an append-only action batch and publishes the result — a retrain
    /// refresh priced at the delta, not the full log. Queries in flight
    /// keep the old snapshot; once this returns, new queries see the
    /// extended one. No query ever observes a half-updated model (the
    /// swap is a single `Arc` replacement under the write lock).
    ///
    /// Concurrent `publish_delta`/`publish` calls are each atomic, but a
    /// pair racing each other resolves to whichever swaps last — drive
    /// refreshes from one place (the paper's pipeline is a single
    /// training loop feeding many query threads).
    pub fn publish_delta(
        &self,
        graph: &cdim_graph::DirectedGraph,
        delta: &cdim_actionlog::ActionLogDelta,
        policy: &cdim_core::CreditPolicy,
        parallelism: cdim_util::Parallelism,
    ) -> Result<(), cdim_core::ExtendError> {
        let _span = self.metrics.publish_seconds.start_span();
        let tracer = &self.trace.tracer;
        let root = tracer.open(tracer.begin_trace(), self.trace.publish_delta);
        let extend_span = tracer.open(root.ctx(), self.trace.extend);
        // An error abandons the open spans: failed publishes are not
        // recorded (an unclosed ActiveSpan is plain data, nothing leaks).
        let next = self.snapshot().extend(graph, delta, policy, parallelism)?;
        tracer.close(extend_span);
        self.publish_traced(next, root.ctx());
        tracer.close(root);
        Ok(())
    }

    /// Sliding-window hot-swap: retracts an expired action prefix from
    /// the *currently served* snapshot and publishes the result — the
    /// expiry side of a bounded-memory live model. The swap is the same
    /// single `Arc` replacement as [`publish`](Self::publish): queries in
    /// flight keep the old snapshot, the cache is invalidated with the
    /// epoch bump, and no query ever observes a half-retracted model.
    ///
    /// The same single-writer discipline as
    /// [`publish_delta`](Self::publish_delta) applies.
    pub fn retract_delta(
        &self,
        graph: &cdim_graph::DirectedGraph,
        expired: &cdim_actionlog::ActionLogDelta,
        policy: &cdim_core::CreditPolicy,
        parallelism: cdim_util::Parallelism,
    ) -> Result<(), cdim_core::ExtendError> {
        let _span = self.metrics.retract_seconds.start_span();
        let tracer = &self.trace.tracer;
        let root = tracer.open(tracer.begin_trace(), self.trace.retract_delta);
        let retract_span = tracer.open(root.ctx(), self.trace.retract);
        let next = self.snapshot().retract(graph, expired, policy, parallelism)?;
        tracer.close(retract_span);
        self.publish_traced(next, root.ctx());
        tracer.close(root);
        Ok(())
    }

    /// Version of the currently served model: 0 for the snapshot the
    /// service started with, +1 per publish.
    pub fn model_version(&self) -> u64 {
        self.epoch()
    }

    /// Query, cache and publish counters, read back from the service's
    /// [`MetricsRegistry`] — the registry IS the source of truth.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.metrics.queries.get(),
            cache_hits: self.metrics.hits.get(),
            cache_misses: self.metrics.misses.get(),
            snapshots_published: self.metrics.published.get(),
            model_version: self.epoch(),
        }
    }

    /// Answers one query, consulting the LRU cache first. Each call is
    /// its own trace rooted at `service.query` (the threaded frontend's
    /// per-request trace; the reactor instead threads its request traces
    /// through [`Self::query_batch_traced`]).
    pub fn query(&self, query: &Query) -> Result<Answer, QueryError> {
        let tracer = &self.trace.tracer;
        let root = tracer.open(tracer.begin_trace(), self.trace.query);
        let result = self.query_inner(query, root.ctx());
        tracer.close(root);
        result
    }

    fn query_inner(&self, query: &Query, ctx: TraceCtx) -> Result<Answer, QueryError> {
        self.metrics.queries.inc();
        let _inflight = self.metrics.inflight.inc_scoped();
        let _span = self.metrics.query_seconds.start_span();
        let tracer = &self.trace.tracer;
        let snapshot_span = tracer.open(ctx, self.trace.snapshot);
        let (epoch, snapshot) = self.snapshot_with_epoch();
        tracer.close(snapshot_span);
        let key = canonical_key(query, &snapshot)?;

        let probe_span = tracer.open(ctx, self.trace.probe);
        let cached = self.cache.lock().expect("cache lock poisoned").get(&key).cloned();
        tracer.close(probe_span);
        if let Some(answer) = cached {
            self.metrics.hits.inc();
            return Ok(answer);
        }

        let compute_span = tracer.open(ctx, self.trace.compute);
        let answer = compute(&key, &snapshot);
        tracer.close(compute_span);
        self.metrics.misses.inc();
        // Cache only when no publish raced the computation (checked while
        // holding the cache lock, so a concurrent publish's clear either
        // runs after this insert or is ordered after our epoch check).
        let mut cache = self.cache.lock().expect("cache lock poisoned");
        if self.epoch() == epoch {
            cache.insert(key, answer.clone());
        }
        Ok(answer)
    }

    /// Answers a batch of queries against **one** consistent snapshot.
    ///
    /// This is the reactor's amortized path: every query decoded in one
    /// event-loop tick lands here, so the whole batch pays a single
    /// snapshot-lock acquisition, a single cache-lock probe pass, and a
    /// single epoch-checked insert pass — and a concurrent
    /// [`publish`](Self::publish) can never interleave *between* queries
    /// of the batch (they all see the same epoch).
    ///
    /// Metrics are recorded per query, exactly as [`query`](Self::query)
    /// would: `queries_total` and the latency histogram advance once per
    /// element, and every element counts as either a hit or a miss
    /// (duplicates within the batch are hits — the first occurrence's
    /// computation serves the rest from memory).
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<Answer, QueryError>> {
        self.query_batch_traced(queries, &[])
    }

    /// [`Self::query_batch`] with per-query trace contexts: `ctxs[i]` is
    /// the request trace query `i` belongs to (the reactor's per-request
    /// roots), so batch-wide work — snapshot acquisition, the cache-probe
    /// pass — is recorded once under the first sampled context, while
    /// per-query work (compute, in-batch dedup) lands under its own
    /// request. Pass an empty slice to trace nothing (`query_batch`
    /// delegates that way). Tracing never changes the metrics accounting.
    pub fn query_batch_traced(
        &self,
        queries: &[Query],
        ctxs: &[TraceCtx],
    ) -> Vec<Result<Answer, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let tracer = &self.trace.tracer;
        let ctx_of = |i: usize| ctxs.get(i).copied().unwrap_or_else(TraceCtx::unsampled);
        let batch_ctx =
            ctxs.iter().copied().find(TraceCtx::is_sampled).unwrap_or_else(TraceCtx::unsampled);
        self.metrics.queries.add(queries.len() as u64);
        self.metrics.inflight.add(queries.len() as f64);
        let timer = Timer::start();
        let snapshot_span = tracer.open(batch_ctx, self.trace.snapshot);
        let (epoch, snapshot) = self.snapshot_with_epoch();
        tracer.close(snapshot_span);

        let keys: Vec<Result<CacheKey, QueryError>> =
            queries.iter().map(|q| canonical_key(q, &snapshot)).collect();

        // One probe pass under one cache-lock hold.
        let mut probe_span = tracer.open(batch_ctx, self.trace.probe);
        let mut results: Vec<Option<Result<Answer, QueryError>>> = vec![None; queries.len()];
        let mut probe_hits = 0u64;
        {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            for (slot, key) in results.iter_mut().zip(&keys) {
                match key {
                    Err(e) => *slot = Some(Err(e.clone())),
                    Ok(k) => {
                        if let Some(answer) = cache.get(k) {
                            self.metrics.hits.inc();
                            probe_hits += 1;
                            *slot = Some(Ok(answer.clone()));
                        }
                    }
                }
            }
        }
        probe_span.kv(self.trace.k_queries, queries.len() as u64);
        probe_span.kv(self.trace.k_hits, probe_hits);
        tracer.close(probe_span);
        let probe_secs = timer.secs();
        let resolved = results.iter().filter(|s| s.is_some()).count();
        for _ in 0..resolved {
            self.metrics.query_seconds.observe(probe_secs);
        }

        // Compute the misses; duplicates within the batch compute once.
        let mut computed: Vec<(CacheKey, Answer)> = Vec::new();
        for (i, (slot, key)) in results.iter_mut().zip(&keys).enumerate() {
            if slot.is_some() {
                continue;
            }
            let key = key.as_ref().expect("errors were resolved in the probe pass");
            let answer = match computed.iter().find(|(k, _)| k == key) {
                Some((_, answer)) => {
                    let dedup_span = tracer.open(ctx_of(i), self.trace.dedup);
                    self.metrics.hits.inc();
                    let answer = answer.clone();
                    tracer.close(dedup_span);
                    answer
                }
                None => {
                    let compute_span = tracer.open(ctx_of(i), self.trace.compute);
                    let answer = compute(key, &snapshot);
                    tracer.close(compute_span);
                    self.metrics.misses.inc();
                    computed.push((key.clone(), answer.clone()));
                    answer
                }
            };
            self.metrics.query_seconds.observe(timer.secs());
            *slot = Some(Ok(answer));
        }

        // One epoch-checked insert pass (same stale-answer discipline as
        // the single-query path).
        if !computed.is_empty() {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            if self.epoch() == epoch {
                for (key, answer) in computed {
                    cache.insert(key, answer);
                }
            }
        }

        self.metrics.inflight.add(-(queries.len() as f64));
        results.into_iter().map(|slot| slot.expect("every slot was filled")).collect()
    }
}

/// Validates the query against the snapshot and canonicalizes its seed set
/// (sorted + deduplicated) so equivalent queries share a cache entry and a
/// summation order.
fn canonical_key(query: &Query, snapshot: &ModelSnapshot) -> Result<CacheKey, QueryError> {
    let num_users = snapshot.num_users();
    let check = |user: u32| {
        if user as usize >= num_users {
            Err(QueryError::UserOutOfRange { user, num_users })
        } else {
            Ok(())
        }
    };
    match query {
        Query::TopKSeeds { budget } => Ok(CacheKey::TopK(*budget)),
        Query::Spread { seeds } => {
            for &s in seeds {
                check(s)?;
            }
            Ok(CacheKey::Spread(canonicalize(seeds)))
        }
        Query::MarginalGain { seeds, candidate } => {
            for &s in seeds {
                check(s)?;
            }
            check(*candidate)?;
            let canonical = canonicalize(seeds);
            if canonical.binary_search(candidate).is_ok() {
                return Err(QueryError::CandidateInSeedSet(*candidate));
            }
            Ok(CacheKey::Gain(canonical, *candidate))
        }
    }
}

fn canonicalize(seeds: &[u32]) -> Vec<u32> {
    let mut out = seeds.to_vec();
    out.sort_unstable();
    out.dedup();
    out
}

fn compute(key: &CacheKey, snapshot: &ModelSnapshot) -> Answer {
    match key {
        CacheKey::TopK(budget) => {
            let selection = snapshot.top_k(*budget as usize);
            Answer::TopKSeeds { seeds: selection.seeds, gains: selection.marginal_gains }
        }
        // Single-seed spread and empty-set marginal gain are pure reads:
        // σ_cd({s}) = mg(s), no Lemma-2/3 update ever runs, so skip the
        // O(model-size) state clone that the general walk needs.
        CacheKey::Spread(seeds) if seeds.len() == 1 => {
            Answer::Spread(snapshot.single_marginal_gain(seeds[0]))
        }
        CacheKey::Spread(seeds) => Answer::Spread(snapshot.telescoped_spread(seeds)),
        CacheKey::Gain(seeds, candidate) if seeds.is_empty() => {
            Answer::MarginalGain(snapshot.single_marginal_gain(*candidate))
        }
        CacheKey::Gain(seeds, candidate) => {
            Answer::MarginalGain(snapshot.gain_over(seeds, *candidate))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_core::{scan, CdSelector, CreditPolicy};

    fn service(cache: usize) -> InfluenceService {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
        InfluenceService::new(ModelSnapshot::from_store(store), cache)
    }

    #[test]
    fn topk_matches_offline_selector() {
        let svc = service(16);
        let offline = CdSelector::new(svc.snapshot().selector().store().clone()).select(5);
        match svc.query(&Query::TopKSeeds { budget: 5 }).unwrap() {
            Answer::TopKSeeds { seeds, gains } => {
                assert_eq!(seeds, offline.seeds);
                assert_eq!(gains, offline.marginal_gains);
            }
            other => panic!("unexpected answer {other:?}"),
        }
    }

    #[test]
    fn spread_telescopes_marginal_gains() {
        let svc = service(16);
        let Answer::TopKSeeds { seeds, gains } =
            svc.query(&Query::TopKSeeds { budget: 3 }).unwrap()
        else {
            unreachable!()
        };
        let Answer::Spread(sigma) = svc.query(&Query::Spread { seeds: seeds.clone() }).unwrap()
        else {
            unreachable!()
        };
        // The service telescopes in canonical (sorted) seed order; CELF
        // telescoped in selection order. On a λ-truncated store the
        // Lemma-2 update algebra is only order-independent up to the
        // truncation error, so the totals agree approximately…
        assert!((sigma - gains.iter().sum::<f64>()).abs() < 1e-3 * sigma.abs());
        // …and exactly against an offline walk in the same canonical order.
        let mut canonical = seeds;
        canonical.sort_unstable();
        let mut offline = CdSelector::new(svc.snapshot().selector().store().clone());
        let mut expected = 0.0;
        for &s in &canonical {
            expected += offline.compute_mg(s);
            offline.update(s);
        }
        assert_eq!(sigma.to_bits(), expected.to_bits());
    }

    #[test]
    fn marginal_gain_is_spread_difference() {
        let svc = service(16);
        let s = vec![0u32, 1];
        let Answer::Spread(base) = svc.query(&Query::Spread { seeds: s.clone() }).unwrap() else {
            unreachable!()
        };
        for candidate in 2..svc.snapshot().num_users() as u32 {
            let Answer::MarginalGain(mg) =
                svc.query(&Query::MarginalGain { seeds: s.clone(), candidate }).unwrap()
            else {
                unreachable!()
            };
            let mut with = s.clone();
            with.push(candidate);
            let Answer::Spread(bigger) = svc.query(&Query::Spread { seeds: with }).unwrap() else {
                unreachable!()
            };
            assert!(
                (base + mg - bigger).abs() < 1e-9,
                "candidate {candidate}: {base} + {mg} vs {bigger}"
            );
        }
    }

    #[test]
    fn cache_hit_path_returns_identical_answer() {
        let svc = service(16);
        let q = Query::Spread { seeds: vec![3, 1, 2] };
        let first = svc.query(&q).unwrap();
        assert_eq!(
            svc.stats(),
            ServiceStats { queries: 1, cache_hits: 0, cache_misses: 1, ..Default::default() }
        );
        let second = svc.query(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(svc.stats().cache_hits, 1);
        // Permuted and duplicated seed lists hit the same canonical entry.
        let third = svc.query(&Query::Spread { seeds: vec![2, 3, 1, 1] }).unwrap();
        assert_eq!(first, third);
        assert_eq!(
            svc.stats(),
            ServiceStats { queries: 3, cache_hits: 2, cache_misses: 1, ..Default::default() }
        );
    }

    #[test]
    fn stats_track_queries_and_model_version() {
        let svc = service(16);
        assert_eq!(svc.model_version(), 0);
        svc.query(&Query::Spread { seeds: vec![0] }).unwrap();
        // Rejected queries still count as received.
        let n = svc.snapshot().num_users() as u32;
        assert!(svc.query(&Query::Spread { seeds: vec![n] }).is_err());
        assert_eq!(svc.stats().queries, 2);
        assert_eq!(svc.stats().cache_misses, 1);

        let ds = cdim_datagen::presets::tiny().generate();
        let store = scan(&ds.graph, &ds.log, &CreditPolicy::Uniform, 0.0).unwrap();
        svc.publish(ModelSnapshot::from_store(store));
        assert_eq!(svc.model_version(), 1);
        assert_eq!(svc.stats().model_version, 1);
        assert_eq!(svc.stats().snapshots_published, 1);
    }

    #[test]
    fn zero_capacity_cache_still_answers() {
        let svc = service(0);
        let q = Query::Spread { seeds: vec![0] };
        let a = svc.query(&q).unwrap();
        let b = svc.query(&q).unwrap();
        assert_eq!(a, b);
        assert_eq!(svc.stats().cache_hits, 0);
        assert_eq!(svc.stats().cache_misses, 2);
    }

    #[test]
    fn rejects_out_of_range_and_duplicate_candidate() {
        let svc = service(4);
        let n = svc.snapshot().num_users() as u32;
        assert_eq!(
            svc.query(&Query::Spread { seeds: vec![n] }),
            Err(QueryError::UserOutOfRange { user: n, num_users: n as usize })
        );
        assert_eq!(
            svc.query(&Query::MarginalGain { seeds: vec![1, 2], candidate: 2 }),
            Err(QueryError::CandidateInSeedSet(2))
        );
    }

    #[test]
    fn publish_swaps_snapshot_and_clears_cache() {
        let svc = service(16);
        let q = Query::TopKSeeds { budget: 2 };
        let before = svc.query(&q).unwrap();
        svc.query(&q).unwrap();
        assert_eq!(svc.stats().cache_hits, 1);

        // Retrain on a different dataset and hot-swap.
        let ds = cdim_datagen::presets::tiny().generate();
        let store = scan(&ds.graph, &ds.log, &CreditPolicy::Uniform, 0.0).unwrap();
        svc.publish(ModelSnapshot::from_store(store));
        assert_eq!(svc.stats().snapshots_published, 1);

        // The cache was invalidated: the next query recomputes.
        let misses_before = svc.stats().cache_misses;
        let after = svc.query(&q).unwrap();
        assert_eq!(svc.stats().cache_misses, misses_before + 1);
        // Same dataset, different policy — answers may differ, but both are
        // well-formed 2-seed selections.
        let (Answer::TopKSeeds { seeds: a, .. }, Answer::TopKSeeds { seeds: b, .. }) =
            (before, after)
        else {
            unreachable!()
        };
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn retract_delta_hot_swaps_to_the_window_model() {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::Uniform;
        let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
        let svc = InfluenceService::new(ModelSnapshot::from_store(store), 16);
        let q = Query::TopKSeeds { budget: 2 };
        svc.query(&q).unwrap();
        svc.query(&q).unwrap();
        assert_eq!(svc.stats().cache_hits, 1);

        // Expire the first third of the log through the service.
        let expire = ds.log.num_actions() / 3;
        let (expired, window) = ds.log.split_off_prefix(expire);
        svc.retract_delta(&ds.graph, &expired, &policy, cdim_util::Parallelism::fixed(2)).unwrap();
        assert_eq!(svc.model_version(), 1);

        // The served model IS the window-only model, byte for byte…
        let fresh = scan(&ds.graph, &window, &policy, 0.001).unwrap();
        assert_eq!(svc.snapshot().to_bytes(), ModelSnapshot::from_store(fresh).to_bytes());
        // …and the cache was invalidated with the swap.
        let misses_before = svc.stats().cache_misses;
        svc.query(&q).unwrap();
        assert_eq!(svc.stats().cache_misses, misses_before + 1);

        // A non-prefix batch is refused and publishes nothing.
        let stale = ds.log.delta_range(1, 2);
        assert!(svc
            .retract_delta(&ds.graph, &stale, &policy, cdim_util::Parallelism::auto())
            .is_err());
        assert_eq!(svc.model_version(), 1);
    }

    #[test]
    fn stats_and_registry_agree_on_one_source_of_truth() {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
        let registry = std::sync::Arc::new(cdim_obs::MetricsRegistry::new());
        let svc = InfluenceService::with_registry(
            ModelSnapshot::from_store(store),
            16,
            std::sync::Arc::clone(&registry),
        );

        let q = Query::Spread { seeds: vec![0, 1] };
        svc.query(&q).unwrap();
        svc.query(&q).unwrap();
        let stats = svc.stats();
        // ServiceStats is a read of the registry, not a parallel count.
        assert_eq!(registry.counter("cdim_serve_queries_total").get(), stats.queries);
        assert_eq!(registry.counter("cdim_serve_cache_hits_total").get(), stats.cache_hits);
        assert_eq!(registry.counter("cdim_serve_cache_misses_total").get(), stats.cache_misses);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);

        // Latency histograms saw every query; the in-flight gauge is back
        // to zero once the queries returned.
        assert_eq!(registry.histogram("cdim_serve_query_seconds").count(), 2);
        assert_eq!(registry.gauge("cdim_serve_inflight_queries").get(), 0.0);

        // A publish lands in both the counter and the swap histogram.
        let store = scan(&ds.graph, &ds.log, &CreditPolicy::Uniform, 0.0).unwrap();
        svc.publish(ModelSnapshot::from_store(store));
        assert_eq!(registry.counter("cdim_serve_publishes_total").get(), 1);
        assert_eq!(registry.histogram("cdim_serve_swap_seconds").count(), 1);
    }

    #[test]
    fn batch_matches_sequential_queries_and_counts_every_element() {
        let mixed = vec![
            Query::TopKSeeds { budget: 3 },
            Query::Spread { seeds: vec![0, 1] },
            Query::Spread { seeds: vec![1, 0, 0] }, // duplicate (canonical)
            Query::MarginalGain { seeds: vec![0], candidate: 2 },
            Query::Spread { seeds: vec![u32::MAX] }, // rejected
            Query::TopKSeeds { budget: 3 },          // duplicate
        ];

        let sequential = service(64);
        let expected: Vec<_> = mixed.iter().map(|q| sequential.query(q)).collect();

        let batched = service(64);
        let got = batched.query_batch(&mixed);
        assert_eq!(got, expected);

        // Per-query accounting identical to the sequential path: every
        // element counted, every element measured, hit/miss partition
        // exact (1 canonical-duplicate hit + 1 batch-duplicate hit).
        let stats = batched.stats();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.cache_hits + stats.cache_misses, 5, "rejects are neither hit nor miss");
        assert_eq!(stats.cache_hits, 2);
        let registry = batched.metrics_registry();
        assert_eq!(registry.histogram("cdim_serve_query_seconds").count(), 6);
        assert_eq!(registry.gauge("cdim_serve_inflight_queries").get(), 0.0);

        // The batch populated the cache: a rerun is all hits.
        let again = batched.query_batch(&mixed);
        assert_eq!(again, expected);
        assert_eq!(batched.stats().cache_misses, stats.cache_misses);
    }

    #[test]
    fn empty_batch_is_free() {
        let svc = service(4);
        assert!(svc.query_batch(&[]).is_empty());
        assert_eq!(svc.stats().queries, 0);
    }

    #[test]
    fn batch_sees_one_consistent_snapshot_across_a_publish() {
        // A publish between query_batch calls invalidates the cache; the
        // batch that straddled the old epoch must not poison it.
        let svc = std::sync::Arc::new(service(64));
        let q = vec![Query::Spread { seeds: vec![0] }, Query::Spread { seeds: vec![1] }];
        svc.query_batch(&q);
        let ds = cdim_datagen::presets::tiny().generate();
        let store = scan(&ds.graph, &ds.log, &CreditPolicy::Uniform, 0.0).unwrap();
        svc.publish(ModelSnapshot::from_store(store));
        let misses_before = svc.stats().cache_misses;
        svc.query_batch(&q);
        assert_eq!(svc.stats().cache_misses, misses_before + 2, "publish cleared the cache");
    }

    #[test]
    fn concurrent_queries_agree_with_serial_answers() {
        let svc = std::sync::Arc::new(service(64));
        let serial: Vec<Answer> = (0..6u32)
            .map(|u| svc.query(&Query::Spread { seeds: vec![u % 3, u] }).unwrap())
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let svc = std::sync::Arc::clone(&svc);
                std::thread::spawn(move || {
                    (0..6u32)
                        .map(|u| svc.query(&Query::Spread { seeds: vec![u % 3, u] }).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), serial);
        }
    }
}
