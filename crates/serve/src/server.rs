//! The TCP frontend.
//!
//! [`spawn`] binds a listener (port 0 gives an ephemeral port, reported
//! via [`ServerHandle::addr`]) and serves frames on the readiness-driven
//! reactor (see [`crate::reactor`]): one event-loop thread multiplexes
//! every connection, pipelined requests are answered in order, and
//! queries decoded in the same tick are batched through one snapshot
//! acquisition. [`spawn_with`] exposes the [`ServerConfig`] knobs
//! (connection cap, idle timeout, backpressure bounds, worker count).
//!
//! [`threaded::spawn_threaded`] keeps the PR-2 thread-per-connection
//! architecture alive as the A/B baseline for `bench_serve` — with its
//! connection-handling bugs fixed (accept backoff, mid-frame timeout
//! semantics, connection cap) so the comparison isolates the
//! architecture, not the bugs.

pub use crate::reactor::{ServerConfig, ServerHandle};
use crate::service::InfluenceService;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

/// How long a connection may sit idle before the server closes it — the
/// default for [`ServerConfig::idle_timeout`].
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Binds `addr` and serves `service` on the reactor with default
/// configuration.
pub fn spawn(
    service: Arc<InfluenceService>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    spawn_with(service, addr, ServerConfig::default())
}

/// Binds `addr` and serves `service` on the reactor with explicit
/// configuration.
pub fn spawn_with(
    service: Arc<InfluenceService>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    crate::reactor::spawn_reactor(service, addr, config)
}

/// The legacy thread-per-connection server, kept as a measured baseline.
pub mod threaded {
    use super::{InfluenceService, ServerConfig, IDLE_TIMEOUT};
    use crate::protocol::{
        decode_request, encode_response, write_frame, FrameDecoder, ProtocolError, Request,
        Response,
    };
    use crate::reactor::{accept_backoff, accept_error_is_transient, inline_response};
    use crate::service::Query;
    use std::io::Read;
    use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    /// A running thread-per-connection server. Shutdown is deterministic:
    /// the accept loop polls a stop flag on a nonblocking listener (no
    /// wake-connect handshake to fail), and connection threads observe
    /// the same flag within their read-timeout slice.
    pub struct ThreadedServerHandle {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
    }

    impl ThreadedServerHandle {
        /// The bound address.
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }

        /// Stops accepting, wakes every connection thread via the stop
        /// flag, and joins the accept thread.
        pub fn shutdown(mut self) {
            self.stop_and_join();
        }

        fn stop_and_join(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(thread) = self.accept_thread.take() {
                let _ = thread.join();
            }
        }
    }

    impl Drop for ThreadedServerHandle {
        fn drop(&mut self) {
            if self.accept_thread.is_some() {
                self.stop_and_join();
            }
        }
    }

    /// How often blocking reads wake up to check the stop flag and the
    /// idle clock.
    const READ_SLICE: Duration = Duration::from_millis(100);

    /// Binds `addr` and serves `service` with one thread per connection.
    /// Honors `config.max_connections` and `config.idle_timeout`; the
    /// reactor-only knobs (pipeline, outbound cap, workers) are ignored —
    /// a blocking connection thread never buffers more than one response.
    pub fn spawn_threaded(
        service: Arc<InfluenceService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<ThreadedServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("cdim-serve-accept".into())
            .spawn(move || accept_loop(&listener, &service, &stop_flag, &config))?;
        Ok(ThreadedServerHandle { addr, stop, accept_thread: Some(accept_thread) })
    }

    fn accept_loop(
        listener: &TcpListener,
        service: &Arc<InfluenceService>,
        stop: &Arc<AtomicBool>,
        config: &ServerConfig,
    ) {
        let registry = service.metrics_registry();
        let accept_errors = registry.counter("cdim_serve_accept_errors_total");
        let rejected = registry.counter("cdim_serve_conns_rejected_total");
        let active = Arc::new(AtomicUsize::new(0));
        let mut consecutive_errors = 0u32;
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    consecutive_errors = 0;
                    if active.load(Ordering::SeqCst) >= config.max_connections {
                        rejected.inc();
                        continue; // dropping the stream closes it
                    }
                    let _ = stream.set_nonblocking(false);
                    let service = Arc::clone(service);
                    let stop = Arc::clone(stop);
                    let active_in_thread = Arc::clone(&active);
                    let idle_timeout = config.idle_timeout;
                    active.fetch_add(1, Ordering::SeqCst);
                    let spawned = std::thread::Builder::new().name("cdim-serve-conn".into()).spawn(
                        move || {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(Some(READ_SLICE.min(idle_timeout)));
                            serve_connection(stream, &service, &stop, idle_timeout);
                            active_in_thread.fetch_sub(1, Ordering::SeqCst);
                        },
                    );
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Nonblocking accept: sleep a slice, re-check stop.
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if accept_error_is_transient(e.kind()) => {
                    accept_errors.inc();
                }
                Err(_) => {
                    // Resource exhaustion (EMFILE & friends): back off
                    // instead of spinning a core — the PR-2 bug was a bare
                    // `continue` here.
                    accept_errors.inc();
                    std::thread::sleep(accept_backoff(consecutive_errors));
                    consecutive_errors = consecutive_errors.saturating_add(1);
                }
            }
        }
    }

    /// Runs the request/response loop for one connection. Reads are
    /// incremental through a [`FrameDecoder`], so a timeout can tell a
    /// slow-but-alive peer (bytes buffered mid-frame) from an idle one
    /// (nothing buffered): only the latter closes silently. Any received
    /// byte resets the idle clock — the PR-2 server dropped half-delivered
    /// requests from slow writers.
    fn serve_connection(
        mut stream: TcpStream,
        service: &InfluenceService,
        stop: &AtomicBool,
        idle_timeout: Duration,
    ) {
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 16 * 1024];
        let mut last_byte = Instant::now();
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match stream.read(&mut buf) {
                Ok(0) => return, // clean disconnect
                Ok(n) => {
                    last_byte = Instant::now();
                    decoder.extend(&buf[..n]);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if last_byte.elapsed() < idle_timeout {
                        continue; // just a slice expiry, not idleness
                    }
                    if decoder.has_partial() {
                        // Mid-frame stall: tell the peer before closing.
                        let response = Response::Error(format!(
                            "request timed out mid-frame after {idle_timeout:?} without a byte"
                        ));
                        let _ = write_frame(&mut stream, &encode_response(&response));
                    }
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
            loop {
                let payload = match decoder.next_frame() {
                    Ok(Some(payload)) => payload,
                    Ok(None) => break,
                    Err(e) => {
                        let response = Response::Error(format!("protocol error: {e}"));
                        let _ = write_frame(&mut stream, &encode_response(&response));
                        return;
                    }
                };
                let response = match decode_request(&payload) {
                    Ok(request) => handle(&request, service),
                    Err(e @ (ProtocolError::UnknownOpcode(_) | ProtocolError::Malformed(_))) => {
                        // The stream is still framed correctly: answer and
                        // go on.
                        let response = Response::Error(format!("bad request: {e}"));
                        if write_frame(&mut stream, &encode_response(&response)).is_err() {
                            return;
                        }
                        continue;
                    }
                    Err(e) => {
                        let response = Response::Error(format!("bad request: {e}"));
                        let _ = write_frame(&mut stream, &encode_response(&response));
                        return;
                    }
                };
                if write_frame(&mut stream, &encode_response(&response)).is_err() {
                    return;
                }
            }
        }
    }

    /// Maps a wire request onto the query engine (sequentially — the
    /// reactor's batched path is [`InfluenceService::query_batch`]).
    fn handle(request: &Request, service: &InfluenceService) -> Response {
        let query = match request {
            Request::TopKSeeds { budget } => Query::TopKSeeds { budget: *budget },
            Request::Spread { seeds } => Query::Spread { seeds: seeds.clone() },
            Request::MarginalGain { seeds, candidate } => {
                Query::MarginalGain { seeds: seeds.clone(), candidate: *candidate }
            }
            Request::Info | Request::Stats | Request::Metrics | Request::TraceDump => {
                return inline_response(request, service);
            }
        };
        match service.query(&query) {
            Ok(crate::service::Answer::TopKSeeds { seeds, gains }) => {
                Response::TopKSeeds { seeds, gains }
            }
            Ok(crate::service::Answer::Spread(sigma)) => Response::Spread(sigma),
            Ok(crate::service::Answer::MarginalGain(gain)) => Response::MarginalGain(gain),
            Err(e) => Response::Error(e.to_string()),
        }
    }

    /// Canonical threaded-baseline config: the reactor defaults with the
    /// standard [`IDLE_TIMEOUT`].
    pub fn baseline_config() -> ServerConfig {
        ServerConfig { idle_timeout: IDLE_TIMEOUT, ..ServerConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::QueryClient;
    use crate::protocol::{encode_response, read_frame, write_frame, Response};
    use crate::snapshot::ModelSnapshot;
    use cdim_core::{scan, CreditPolicy};
    use std::net::TcpStream;

    fn test_service() -> Arc<InfluenceService> {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
        Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), 32))
    }

    #[test]
    fn serves_all_query_kinds_over_tcp() {
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        let (seeds, gains) = client.top_k(3).unwrap();
        assert_eq!(seeds.len(), 3);
        assert_eq!(gains.len(), 3);

        let sigma = client.spread(&seeds).unwrap();
        // Canonical-order telescoping vs CELF-order telescoping: equal up
        // to the λ-truncation error (see service::tests for the exact
        // canonical-order comparison).
        assert!((sigma - gains.iter().sum::<f64>()).abs() < 1e-3 * sigma.abs());

        let info = client.info().unwrap();
        assert_eq!(info.num_users as usize, service.snapshot().num_users());

        // Query-level errors keep the connection usable.
        let err = client.spread(&[u32::MAX]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(client.info().is_ok());

        server.shutdown();
    }

    #[test]
    fn threaded_baseline_serves_the_same_queries() {
        let service = test_service();
        let server =
            threaded::spawn_threaded(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
                .unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        let (seeds, gains) = client.top_k(3).unwrap();
        assert_eq!(seeds.len(), 3);
        assert_eq!(gains.len(), 3);
        let info = client.info().unwrap();
        assert_eq!(info.num_users as usize, service.snapshot().num_users());
        let err = client.spread(&[u32::MAX]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(client.info().is_ok());

        server.shutdown();
    }

    #[test]
    fn stats_op_reports_live_counters() {
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        let before = client.stats().unwrap();
        assert_eq!(before.queries, 0);
        assert_eq!(before.model_version, 0);

        client.spread(&[0]).unwrap();
        client.spread(&[0]).unwrap();
        let after = client.stats().unwrap();
        assert_eq!(after.queries, 2);
        assert_eq!(after.cache_hits, 1);
        assert_eq!(after.cache_misses, 1);
        assert_eq!(after.publishes, 0);

        // A publish bumps the served model version visibly.
        service.publish((*service.snapshot()).clone());
        let bumped = client.stats().unwrap();
        assert_eq!(bumped.publishes, 1);
        assert_eq!(bumped.model_version, 1);

        server.shutdown();
    }

    #[test]
    fn metrics_op_dumps_the_service_registry() {
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        client.spread(&[0]).unwrap();
        client.spread(&[0]).unwrap();
        let dump = client.metrics().unwrap();
        let counter = |name: &str| {
            dump.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter("cdim_serve_queries_total"), 2);
        assert_eq!(counter("cdim_serve_cache_hits_total"), 1);
        assert_eq!(counter("cdim_serve_cache_misses_total"), 1);
        let (_, query_hist) = dump
            .histograms
            .iter()
            .find(|(n, _)| n == "cdim_serve_query_seconds")
            .expect("missing query histogram");
        assert_eq!(query_hist.count, 2);
        assert!(query_hist.p50 <= query_hist.p99 && query_hist.p99 <= query_hist.max);

        server.shutdown();
    }

    #[test]
    fn trace_op_returns_nested_request_spans() {
        // The global recorder samples 1-in-8 by default; this test needs
        // its specific request traced.
        cdim_obs::Tracer::global().set_sampling(1);
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        client.spread(&[0]).unwrap();
        let dump = client.trace_dump().unwrap();

        // The global recorder is shared across the whole test process, so
        // look for *one trace* that carries the full request pipeline
        // (the spread above is guaranteed to have produced one).
        let full_trace = dump
            .spans
            .iter()
            .filter(|s| s.stage == "serve.request")
            .map(|root| {
                let spans: Vec<_> =
                    dump.spans.iter().filter(|s| s.trace_id == root.trace_id).collect();
                (root, spans)
            })
            .find(|(_, spans)| {
                ["serve.decode", "serve.batch", "serve.eval", "serve.write", "service.compute"]
                    .iter()
                    .all(|want| spans.iter().any(|s| s.stage == *want))
            });
        let (root, spans) = full_trace.expect("one trace holds the whole request pipeline");

        // Parent/child wiring: every span of the trace sits under the
        // root, and the service's spans nest under the worker's eval.
        assert_eq!(root.parent_id, 0);
        let eval = spans.iter().find(|s| s.stage == "serve.eval").unwrap();
        assert_eq!(eval.parent_id, root.span_id);
        let compute = spans.iter().find(|s| s.stage == "service.compute").unwrap();
        assert_eq!(compute.parent_id, eval.span_id);
        for span in &spans {
            assert!(root.start_ns <= span.start_ns, "{} starts before its root", span.stage);
            assert!(span.end_ns <= root.end_ns, "{} ends after its root", span.stage);
        }

        server.shutdown();
    }

    #[test]
    fn garbage_frame_gets_an_error_response() {
        let service = test_service();
        let server = spawn(service, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &[42, 0, 0]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        match crate::protocol::decode_response(&payload).unwrap() {
            Response::Error(message) => assert!(message.contains("opcode"), "{message}"),
            other => panic!("expected error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_and_rejects_new_connections() {
        let service = test_service();
        let server = spawn(service, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: a fresh connection either fails outright or
        // is closed without an answer.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                write_frame(&mut stream, &encode_response(&Response::Spread(0.0))).unwrap();
                assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
            }
        }
    }

    #[test]
    fn threaded_shutdown_is_deterministic_without_a_wake_connection() {
        // The PR-2 server woke its accept loop by connecting to itself and
        // detached (leaking the thread + fd) when that failed. The fixed
        // baseline polls a stop flag, so shutdown needs no connectable
        // address and always joins.
        let service = test_service();
        let server =
            threaded::spawn_threaded(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.addr();
        server.shutdown(); // must not hang
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                write_frame(&mut stream, &encode_response(&Response::Spread(0.0))).unwrap();
                assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
            }
        }
    }
}
