//! The TCP frontend: a thread-per-connection accept loop.
//!
//! [`spawn`] binds a listener (port 0 gives an ephemeral port, reported
//! via [`ServerHandle::addr`]) and serves frames until the handle is shut
//! down or dropped. Each connection gets its own thread and processes
//! requests sequentially; concurrency comes from concurrent connections,
//! which all share the one [`InfluenceService`] (immutable snapshot +
//! mutex-guarded cache). Malformed frames produce a `Response::Error` and
//! close the connection; query-level errors produce a `Response::Error`
//! and keep it open.

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, ProtocolError, Request, Response,
    ServiceInfo, StatsReply,
};
use crate::service::{Answer, InfluenceService, Query};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection may sit idle (or mid-frame) before its thread
/// gives up and closes it. With thread-per-connection serving, this is
/// what keeps hung or silent peers from pinning threads forever.
pub const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// A running server. Dropping the handle shuts the accept loop down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread. Already-
    /// open connections finish their in-flight request and close when the
    /// client hangs up.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection. A
        // wildcard bind address is not connectable, so aim at loopback on
        // the same port in that case.
        let mut wake_addr = self.addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST));
        }
        let woke = TcpStream::connect(wake_addr).is_ok();
        if let Some(handle) = self.accept_thread.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake-up connect failed, joining could block forever
            // (accept() only re-checks the flag after an incoming event).
            // Detach instead: the thread exits at the next connection.
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// Binds `addr` and serves `service` on a background accept thread.
pub fn spawn(
    service: Arc<InfluenceService>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        accept_loop(&listener, &service, &stop_flag);
    });
    Ok(ServerHandle { addr, stop, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: &TcpListener, service: &Arc<InfluenceService>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        std::thread::spawn(move || {
            let _ = stream.set_nodelay(true);
            // A hung peer must not pin this thread forever: reads that
            // stall past the idle timeout close the connection.
            let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
            serve_connection(stream, &service);
        });
    }
}

/// Runs the request/response loop for one connection until the peer hangs
/// up or sends an undecodable frame.
fn serve_connection(stream: TcpStream, service: &InfluenceService) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean disconnect
            Err(ProtocolError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return; // idle timeout: drop the connection silently
            }
            Err(e) => {
                let response = Response::Error(format!("protocol error: {e}"));
                let _ = write_frame(&mut writer, &encode_response(&response));
                return;
            }
        };
        let response = match decode_request(&payload) {
            Ok(request) => handle(&request, service),
            Err(e @ (ProtocolError::UnknownOpcode(_) | ProtocolError::Malformed(_))) => {
                // The stream is still framed correctly: answer and go on.
                let _ = write_frame(
                    &mut writer,
                    &encode_response(&Response::Error(format!("bad request: {e}"))),
                );
                continue;
            }
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &encode_response(&Response::Error(format!("bad request: {e}"))),
                );
                return;
            }
        };
        if write_frame(&mut writer, &encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Maps a wire request onto the query engine.
fn handle(request: &Request, service: &InfluenceService) -> Response {
    let query = match request {
        Request::TopKSeeds { budget } => Query::TopKSeeds { budget: *budget },
        Request::Spread { seeds } => Query::Spread { seeds: seeds.clone() },
        Request::MarginalGain { seeds, candidate } => {
            Query::MarginalGain { seeds: seeds.clone(), candidate: *candidate }
        }
        Request::Info => {
            let snapshot = service.snapshot();
            let stats = service.stats();
            return Response::Info(ServiceInfo {
                num_users: snapshot.num_users() as u32,
                num_actions: snapshot.num_actions() as u32,
                committed_seeds: snapshot.committed_seeds() as u32,
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
            });
        }
        Request::Stats => {
            let stats = service.stats();
            return Response::Stats(StatsReply {
                queries: stats.queries,
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
                publishes: stats.snapshots_published,
                model_version: stats.model_version,
            });
        }
        Request::Metrics => {
            return Response::Metrics(service.metrics_registry().dump());
        }
    };
    match service.query(&query) {
        Ok(Answer::TopKSeeds { seeds, gains }) => Response::TopKSeeds { seeds, gains },
        Ok(Answer::Spread(sigma)) => Response::Spread(sigma),
        Ok(Answer::MarginalGain(gain)) => Response::MarginalGain(gain),
        Err(e) => Response::Error(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::QueryClient;
    use crate::snapshot::ModelSnapshot;
    use cdim_core::{scan, CreditPolicy};

    fn test_service() -> Arc<InfluenceService> {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        let store = scan(&ds.graph, &ds.log, &policy, 0.001).unwrap();
        Arc::new(InfluenceService::new(ModelSnapshot::from_store(store), 32))
    }

    #[test]
    fn serves_all_query_kinds_over_tcp() {
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        let (seeds, gains) = client.top_k(3).unwrap();
        assert_eq!(seeds.len(), 3);
        assert_eq!(gains.len(), 3);

        let sigma = client.spread(&seeds).unwrap();
        // Canonical-order telescoping vs CELF-order telescoping: equal up
        // to the λ-truncation error (see service::tests for the exact
        // canonical-order comparison).
        assert!((sigma - gains.iter().sum::<f64>()).abs() < 1e-3 * sigma.abs());

        let info = client.info().unwrap();
        assert_eq!(info.num_users as usize, service.snapshot().num_users());

        // Query-level errors keep the connection usable.
        let err = client.spread(&[u32::MAX]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(client.info().is_ok());

        server.shutdown();
    }

    #[test]
    fn stats_op_reports_live_counters() {
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        let before = client.stats().unwrap();
        assert_eq!(before.queries, 0);
        assert_eq!(before.model_version, 0);

        client.spread(&[0]).unwrap();
        client.spread(&[0]).unwrap();
        let after = client.stats().unwrap();
        assert_eq!(after.queries, 2);
        assert_eq!(after.cache_hits, 1);
        assert_eq!(after.cache_misses, 1);
        assert_eq!(after.publishes, 0);

        // A publish bumps the served model version visibly.
        service.publish((*service.snapshot()).clone());
        let bumped = client.stats().unwrap();
        assert_eq!(bumped.publishes, 1);
        assert_eq!(bumped.model_version, 1);

        server.shutdown();
    }

    #[test]
    fn metrics_op_dumps_the_service_registry() {
        let service = test_service();
        let server = spawn(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let mut client = QueryClient::connect(server.addr()).unwrap();

        client.spread(&[0]).unwrap();
        client.spread(&[0]).unwrap();
        let dump = client.metrics().unwrap();
        let counter = |name: &str| {
            dump.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter("cdim_serve_queries_total"), 2);
        assert_eq!(counter("cdim_serve_cache_hits_total"), 1);
        assert_eq!(counter("cdim_serve_cache_misses_total"), 1);
        let (_, query_hist) = dump
            .histograms
            .iter()
            .find(|(n, _)| n == "cdim_serve_query_seconds")
            .expect("missing query histogram");
        assert_eq!(query_hist.count, 2);
        assert!(query_hist.p50 <= query_hist.p99 && query_hist.p99 <= query_hist.max);

        server.shutdown();
    }

    #[test]
    fn garbage_frame_gets_an_error_response() {
        let service = test_service();
        let server = spawn(service, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &[42, 0, 0]).unwrap();
        let payload = read_frame(&mut stream).unwrap().unwrap();
        match crate::protocol::decode_response(&payload).unwrap() {
            Response::Error(message) => assert!(message.contains("opcode"), "{message}"),
            other => panic!("expected error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_and_rejects_new_connections() {
        let service = test_service();
        let server = spawn(service, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: a fresh connection either fails outright or
        // is closed without an answer.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                write_frame(&mut stream, &encode_response(&Response::Spread(0.0))).unwrap();
                assert!(matches!(read_frame(&mut stream), Ok(None) | Err(_)));
            }
        }
    }
}
