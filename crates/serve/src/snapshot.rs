//! The versioned binary snapshot format.
//!
//! A snapshot freezes everything seed selection and spread prediction need
//! after training — the λ-truncated credit store plus the selector's SC
//! map and chosen seeds — so a serving process can answer queries without
//! the action log, the graph, or a rescan (the paper's core claim: the
//! credit store *is* the model).
//!
//! ## Layout (version 1)
//!
//! All integers are little-endian; floats are IEEE-754 `f64` bit patterns.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CDIMSNAP"
//! 8       4     format version (u32) = 1
//! 12      …     six sections, in fixed order, each:
//!                 u32 tag · u64 payload length · payload
//! end-4   4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! | tag | section      | payload |
//! |-----|--------------|---------|
//! | 1   | META         | `lambda f64 · num_users u32 · num_actions u32` |
//! | 2   | USER_ACTIONS | per user: `count u32 · count × u32 action id` |
//! | 3   | INV_AU       | `num_users × f64` |
//! | 4   | CREDITS      | per action: `count u32 · count × (v u32 · u u32 · Γ f64)` |
//! | 5   | SC           | `count u32 · count × (a u32 · u u32 · Γ f64)` |
//! | 6   | SEEDS        | `count u32 · count × u32` |
//!
//! Credit and SC entries are written in sorted key order, so the encoding
//! of a model state is *canonical*: `save → load → save` is byte-identical.
//! Decoding validates the checksum, every index bound, and the sort order,
//! and returns a typed [`SnapshotError`] instead of panicking on garbage.
//!
//! ## Layout (version 2 — zero-copy)
//!
//! Version 2 stores the [`cdim_core::compact`] CSR arena *verbatim*, so
//! loading is: validate the 96-byte header, check the CRC, and
//! reinterpret slices straight out of the (ideally `mmap`ed) buffer — no
//! per-entry decode, no per-entry allocation.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "CDIMSNAP"
//! 8       4     format version (u32) = 2
//! 12      4     reserved (u32) = 0
//! 16      8     lambda (f64)
//! 24      64    8 × u64 counts: num_users · num_actions · ua_len ·
//!               out_rows · inc_rows · entries · sc_len · seeds_len
//! 88      8     arena length in bytes (u64, multiple of 8)
//! 96      …     the compact arena, byte-for-byte (see
//!               [`cdim_core::compact`] for its section layout; every
//!               section is 8-byte-aligned relative to offset 96, which
//!               is itself 8-aligned, so a mapped file needs no copies)
//! end-4   4     CRC-32C (Castagnoli) over every preceding byte
//! ```
//!
//! v2 deliberately uses CRC-32C rather than v1's IEEE CRC-32: the
//! checksum pass is the bulk of a zero-copy load, and CRC-32C rides the
//! x86-64 `crc32` instruction at many GB/s where the table-driven IEEE
//! polynomial cannot.
//!
//! All integers and floats are little-endian; v2 files are therefore only
//! zero-copy-loadable on little-endian hosts (big-endian hosts get a
//! clean [`SnapshotError::Malformed`], and can still read v1 files).
//! Structural validation of the arena (offset monotonicity, id bounds,
//! sorted runs, finite credits) runs once at load via
//! [`cdim_core::CompactSelector::from_arena`]; the CRC covers bit-level
//! integrity. Both versions load through [`ModelSnapshot::load`], which
//! dispatches on the version word.

use crate::codec::{push_f64, push_u32, push_u64};
use cdim_core::{
    CdSelector, CompactCounts, CompactSelector, CreditStore, CreditStoreDump, SelectorDump,
};
use cdim_util::checksum::{crc32, crc32_parallel, crc32c};
use cdim_util::{AlignedBuf, Parallelism};
use std::path::Path;
use std::sync::Arc;

/// File magic, followed by the version word.
pub const MAGIC: [u8; 8] = *b"CDIMSNAP";

/// Current (newest) format version: the zero-copy CSR-arena layout.
pub const FORMAT_VERSION: u32 = 2;

/// The original sectioned per-entry format, still written by default for
/// compatibility and fully supported on load.
pub const FORMAT_V1: u32 = 1;

/// Byte length of the fixed v2 header (magic through arena length).
const HEADER_V2: usize = 96;

const TAG_META: u32 = 1;
const TAG_USER_ACTIONS: u32 = 2;
const TAG_INV_AU: u32 = 3;
const TAG_CREDITS: u32 = 4;
const TAG_SC: u32 = 5;
const TAG_SEEDS: u32 = 6;

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The CRC-32 trailer does not match the file contents.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the file body.
        computed: u32,
    },
    /// The file ended before a field could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Structurally invalid contents (bad section order, out-of-range ids,
    /// unsorted entries, …).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a cdim snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads \
                     {FORMAT_V1}..={FORMAT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#010x}, computed {computed:#010x}) — \
                 file is corrupt"
            ),
            SnapshotError::Truncated { needed, available } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {available} available")
            }
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Which on-disk encoding [`ModelSnapshot::save_as`] writes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The sectioned per-entry format (version 1) — the default, byte-
    /// canonical encoding every existing artifact and golden pins.
    #[default]
    V1,
    /// The zero-copy CSR-arena format (version 2) — loads by validate +
    /// reinterpret off an `mmap`, for instant serve start.
    V2,
}

/// The model state behind a snapshot: either the mutable hashmap-shaped
/// selector (v1 loads, fresh builds, the incremental path) or the
/// CSR-flat compact selector (v2 loads, frozen states).
#[derive(Clone, Debug)]
enum State {
    Mutable(CdSelector),
    Compact(CompactSelector),
}

/// An immutable, fully-trained model state: the unit the query service
/// holds behind an `Arc` and the unit the snapshot file round-trips.
///
/// Queries must go through the dispatching methods ([`top_k`],
/// [`telescoped_spread`], [`single_marginal_gain`], [`gain_over`], …),
/// which answer **bit-identically** whichever representation backs the
/// snapshot — the compact engine mirrors every accumulation order of the
/// canonically-restored mutable one.
///
/// [`top_k`]: Self::top_k
/// [`telescoped_spread`]: Self::telescoped_spread
/// [`single_marginal_gain`]: Self::single_marginal_gain
/// [`gain_over`]: Self::gain_over
#[derive(Clone, Debug)]
pub struct ModelSnapshot {
    state: State,
}

impl ModelSnapshot {
    /// Wraps a freshly scanned credit store (empty seed set).
    pub fn from_store(store: CreditStore) -> Self {
        ModelSnapshot { state: State::Mutable(CdSelector::new(store)) }
    }

    /// The full snapshot build path: trains the credit policy, runs the
    /// parallel credit scan under `config.parallelism`, and freezes the
    /// result (empty seed set).
    ///
    /// The snapshot bytes are independent of the thread count — the scan
    /// is bit-identical for every [`cdim_util::Parallelism`], and the
    /// encoding is canonical — so snapshots built on different machines
    /// with different core counts are comparable byte-for-byte.
    pub fn build(
        graph: &cdim_graph::DirectedGraph,
        log: &cdim_actionlog::ActionLog,
        config: cdim_core::CdModelConfig,
    ) -> Result<Self, cdim_core::ScanError> {
        let policy = config.build_policy(graph, log);
        let store = cdim_core::scan_with(graph, log, &policy, config.lambda, config.parallelism)?;
        Ok(Self::from_store(store))
    }

    /// Wraps an arbitrary selector state (e.g. mid-campaign, with seeds
    /// already committed).
    pub fn from_selector(selector: CdSelector) -> Self {
        ModelSnapshot { state: State::Mutable(selector) }
    }

    /// Wraps a compact (CSR-flat) selector — what a v2 load produces.
    pub fn from_compact(compact: CompactSelector) -> Self {
        ModelSnapshot { state: State::Compact(compact) }
    }

    /// Returns this state in compact form: freezes a mutable snapshot,
    /// clones (cheaply, via `Arc`) an already-compact one.
    pub fn freeze(&self) -> Self {
        match &self.state {
            State::Mutable(s) => Self::from_compact(CompactSelector::freeze(s)),
            State::Compact(_) => self.clone(),
        }
    }

    /// The mutable selector equivalent of this state (cloned from a
    /// mutable snapshot, thawed — canonically — from a compact one).
    fn to_selector(&self) -> CdSelector {
        match &self.state {
            State::Mutable(s) => s.clone(),
            State::Compact(c) => c.thaw(),
        }
    }

    /// The canonical dump of this state.
    fn dump_state(&self) -> SelectorDump {
        match &self.state {
            State::Mutable(s) => s.dump(),
            State::Compact(c) => c.to_dump(),
        }
    }

    /// Incremental rebuild: returns a new snapshot whose state is this
    /// one extended by an append-only action batch — committed seeds are
    /// replayed over the new actions, nothing already scanned is touched
    /// (see [`cdim_core::incremental`]).
    ///
    /// `policy` must be the policy the snapshot was originally trained
    /// with (snapshots persist credits, not policy parameters). Under
    /// that policy the returned snapshot's bytes are identical to a
    /// from-scratch [`build`](Self::build) over the combined log for a
    /// seedless snapshot, for every `parallelism`.
    pub fn extend(
        &self,
        graph: &cdim_graph::DirectedGraph,
        delta: &cdim_actionlog::ActionLogDelta,
        policy: &cdim_core::CreditPolicy,
        parallelism: cdim_util::Parallelism,
    ) -> Result<Self, cdim_core::ExtendError> {
        let mut selector = self.to_selector();
        selector.extend(graph, delta, policy, parallelism)?;
        Ok(ModelSnapshot::from_selector(selector))
    }

    /// Sliding-window rebuild: returns a new snapshot with an expired
    /// action prefix retracted — committed seeds are preserved, surviving
    /// actions renumber down (see [`cdim_core::incremental`]). `expired`
    /// must be the snapshot's first actions as a delta based at 0 (see
    /// `ActionLog::split_off_prefix`).
    ///
    /// `policy` must be the training policy, as with
    /// [`extend`](Self::extend). Under that policy the returned
    /// snapshot's bytes are identical to a from-scratch
    /// [`build`](Self::build) over just the surviving window for a
    /// seedless snapshot, for every `parallelism`.
    pub fn retract(
        &self,
        graph: &cdim_graph::DirectedGraph,
        expired: &cdim_actionlog::ActionLogDelta,
        policy: &cdim_core::CreditPolicy,
        parallelism: cdim_util::Parallelism,
    ) -> Result<Self, cdim_core::ExtendError> {
        let mut selector = self.to_selector();
        selector.retract(graph, expired, policy, parallelism)?;
        Ok(ModelSnapshot::from_selector(selector))
    }

    /// The frozen selector state.
    ///
    /// # Panics
    ///
    /// Panics on a compact (v2-loaded) snapshot, which has no mutable
    /// selector to borrow — use the dispatching query methods, or
    /// [`compact`](Self::compact) for the flat state. Every path that can
    /// hold a compact snapshot (the serving layers) uses those instead.
    pub fn selector(&self) -> &CdSelector {
        match &self.state {
            State::Mutable(s) => s,
            State::Compact(_) => panic!(
                "ModelSnapshot::selector() called on a compact snapshot — \
                 use the query methods (top_k, telescoped_spread, …) or compact()"
            ),
        }
    }

    /// The compact selector backing this snapshot, if it is compact.
    pub fn compact(&self) -> Option<&CompactSelector> {
        match &self.state {
            State::Mutable(_) => None,
            State::Compact(c) => Some(c),
        }
    }

    /// Whether this snapshot is backed by the CSR-flat compact arena.
    pub fn is_compact(&self) -> bool {
        matches!(self.state, State::Compact(_))
    }

    /// Users in the id space.
    pub fn num_users(&self) -> usize {
        match &self.state {
            State::Mutable(s) => s.store().num_users(),
            State::Compact(c) => c.num_users(),
        }
    }

    /// Actions the store was scanned over.
    pub fn num_actions(&self) -> usize {
        match &self.state {
            State::Mutable(s) => s.store().num_actions(),
            State::Compact(c) => c.num_actions(),
        }
    }

    /// Truncation threshold λ the model was trained with.
    pub fn lambda(&self) -> f64 {
        match &self.state {
            State::Mutable(s) => s.store().lambda(),
            State::Compact(c) => c.lambda(),
        }
    }

    /// Live credit entries in the model.
    pub fn total_entries(&self) -> usize {
        match &self.state {
            State::Mutable(s) => s.store().total_entries(),
            State::Compact(c) => c.total_entries(),
        }
    }

    /// Seeds already committed into the snapshot state.
    pub fn committed_seeds(&self) -> usize {
        match &self.state {
            State::Mutable(s) => s.seeds().len(),
            State::Compact(c) => c.seeds().len(),
        }
    }

    /// Resident bytes of the model state (the credit structures for a
    /// mutable snapshot, the arena — owned or mapped — for a compact one).
    pub fn resident_bytes(&self) -> usize {
        match &self.state {
            State::Mutable(s) => s.store().memory_bytes(),
            State::Compact(c) => c.memory_bytes(),
        }
    }

    /// CELF top-k continuing from the committed seeds (Algorithm 3).
    /// Bit-identical across representations of the same state.
    pub fn top_k(&self, k: usize) -> cdim_maxim::Selection {
        match &self.state {
            State::Mutable(s) => s.clone().select(k),
            State::Compact(c) => c.overlay().select(k),
        }
    }

    /// Theorem-3 marginal gain of `x` over the committed seed set — also
    /// σ_cd({x}) when no seeds are committed. A pure read (no clone of
    /// the model state beyond the compact overlay's credit array).
    pub fn single_marginal_gain(&self, x: u32) -> f64 {
        match &self.state {
            State::Mutable(s) => s.compute_mg(x),
            State::Compact(c) => c.overlay().compute_mg(x),
        }
    }

    /// σ_cd(S) via Theorem 3: walk `seeds` in the given order,
    /// accumulating each seed's marginal gain and applying the Lemma-2/3
    /// update (skipped after the last seed — nothing reads the state
    /// afterwards).
    pub fn telescoped_spread(&self, seeds: &[u32]) -> f64 {
        match &self.state {
            State::Mutable(s) => {
                let mut sel = s.clone();
                let mut total = 0.0;
                for (i, &s) in seeds.iter().enumerate() {
                    total += sel.compute_mg(s);
                    if i + 1 < seeds.len() {
                        sel.update(s);
                    }
                }
                total
            }
            State::Compact(c) => {
                let mut overlay = c.overlay();
                let mut total = 0.0;
                for (i, &s) in seeds.iter().enumerate() {
                    total += overlay.compute_mg(s);
                    if i + 1 < seeds.len() {
                        overlay.update(s);
                    }
                }
                total
            }
        }
    }

    /// Marginal gain of `candidate` after committing `seeds` (in the
    /// given order) on top of the snapshot's own committed seeds.
    pub fn gain_over(&self, seeds: &[u32], candidate: u32) -> f64 {
        match &self.state {
            State::Mutable(s) => {
                let mut sel = s.clone();
                for &x in seeds {
                    sel.update(x);
                }
                sel.compute_mg(candidate)
            }
            State::Compact(c) => {
                let mut overlay = c.overlay();
                for &x in seeds {
                    overlay.update(x);
                }
                overlay.compute_mg(candidate)
            }
        }
    }

    /// Serializes to the version-1 byte format (canonical encoding —
    /// identical bytes whichever representation backs the snapshot).
    pub fn to_bytes(&self) -> Vec<u8> {
        encode(&self.dump_state())
    }

    /// Serializes to the version-2 zero-copy byte format (freezing first
    /// if the snapshot is mutable).
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        match &self.state {
            State::Mutable(s) => encode_v2(&CompactSelector::freeze(s)),
            State::Compact(c) => encode_v2(c),
        }
    }

    /// Deserializes and validates a snapshot of either format version
    /// (dispatching on the version word after the magic).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        match peek_version(bytes)? {
            FORMAT_V1 => {
                let dump = decode(bytes)?;
                Ok(ModelSnapshot::from_selector(CdSelector::from_dump(&dump)))
            }
            FORMAT_VERSION => {
                // A borrowed byte slice has arbitrary alignment; copy it
                // into an aligned buffer. (The zero-copy path is `load`.)
                let buf = Arc::new(AlignedBuf::from_bytes(bytes));
                Ok(ModelSnapshot::from_compact(decode_v2(buf)?))
            }
            v => Err(SnapshotError::UnsupportedVersion(v)),
        }
    }

    /// Writes the snapshot to `path` in the default (v1) format, via a
    /// sibling temp file + rename, so a crash mid-write never leaves a
    /// half-written snapshot in place.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        self.save_as(path, SnapshotFormat::V1)
    }

    /// Writes the snapshot to `path` in the chosen format (temp file +
    /// rename, like [`save`](Self::save)).
    pub fn save_as(&self, path: &Path, format: SnapshotFormat) -> Result<(), SnapshotError> {
        let bytes = match format {
            SnapshotFormat::V1 => self.to_bytes(),
            SnapshotFormat::V2 => self.to_bytes_v2(),
        };
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and validates a snapshot from `path`, auto-detecting the
    /// format version. v2 files are `mmap`ed where the platform allows
    /// (falling back to a single read), so the load cost is the header
    /// check + CRC + structural validation — no per-entry decode; v1
    /// files decode through the original path. The temp-file + rename
    /// discipline of [`save_as`](Self::save_as) is what makes mapping
    /// safe: a snapshot file is never rewritten in place.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let buf = AlignedBuf::map_or_read_file(path)?;
        match peek_version(&buf)? {
            FORMAT_V1 => {
                let dump = decode(&buf)?;
                Ok(ModelSnapshot::from_selector(CdSelector::from_dump(&dump)))
            }
            FORMAT_VERSION => Ok(ModelSnapshot::from_compact(decode_v2(Arc::new(buf))?)),
            v => Err(SnapshotError::UnsupportedVersion(v)),
        }
    }
}

/// Reads the magic and version word without trusting anything else.
fn peek_version(bytes: &[u8]) -> Result<u32, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(SnapshotError::Truncated { needed: MAGIC.len() + 8, available: bytes.len() });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    Ok(u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap()))
}

// ---------------------------------------------------------------- encoding

/// Appends one `tag · length · payload` section built by `fill`.
fn section(out: &mut Vec<u8>, tag: u32, fill: impl FnOnce(&mut Vec<u8>)) {
    push_u32(out, tag);
    let len_at = out.len();
    push_u64(out, 0);
    let payload_start = out.len();
    fill(out);
    let len = (out.len() - payload_start) as u64;
    out[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

fn encode(dump: &SelectorDump) -> Vec<u8> {
    let store = &dump.store;
    let num_users = store.user_actions.len();
    let num_actions = store.credits.len();
    let mut out =
        Vec::with_capacity(64 + store.credits.iter().map(|c| 16 * c.len()).sum::<usize>());
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, FORMAT_V1);

    section(&mut out, TAG_META, |o| {
        push_f64(o, store.lambda);
        push_u32(o, num_users as u32);
        push_u32(o, num_actions as u32);
    });
    section(&mut out, TAG_USER_ACTIONS, |o| {
        for actions in &store.user_actions {
            push_u32(o, actions.len() as u32);
            for &a in actions {
                push_u32(o, a);
            }
        }
    });
    section(&mut out, TAG_INV_AU, |o| {
        for &x in &store.inv_au {
            push_f64(o, x);
        }
    });
    section(&mut out, TAG_CREDITS, |o| {
        for entries in &store.credits {
            push_u32(o, entries.len() as u32);
            for &(v, u, c) in entries {
                push_u32(o, v);
                push_u32(o, u);
                push_f64(o, c);
            }
        }
    });
    section(&mut out, TAG_SC, |o| {
        push_u32(o, dump.sc.len() as u32);
        for &(a, u, c) in &dump.sc {
            push_u32(o, a);
            push_u32(o, u);
            push_f64(o, c);
        }
    });
    section(&mut out, TAG_SEEDS, |o| {
        push_u32(o, dump.seeds.len() as u32);
        for &s in &dump.seeds {
            push_u32(o, s);
        }
    });

    let crc = crc32(&out);
    push_u32(&mut out, crc);
    out
}

/// Serializes a compact selector as a v2 file: fixed header, the arena
/// verbatim, CRC trailer. The arena begins at byte 96 (≡ 0 mod 8), so the
/// written file reloads with zero copies when mapped.
fn encode_v2(compact: &CompactSelector) -> Vec<u8> {
    let counts = compact.counts();
    let arena = compact.arena();
    let mut out = Vec::with_capacity(HEADER_V2 + arena.len() + 4);
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u32(&mut out, 0); // reserved
    push_f64(&mut out, compact.lambda());
    for n in [
        counts.num_users,
        counts.num_actions,
        counts.ua_len,
        counts.out_rows,
        counts.inc_rows,
        counts.entries,
        counts.sc_len,
        counts.seeds_len,
    ] {
        push_u64(&mut out, n as u64);
    }
    push_u64(&mut out, arena.len() as u64);
    debug_assert_eq!(out.len(), HEADER_V2);
    out.extend_from_slice(arena);
    let crc = crc32c(&out);
    push_u32(&mut out, crc);
    out
}

/// Validates a v2 buffer (magic and version already peeked) and wraps its
/// arena zero-copy. Counts are bounds-checked here — before any layout
/// arithmetic — so resealed-garbage headers fail with a typed error
/// instead of an overflow or a giant allocation (the arena is never
/// copied, so there is nothing to allocate in the first place).
fn decode_v2(buf: Arc<AlignedBuf>) -> Result<CompactSelector, SnapshotError> {
    #[cfg(not(target_endian = "little"))]
    {
        return Err(SnapshotError::Malformed(
            "v2 snapshots are little-endian and cannot be loaded on a big-endian host".to_string(),
        ));
    }
    #[cfg(target_endian = "little")]
    {
        let bytes: &[u8] = &buf;
        if bytes.len() < HEADER_V2 + 4 {
            return Err(SnapshotError::Truncated { needed: HEADER_V2 + 4, available: bytes.len() });
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let computed = crc32c(body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let reserved = u32_at(12);
        if reserved != 0 {
            return Err(SnapshotError::Malformed(format!(
                "reserved header word is {reserved}, expected 0"
            )));
        }
        let lambda = f64::from_le_bytes(bytes[16..24].try_into().unwrap());

        let mut raw = [0u64; 8];
        for (i, slot) in raw.iter_mut().enumerate() {
            *slot = u64_at(24 + 8 * i);
            // Ids and offsets are u32 throughout the arena; a count at or
            // past u32::MAX cannot be a valid file, and rejecting it here
            // keeps the layout arithmetic below overflow-free.
            if *slot >= u64::from(u32::MAX) {
                return Err(SnapshotError::Malformed(format!(
                    "header count #{i} = {slot} exceeds the u32 id space"
                )));
            }
        }
        let counts = CompactCounts {
            num_users: raw[0] as usize,
            num_actions: raw[1] as usize,
            ua_len: raw[2] as usize,
            out_rows: raw[3] as usize,
            inc_rows: raw[4] as usize,
            entries: raw[5] as usize,
            sc_len: raw[6] as usize,
            seeds_len: raw[7] as usize,
        };
        let arena_len = u64_at(88) as usize;
        if arena_len != counts.arena_len() {
            return Err(SnapshotError::Malformed(format!(
                "arena length {arena_len} does not match the header counts (expected {})",
                counts.arena_len()
            )));
        }
        let expected = HEADER_V2 + arena_len + 4;
        if bytes.len() < expected {
            return Err(SnapshotError::Truncated { needed: expected, available: bytes.len() });
        }
        if bytes.len() > expected {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the arena",
                bytes.len() - expected
            )));
        }

        CompactSelector::from_arena(buf, HEADER_V2, counts, lambda)
            .map_err(SnapshotError::Malformed)
    }
}

// ---------------------------------------------------------------- decoding

/// Bounds-checked cursor over the snapshot body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(SnapshotError::Truncated { needed: n, available });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads a `count` field that prefixes `count` items of at least
    /// `item_size` bytes, rejecting counts the remaining bytes cannot hold
    /// (so corrupt counts fail fast instead of attempting huge allocations).
    fn count(&mut self, item_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        let needed = n.saturating_mul(item_size);
        if needed > self.remaining() {
            return Err(SnapshotError::Truncated { needed, available: self.remaining() });
        }
        Ok(n)
    }

    /// Consumes one section header, checking the tag, and returns the
    /// payload end offset.
    fn section(&mut self, expect_tag: u32) -> Result<usize, SnapshotError> {
        let tag = self.u32()?;
        if tag != expect_tag {
            return Err(SnapshotError::Malformed(format!(
                "expected section tag {expect_tag}, found {tag}"
            )));
        }
        let len = self.u64()? as usize;
        if len > self.remaining() {
            return Err(SnapshotError::Truncated { needed: len, available: self.remaining() });
        }
        Ok(self.pos + len)
    }

    /// Asserts the previous section was consumed exactly to its boundary.
    fn finish_section(&self, end: usize, what: &str) -> Result<(), SnapshotError> {
        if self.pos != end {
            return Err(SnapshotError::Malformed(format!(
                "section {what}: payload length mismatch (at {}, expected {end})",
                self.pos
            )));
        }
        Ok(())
    }
}

fn decode(bytes: &[u8]) -> Result<SelectorDump, SnapshotError> {
    // Magic + version + CRC trailer are the minimum plausible file.
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(SnapshotError::Truncated { needed: MAGIC.len() + 8, available: bytes.len() });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let computed = crc32_parallel(body, Parallelism::auto());
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut r = Reader { buf: body, pos: MAGIC.len() };
    let version = r.u32()?;
    if version != FORMAT_V1 {
        return Err(SnapshotError::UnsupportedVersion(version));
    }

    // META
    let end = r.section(TAG_META)?;
    let lambda = r.f64()?;
    let num_users = r.u32()? as usize;
    let num_actions = r.u32()? as usize;
    r.finish_section(end, "META")?;
    if lambda.is_nan() || lambda < 0.0 {
        return Err(SnapshotError::Malformed(format!("invalid lambda {lambda}")));
    }
    // Bound the META counts by what the remaining bytes can possibly hold
    // (USER_ACTIONS needs ≥4 bytes per user, CREDITS ≥4 per action), so a
    // resealed-garbage count fails here instead of aborting the process in
    // a gigantic pre-allocation below.
    let cap = r.remaining();
    if num_users.saturating_mul(4) > cap || num_actions.saturating_mul(4) > cap {
        return Err(SnapshotError::Malformed(format!(
            "META claims {num_users} users / {num_actions} actions but only {cap} bytes follow"
        )));
    }

    // USER_ACTIONS
    let end = r.section(TAG_USER_ACTIONS)?;
    let mut user_actions = Vec::with_capacity(num_users);
    for u in 0..num_users {
        let n = r.count(4)?;
        let mut actions = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.u32()?;
            if a as usize >= num_actions {
                return Err(SnapshotError::Malformed(format!(
                    "user {u}: action id {a} out of range ({num_actions} actions)"
                )));
            }
            actions.push(a);
        }
        user_actions.push(actions);
    }
    r.finish_section(end, "USER_ACTIONS")?;

    // INV_AU
    let end = r.section(TAG_INV_AU)?;
    let mut inv_au = Vec::with_capacity(num_users);
    for u in 0..num_users {
        let x = r.f64()?;
        if !(0.0..=1.0).contains(&x) {
            return Err(SnapshotError::Malformed(format!("user {u}: 1/A_u = {x} out of [0, 1]")));
        }
        inv_au.push(x);
    }
    r.finish_section(end, "INV_AU")?;

    // CREDITS
    let end = r.section(TAG_CREDITS)?;
    let mut credits = Vec::with_capacity(num_actions);
    for a in 0..num_actions {
        let n = r.count(16)?;
        let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(n);
        let mut last_key: Option<u64> = None;
        for _ in 0..n {
            let v = r.u32()?;
            let u = r.u32()?;
            let c = r.f64()?;
            if v as usize >= num_users || u as usize >= num_users || v == u {
                return Err(SnapshotError::Malformed(format!(
                    "action {a}: invalid credit pair ({v}, {u}) for {num_users} users"
                )));
            }
            if !c.is_finite() {
                return Err(SnapshotError::Malformed(format!(
                    "action {a}: non-finite credit for ({v}, {u})"
                )));
            }
            let key = (u64::from(v) << 32) | u64::from(u);
            if last_key.is_some_and(|prev| prev >= key) {
                return Err(SnapshotError::Malformed(format!(
                    "action {a}: credit entries not in canonical sorted order"
                )));
            }
            last_key = Some(key);
            entries.push((v, u, c));
        }
        credits.push(entries);
    }
    r.finish_section(end, "CREDITS")?;

    // SC
    let end = r.section(TAG_SC)?;
    let n = r.count(16)?;
    let mut sc: Vec<(u32, u32, f64)> = Vec::with_capacity(n);
    let mut last_key: Option<u64> = None;
    for _ in 0..n {
        let a = r.u32()?;
        let u = r.u32()?;
        let c = r.f64()?;
        if a as usize >= num_actions || u as usize >= num_users {
            return Err(SnapshotError::Malformed(format!("SC entry ({a}, {u}) out of range")));
        }
        if !c.is_finite() {
            return Err(SnapshotError::Malformed(format!("non-finite SC credit for ({a}, {u})")));
        }
        let key = (u64::from(a) << 32) | u64::from(u);
        if last_key.is_some_and(|prev| prev >= key) {
            return Err(SnapshotError::Malformed(
                "SC entries not in canonical sorted order".to_string(),
            ));
        }
        last_key = Some(key);
        sc.push((a, u, c));
    }
    r.finish_section(end, "SC")?;

    // SEEDS
    let end = r.section(TAG_SEEDS)?;
    let n = r.count(4)?;
    let mut seeds = Vec::with_capacity(n);
    for _ in 0..n {
        let s = r.u32()?;
        if s as usize >= num_users {
            return Err(SnapshotError::Malformed(format!("seed {s} out of range")));
        }
        if seeds.contains(&s) {
            return Err(SnapshotError::Malformed(format!("duplicate seed {s}")));
        }
        seeds.push(s);
    }
    r.finish_section(end, "SEEDS")?;

    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after final section",
            r.remaining()
        )));
    }

    Ok(SelectorDump { store: CreditStoreDump { lambda, user_actions, inv_au, credits }, sc, seeds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_core::{scan, CreditPolicy};

    fn trained_selector() -> CdSelector {
        let ds = cdim_datagen::presets::tiny().generate();
        let policy = CreditPolicy::time_aware(&ds.graph, &ds.log);
        CdSelector::new(scan(&ds.graph, &ds.log, &policy, 0.001).unwrap())
    }

    #[test]
    fn build_is_byte_identical_for_every_thread_count() {
        let ds = cdim_datagen::presets::tiny().generate();
        let config = |threads: usize| cdim_core::CdModelConfig {
            parallelism: cdim_util::Parallelism::fixed(threads),
            ..Default::default()
        };
        let baseline = ModelSnapshot::build(&ds.graph, &ds.log, config(1)).unwrap().to_bytes();
        for threads in [2usize, 8] {
            let bytes =
                ModelSnapshot::build(&ds.graph, &ds.log, config(threads)).unwrap().to_bytes();
            assert_eq!(bytes, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn extend_is_byte_identical_to_full_build() {
        // Uniform policy is log-independent, so the prefix-trained and
        // full-trained snapshots share it exactly; snapshot bytes of the
        // extended model must equal the from-scratch build's.
        let ds = cdim_datagen::presets::tiny().generate();
        let config = cdim_core::CdModelConfig {
            policy: cdim_core::model::PolicyKind::Uniform,
            lambda: 0.001,
            parallelism: cdim_util::Parallelism::fixed(2),
        };
        let full = ModelSnapshot::build(&ds.graph, &ds.log, config).unwrap().to_bytes();
        for split in [0, ds.log.num_actions() / 3, ds.log.num_actions()] {
            let (prefix, delta) = ds.log.split_at_action(split);
            let base = ModelSnapshot::build(&ds.graph, &prefix, config).unwrap();
            let extended = base
                .extend(&ds.graph, &delta, &CreditPolicy::Uniform, cdim_util::Parallelism::fixed(3))
                .unwrap();
            assert_eq!(extended.to_bytes(), full, "split = {split}");
        }
    }

    #[test]
    fn retract_is_byte_identical_to_window_build() {
        // The window invariant at the snapshot layer: retracting an
        // expired prefix yields the exact bytes of a from-scratch build
        // over just the surviving window.
        let ds = cdim_datagen::presets::tiny().generate();
        let config = cdim_core::CdModelConfig {
            policy: cdim_core::model::PolicyKind::Uniform,
            lambda: 0.001,
            parallelism: cdim_util::Parallelism::fixed(2),
        };
        let full = ModelSnapshot::build(&ds.graph, &ds.log, config).unwrap();
        for expire in [0, ds.log.num_actions() / 3, ds.log.num_actions()] {
            let (expired, window) = ds.log.split_off_prefix(expire);
            let retracted = full
                .retract(
                    &ds.graph,
                    &expired,
                    &CreditPolicy::Uniform,
                    cdim_util::Parallelism::fixed(3),
                )
                .unwrap();
            let fresh = ModelSnapshot::build(&ds.graph, &window, config).unwrap();
            assert_eq!(retracted.to_bytes(), fresh.to_bytes(), "expire = {expire}");
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let snap = ModelSnapshot::from_selector(trained_selector());
        let bytes = snap.to_bytes();
        let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(restored.to_bytes(), bytes);
        assert_eq!(restored.selector().dump(), snap.selector().dump());
    }

    #[test]
    fn round_trip_preserves_mid_selection_state() {
        let mut sel = trained_selector();
        let seed = CdSelector::new(sel.store().clone()).select(1).seeds[0];
        sel.update(seed);
        let snap = ModelSnapshot::from_selector(sel.clone());
        let restored = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.selector().seeds(), sel.seeds());
        // Against the live selector gains agree up to credit-iteration
        // order; against any other canonical restoration they are
        // bit-exact (the dump fixes the summation order).
        let canonical = CdSelector::from_dump(&sel.dump());
        for x in 0..snap.num_users() as u32 {
            assert!((restored.selector().compute_mg(x) - sel.compute_mg(x)).abs() < 1e-9);
            assert_eq!(
                restored.selector().compute_mg(x).to_bits(),
                canonical.compute_mg(x).to_bits(),
                "user {x}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let snap = ModelSnapshot::from_selector(trained_selector());
        let dir = std::env::temp_dir().join(format!("cdim_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.snap");
        snap.save(&path).unwrap();
        let restored = ModelSnapshot::load(&path).unwrap();
        assert_eq!(restored.to_bytes(), snap.to_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let snap = ModelSnapshot::from_selector(trained_selector());
        let bytes = snap.to_bytes();

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(ModelSnapshot::from_bytes(&bad), Err(SnapshotError::BadMagic)));

        let mut bad = bytes.clone();
        bad[8] = 99; // version — also breaks the CRC, so re-seal.
        let crc = crc32(&bad[..bad.len() - 4]);
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ModelSnapshot::from_bytes(&bad),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let snap = ModelSnapshot::from_selector(trained_selector());
        let bytes = snap.to_bytes();
        // Every prefix must fail without panicking (step 7 keeps it fast).
        for len in (0..bytes.len()).step_by(7) {
            assert!(
                ModelSnapshot::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn corrupted_byte_is_detected_by_checksum() {
        let snap = ModelSnapshot::from_selector(trained_selector());
        let bytes = snap.to_bytes();
        for &at in &[9, 20, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            match ModelSnapshot::from_bytes(&bad) {
                Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::BadMagic) => {}
                // The version word is read before the payload is trusted
                // (it selects the decoder), so corrupting it reports the
                // bogus version rather than the checksum.
                Err(SnapshotError::UnsupportedVersion(_)) if (8..12).contains(&at) => {}
                other => panic!("corruption at {at} gave {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_meta_counts_fail_without_allocating() {
        // num_users sits at offset 32: magic(8) + version(4) + META
        // tag(4) + len(8) + lambda(8). Claiming u32::MAX users with a
        // valid CRC must be rejected structurally, not by a ~100 GB
        // pre-allocation abort.
        let snap = ModelSnapshot::from_selector(trained_selector());
        let mut bytes = snap.to_bytes();
        bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(ModelSnapshot::from_bytes(&bytes), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn resealed_garbage_is_rejected_structurally() {
        // A validly-checksummed file whose seed id is out of range: the CRC
        // passes, structural validation must still reject it.
        let snap = ModelSnapshot::from_selector(trained_selector());
        let mut bytes = snap.to_bytes();
        let n = bytes.len();
        bytes[n - 8..n - 4].copy_from_slice(&u32::MAX.to_le_bytes()); // last seed-count/seed word
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(SnapshotError::Malformed(_)) | Err(SnapshotError::Truncated { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_core::{scan, CreditPolicy};
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// save → load is lossless over random trained stores (both
        /// policies, with and without committed seeds).
        #[test]
        fn random_trained_stores_round_trip(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..50),
            events in proptest::collection::vec((0u32..10, 0u32..4, 0u64..20), 1..60),
            seeds in proptest::sample::subsequence((0u32..10).collect::<Vec<_>>(), 0..3),
            time_aware in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(10).edges(edges).build();
            let mut b = ActionLogBuilder::new(10);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let mut sel = CdSelector::new(scan(&graph, &log, &policy, 0.0).unwrap());
            for &s in &seeds {
                sel.update(s);
            }
            let snap = ModelSnapshot::from_selector(sel);
            let bytes = snap.to_bytes();
            let restored = ModelSnapshot::from_bytes(&bytes).unwrap();
            prop_assert_eq!(restored.selector().dump(), snap.selector().dump());
            prop_assert_eq!(restored.to_bytes(), bytes);
        }

        /// The v2 (zero-copy) encoding of any random trained store loads
        /// back to the same model: canonical v1 bytes identical, v2
        /// re-encoding canonical too.
        #[test]
        fn random_trained_stores_round_trip_v2(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..50),
            events in proptest::collection::vec((0u32..10, 0u32..4, 0u64..20), 1..60),
            seeds in proptest::sample::subsequence((0u32..10).collect::<Vec<_>>(), 0..3),
            time_aware in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(10).edges(edges).build();
            let mut b = ActionLogBuilder::new(10);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let mut sel = CdSelector::new(scan(&graph, &log, &policy, 0.0).unwrap());
            for &s in &seeds {
                sel.update(s);
            }
            let snap = ModelSnapshot::from_selector(sel);
            let v2 = snap.to_bytes_v2();
            let restored = ModelSnapshot::from_bytes(&v2).unwrap();
            prop_assert!(restored.is_compact());
            prop_assert_eq!(restored.to_bytes(), snap.to_bytes());
            prop_assert_eq!(restored.to_bytes_v2(), v2);
        }
    }
}
