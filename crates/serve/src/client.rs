//! A blocking client for the query protocol.
//!
//! One [`QueryClient`] wraps one TCP connection and issues any number of
//! sequential requests over it. Clients are cheap; open one per thread for
//! concurrent load.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProtocolError, Request, Response,
    ServiceInfo, StatsReply,
};
use cdim_obs::{RegistryDump, TraceDump};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The server rejected the request with this message.
    Server(String),
    /// The server answered with a response of the wrong kind.
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::UnexpectedResponse => write!(f, "response kind does not match request"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// A connected query client.
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connects to a running influence service.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(QueryClient { stream })
    }

    /// Sends one request and reads one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request)).map_err(ProtocolError::Io)?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::Disconnected),
        }
    }

    /// The `budget` best seeds with their marginal gains.
    pub fn top_k(&mut self, budget: u32) -> Result<(Vec<u32>, Vec<f64>), ClientError> {
        match self.request(&Request::TopKSeeds { budget })? {
            Response::TopKSeeds { seeds, gains } => Ok((seeds, gains)),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// σ_cd of `seeds`.
    pub fn spread(&mut self, seeds: &[u32]) -> Result<f64, ClientError> {
        match self.request(&Request::Spread { seeds: seeds.to_vec() })? {
            Response::Spread(sigma) => Ok(sigma),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Marginal gain of `candidate` on top of `seeds`.
    pub fn marginal_gain(&mut self, seeds: &[u32], candidate: u32) -> Result<f64, ClientError> {
        match self.request(&Request::MarginalGain { seeds: seeds.to_vec(), candidate })? {
            Response::MarginalGain(gain) => Ok(gain),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Snapshot dimensions and cache counters.
    pub fn info(&mut self) -> Result<ServiceInfo, ClientError> {
        match self.request(&Request::Info)? {
            Response::Info(info) => Ok(info),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Observability counters (queries served, cache hit/miss split,
    /// publishes applied, current model version).
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Full metrics-registry dump: every counter, gauge, latency-histogram
    /// summary, and info metric the serving process has registered.
    pub fn metrics(&mut self) -> Result<RegistryDump, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(dump) => Ok(dump),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// The server's span flight recorder and slow-query log (wire op 7).
    /// Servers predating op 7 answer [`Response::Error`], surfaced here
    /// as [`ClientError::Server`] on a still-usable connection.
    pub fn trace_dump(&mut self) -> Result<TraceDump, ClientError> {
        match self.request(&Request::TraceDump)? {
            Response::TraceDump(dump) => Ok(dump),
            Response::Error(message) => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}
