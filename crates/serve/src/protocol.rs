//! The length-prefixed request/response wire protocol.
//!
//! Every message is one frame: a `u32` little-endian payload length
//! followed by the payload. The first payload byte is an opcode; the rest
//! is the fixed encoding of that message (u32/f64 little-endian, vectors
//! as `u32` count + elements — the same primitives as the snapshot
//! format).
//!
//! ## Requests
//!
//! | opcode | request       | payload after opcode |
//! |--------|---------------|----------------------|
//! | 1      | TopKSeeds     | `budget u32` |
//! | 2      | Spread        | `n u32 · n × u32 seed` |
//! | 3      | MarginalGain  | `n u32 · n × u32 seed · candidate u32` |
//! | 4      | Info          | — |
//! | 5      | Stats         | — |
//! | 6      | Metrics       | — |
//! | 7      | TraceDump     | — |
//!
//! ## Responses
//!
//! | opcode | response      | payload after opcode |
//! |--------|---------------|----------------------|
//! | 1      | TopKSeeds     | `n u32 · n × (seed u32 · gain f64)` |
//! | 2      | Spread        | `sigma f64` |
//! | 3      | MarginalGain  | `gain f64` |
//! | 4      | Info          | `num_users u64 · num_actions u64 · seeds u64 · hits u64 · misses u64` |
//! | 5      | Stats         | `queries u64 · hits u64 · misses u64 · publishes u64 · version u64` |
//! | 6      | Metrics       | `nc u32 · nc × (str · u64) · ng u32 · ng × (str · f64) · nh u32 · nh × (str · count u64 · sum f64 · max f64 · p50 f64 · p90 f64 · p99 f64) · ni u32 · ni × (str · str · str)` |
//! | 7      | TraceDump     | `ns u32 · ns × span · nt u32 · nt × (duration u64 · ns u32 · ns × span)` |
//! | 255    | Error         | `len u32 · len × utf-8 byte` |
//!
//! where `str` is `len u32 · len × utf-8 byte`. The Metrics payload is a
//! full [`cdim_obs::RegistryDump`]: counters, gauges, histogram summaries,
//! then info metrics (name · label key · label value), each block sorted
//! by metric name. The TraceDump payload is a [`cdim_obs::TraceDump`]:
//! the flight recorder's recent spans then the slow-query log, where
//! `span` is `trace_id u64 · span_id u32 · parent u32 · stage str ·
//! start_ns u64 · end_ns u64 · nkv u32 · nkv × (str · u64)`.
//!
//! Frames above [`MAX_FRAME_LEN`] are rejected before allocation, so a
//! garbage length prefix cannot make the server reserve gigabytes.

use crate::codec::{push_f64, push_u32, push_u64};
use cdim_obs::{HistogramSummary, RegistryDump, SlowTraceDump, SpanDump, TraceDump};
use std::io::{Read, Write};

/// Upper bound on a single frame's payload (16 MiB — a 4-million-seed
/// query, far beyond anything meaningful).
pub const MAX_FRAME_LEN: u32 = 16 << 20;

const OP_TOPK: u8 = 1;
const OP_SPREAD: u8 = 2;
const OP_GAIN: u8 = 3;
const OP_INFO: u8 = 4;
const OP_STATS: u8 = 5;
const OP_METRICS: u8 = 6;
const OP_TRACE: u8 = 7;
const OP_ERROR: u8 = 255;

/// A wire request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Select the `budget` best seeds.
    TopKSeeds {
        /// Number of seeds to select.
        budget: u32,
    },
    /// Predict σ_cd of a seed set.
    Spread {
        /// The seed set.
        seeds: Vec<u32>,
    },
    /// Marginal gain of `candidate` on top of `seeds`.
    MarginalGain {
        /// The existing seed set.
        seeds: Vec<u32>,
        /// The candidate user.
        candidate: u32,
    },
    /// Snapshot dimensions and cache counters.
    Info,
    /// Service observability counters (queries served, cache hits,
    /// publishes applied, current model version).
    Stats,
    /// Full metrics-registry dump: every counter, gauge, latency-histogram
    /// summary, and info metric the process has registered.
    Metrics,
    /// Flight-recorder dump: the recent spans in the process-wide trace
    /// ring plus the slow-query log.
    TraceDump,
}

/// Snapshot and cache facts returned by [`Request::Info`].
///
/// The dimension fields are `u64` on the wire: a billion-user action log
/// overflows `u32` action counts, and the old `as u32` casts silently
/// truncated (fixed in PR 9 by widening the op-4 payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceInfo {
    /// Users in the served snapshot.
    pub num_users: u64,
    /// Actions in the served snapshot.
    pub num_actions: u64,
    /// Seeds already committed in the served snapshot.
    pub committed_seeds: u64,
    /// Answer-cache hits since the service started.
    pub cache_hits: u64,
    /// Answer-cache misses since the service started.
    pub cache_misses: u64,
}

/// Service counters returned by [`Request::Stats`] — the wire form of
/// [`crate::service::ServiceStats`], kept separate so the protocol stays
/// a closed, versioned surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Queries received by the service (including rejected ones).
    pub queries: u64,
    /// Queries answered from the LRU cache.
    pub cache_hits: u64,
    /// Queries that had to be computed.
    pub cache_misses: u64,
    /// Snapshots published since the service started.
    pub publishes: u64,
    /// Version of the currently served model (0 = the startup snapshot).
    pub model_version: u64,
}

/// A wire response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Seeds in selection order with their marginal gains.
    TopKSeeds {
        /// Chosen seeds, best first.
        seeds: Vec<u32>,
        /// Marginal gain of each seed at its selection step.
        gains: Vec<f64>,
    },
    /// σ_cd of the queried set.
    Spread(f64),
    /// The queried marginal gain.
    MarginalGain(f64),
    /// Answer to [`Request::Info`].
    Info(ServiceInfo),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answer to [`Request::Metrics`].
    Metrics(RegistryDump),
    /// Answer to [`Request::TraceDump`].
    TraceDump(TraceDump),
    /// The request was rejected; the payload explains why.
    Error(String),
}

/// Decoding/transport failures.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// A frame length exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The payload ended before a field could be read.
    Truncated,
    /// The first payload byte is not a known opcode.
    UnknownOpcode(u8),
    /// A structurally invalid payload (bad count, trailing bytes, bad
    /// UTF-8 in an error message, …).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            ProtocolError::Truncated => write!(f, "frame payload truncated"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtocolError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

// ------------------------------------------------------------------ frames

/// Writes one `length · payload` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream at a frame
/// boundary (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(ProtocolError::Truncated),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated
        } else {
            ProtocolError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// Incremental frame decoder for nonblocking streams.
///
/// The reactor reads whatever bytes the socket has and feeds them in via
/// [`FrameDecoder::extend`]; [`FrameDecoder::next_frame`] yields complete
/// payloads as they become available and keeps partial frames buffered
/// across reads — a slow peer that delivers a request one byte at a time
/// loses nothing. Oversized length prefixes are rejected before any
/// payload allocation, exactly like [`read_frame`].
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before this offset belong to already-yielded frames; the
    /// buffer is compacted lazily so pipelined bursts don't memmove per
    /// frame.
    consumed: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed, or [`ProtocolError::FrameTooLarge`] on an absurd length
    /// prefix (the connection is unrecoverable after that — framing is
    /// lost).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::FrameTooLarge(len));
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[4..total].to_vec();
        self.consumed += total;
        Ok(Some(payload))
    }

    /// True when a partially delivered frame (or unparsed bytes) sit in
    /// the buffer — the signal that a read timeout is a mid-frame stall
    /// rather than idleness.
    pub fn has_partial(&self) -> bool {
        self.consumed < self.buf.len()
    }

    /// Bytes currently buffered (partial frames and not-yet-popped
    /// complete frames).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Drops yielded-frame bytes once they dominate the buffer, keeping
    /// amortized O(1) per byte.
    fn compact(&mut self) {
        if self.consumed > 0 && (self.consumed >= self.buf.len() || self.consumed >= 4096) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

// ---------------------------------------------------------------- encoding

fn push_seeds(out: &mut Vec<u8>, seeds: &[u32]) {
    push_u32(out, seeds.len() as u32);
    for &s in seeds {
        push_u32(out, s);
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_span(out: &mut Vec<u8>, span: &SpanDump) {
    push_u64(out, span.trace_id);
    push_u32(out, span.span_id);
    push_u32(out, span.parent_id);
    push_str(out, &span.stage);
    push_u64(out, span.start_ns);
    push_u64(out, span.end_ns);
    push_u32(out, span.kv.len() as u32);
    for (key, value) in &span.kv {
        push_str(out, key);
        push_u64(out, *value);
    }
}

fn push_trace_dump(out: &mut Vec<u8>, dump: &TraceDump) {
    push_u32(out, dump.spans.len() as u32);
    for span in &dump.spans {
        push_span(out, span);
    }
    push_u32(out, dump.slow.len() as u32);
    for trace in &dump.slow {
        push_u64(out, trace.duration_ns);
        push_u32(out, trace.spans.len() as u32);
        for span in &trace.spans {
            push_span(out, span);
        }
    }
}

fn push_dump(out: &mut Vec<u8>, dump: &RegistryDump) {
    push_u32(out, dump.counters.len() as u32);
    for (name, value) in &dump.counters {
        push_str(out, name);
        push_u64(out, *value);
    }
    push_u32(out, dump.gauges.len() as u32);
    for (name, value) in &dump.gauges {
        push_str(out, name);
        push_f64(out, *value);
    }
    push_u32(out, dump.histograms.len() as u32);
    for (name, s) in &dump.histograms {
        push_str(out, name);
        push_u64(out, s.count);
        push_f64(out, s.sum);
        push_f64(out, s.max);
        push_f64(out, s.p50);
        push_f64(out, s.p90);
        push_f64(out, s.p99);
    }
    push_u32(out, dump.infos.len() as u32);
    for (name, label, value) in &dump.infos {
        push_str(out, name);
        push_str(out, label);
        push_str(out, value);
    }
}

/// Serializes a request payload.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match request {
        Request::TopKSeeds { budget } => {
            out.push(OP_TOPK);
            push_u32(&mut out, *budget);
        }
        Request::Spread { seeds } => {
            out.push(OP_SPREAD);
            push_seeds(&mut out, seeds);
        }
        Request::MarginalGain { seeds, candidate } => {
            out.push(OP_GAIN);
            push_seeds(&mut out, seeds);
            push_u32(&mut out, *candidate);
        }
        Request::Info => out.push(OP_INFO),
        Request::Stats => out.push(OP_STATS),
        Request::Metrics => out.push(OP_METRICS),
        Request::TraceDump => out.push(OP_TRACE),
    }
    out
}

/// Serializes a response payload.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::TopKSeeds { seeds, gains } => {
            debug_assert_eq!(seeds.len(), gains.len());
            out.push(OP_TOPK);
            push_u32(&mut out, seeds.len() as u32);
            for (&s, &g) in seeds.iter().zip(gains) {
                push_u32(&mut out, s);
                push_f64(&mut out, g);
            }
        }
        Response::Spread(sigma) => {
            out.push(OP_SPREAD);
            push_f64(&mut out, *sigma);
        }
        Response::MarginalGain(gain) => {
            out.push(OP_GAIN);
            push_f64(&mut out, *gain);
        }
        Response::Info(info) => {
            out.push(OP_INFO);
            push_u64(&mut out, info.num_users);
            push_u64(&mut out, info.num_actions);
            push_u64(&mut out, info.committed_seeds);
            push_u64(&mut out, info.cache_hits);
            push_u64(&mut out, info.cache_misses);
        }
        Response::Stats(stats) => {
            out.push(OP_STATS);
            push_u64(&mut out, stats.queries);
            push_u64(&mut out, stats.cache_hits);
            push_u64(&mut out, stats.cache_misses);
            push_u64(&mut out, stats.publishes);
            push_u64(&mut out, stats.model_version);
        }
        Response::Metrics(dump) => {
            out.push(OP_METRICS);
            push_dump(&mut out, dump);
        }
        Response::TraceDump(dump) => {
            out.push(OP_TRACE);
            push_trace_dump(&mut out, dump);
        }
        Response::Error(message) => {
            out.push(OP_ERROR);
            let bytes = message.as_bytes();
            push_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
    }
    out
}

// ---------------------------------------------------------------- decoding

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.pos + n > self.buf.len() {
            return Err(ProtocolError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| ProtocolError::Malformed("string is not UTF-8"))
    }

    fn seeds(&mut self) -> Result<Vec<u32>, ProtocolError> {
        let n = self.u32()? as usize;
        if n * 4 > self.buf.len() - self.pos {
            return Err(ProtocolError::Truncated);
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn done(&self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(())
    }
}

/// Parses a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut r = Reader { buf: payload, pos: 0 };
    let request = match r.u8()? {
        OP_TOPK => Request::TopKSeeds { budget: r.u32()? },
        OP_SPREAD => Request::Spread { seeds: r.seeds()? },
        OP_GAIN => {
            let seeds = r.seeds()?;
            let candidate = r.u32()?;
            Request::MarginalGain { seeds, candidate }
        }
        OP_INFO => Request::Info,
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        OP_TRACE => Request::TraceDump,
        op => return Err(ProtocolError::UnknownOpcode(op)),
    };
    r.done()?;
    Ok(request)
}

fn read_span(r: &mut Reader<'_>) -> Result<SpanDump, ProtocolError> {
    let trace_id = r.u64()?;
    let span_id = r.u32()?;
    let parent_id = r.u32()?;
    let stage = r.string()?;
    let start_ns = r.u64()?;
    let end_ns = r.u64()?;
    let nkv = r.u32()? as usize;
    let mut kv = Vec::new();
    for _ in 0..nkv {
        let key = r.string()?;
        kv.push((key, r.u64()?));
    }
    Ok(SpanDump { trace_id, span_id, parent_id, stage, start_ns, end_ns, kv })
}

/// Parses a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut r = Reader { buf: payload, pos: 0 };
    let response = match r.u8()? {
        OP_TOPK => {
            let n = r.u32()? as usize;
            if n * 12 > payload.len() {
                return Err(ProtocolError::Truncated);
            }
            let mut seeds = Vec::with_capacity(n);
            let mut gains = Vec::with_capacity(n);
            for _ in 0..n {
                seeds.push(r.u32()?);
                gains.push(r.f64()?);
            }
            Response::TopKSeeds { seeds, gains }
        }
        OP_SPREAD => Response::Spread(r.f64()?),
        OP_GAIN => Response::MarginalGain(r.f64()?),
        OP_INFO => Response::Info(ServiceInfo {
            num_users: r.u64()?,
            num_actions: r.u64()?,
            committed_seeds: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
        }),
        OP_STATS => Response::Stats(StatsReply {
            queries: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            publishes: r.u64()?,
            model_version: r.u64()?,
        }),
        OP_METRICS => {
            // Counts are bounded by the payload itself: every entry is at
            // least 4 bytes, so an absurd count fails in `take` before any
            // large allocation (capacity is never pre-reserved from it).
            let nc = r.u32()? as usize;
            let mut counters = Vec::new();
            for _ in 0..nc {
                let name = r.string()?;
                counters.push((name, r.u64()?));
            }
            let ng = r.u32()? as usize;
            let mut gauges = Vec::new();
            for _ in 0..ng {
                let name = r.string()?;
                gauges.push((name, r.f64()?));
            }
            let nh = r.u32()? as usize;
            let mut histograms = Vec::new();
            for _ in 0..nh {
                let name = r.string()?;
                histograms.push((
                    name,
                    HistogramSummary {
                        count: r.u64()?,
                        sum: r.f64()?,
                        max: r.f64()?,
                        p50: r.f64()?,
                        p90: r.f64()?,
                        p99: r.f64()?,
                    },
                ));
            }
            let ni = r.u32()? as usize;
            let mut infos = Vec::new();
            for _ in 0..ni {
                let name = r.string()?;
                let label = r.string()?;
                infos.push((name, label, r.string()?));
            }
            Response::Metrics(RegistryDump { counters, gauges, histograms, infos })
        }
        OP_TRACE => {
            // Same bounded-count discipline as OP_METRICS: counts are never
            // pre-reserved, so absurd values fail in `take` immediately.
            let ns = r.u32()? as usize;
            let mut spans = Vec::new();
            for _ in 0..ns {
                spans.push(read_span(&mut r)?);
            }
            let nt = r.u32()? as usize;
            let mut slow = Vec::new();
            for _ in 0..nt {
                let duration_ns = r.u64()?;
                let ns = r.u32()? as usize;
                let mut trace_spans = Vec::new();
                for _ in 0..ns {
                    trace_spans.push(read_span(&mut r)?);
                }
                slow.push(SlowTraceDump { duration_ns, spans: trace_spans });
            }
            Response::TraceDump(TraceDump { spans, slow })
        }
        OP_ERROR => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?;
            Response::Error(message.to_string())
        }
        op => return Err(ProtocolError::UnknownOpcode(op)),
    };
    r.done()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::TopKSeeds { budget: 7 },
            Request::Spread { seeds: vec![] },
            Request::Spread { seeds: vec![5, 1, 5, 9] },
            Request::MarginalGain { seeds: vec![2, 3], candidate: 4 },
            Request::Info,
            Request::Stats,
            Request::Metrics,
            Request::TraceDump,
        ];
        for request in requests {
            let payload = encode_request(&request);
            assert_eq!(decode_request(&payload).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::TopKSeeds { seeds: vec![4, 2], gains: vec![3.5, 1.25] },
            Response::TopKSeeds { seeds: vec![], gains: vec![] },
            Response::Spread(12.75),
            Response::MarginalGain(-0.0),
            Response::Info(ServiceInfo {
                num_users: 100,
                num_actions: 7,
                committed_seeds: 2,
                cache_hits: 5,
                cache_misses: 9,
            }),
            Response::Stats(StatsReply {
                queries: u64::MAX,
                cache_hits: 12,
                cache_misses: 3,
                publishes: 4,
                model_version: 4,
            }),
            Response::Metrics(RegistryDump::default()),
            Response::Metrics(RegistryDump {
                counters: vec![("cdim_serve_queries_total".to_string(), 42)],
                gauges: vec![
                    ("cdim_ingest_lag_bytes".to_string(), 0.0),
                    ("cdim_ingest_records_per_sec".to_string(), 1234.5),
                ],
                histograms: vec![(
                    "cdim_serve_query_seconds".to_string(),
                    HistogramSummary {
                        count: 9,
                        sum: 0.5,
                        max: 0.25,
                        p50: 0.01,
                        p90: 0.2,
                        p99: 0.25,
                    },
                )],
                infos: vec![(
                    "cdim_ingest_last_quarantine_reason".to_string(),
                    "reason".to_string(),
                    "stale action (frontier 17)".to_string(),
                )],
            }),
            Response::TraceDump(TraceDump::default()),
            Response::TraceDump(TraceDump {
                spans: vec![
                    SpanDump {
                        trace_id: 3,
                        span_id: 1,
                        parent_id: 0,
                        stage: "serve.request".to_string(),
                        start_ns: 1_000,
                        end_ns: 9_000,
                        kv: vec![],
                    },
                    SpanDump {
                        trace_id: 3,
                        span_id: 2,
                        parent_id: 1,
                        stage: "serve.eval".to_string(),
                        start_ns: 2_000,
                        end_ns: 8_000,
                        kv: vec![("batch".to_string(), 4), ("seeds".to_string(), 2)],
                    },
                ],
                slow: vec![SlowTraceDump {
                    duration_ns: 25_000_000,
                    spans: vec![SpanDump {
                        trace_id: 9,
                        span_id: 7,
                        parent_id: 0,
                        stage: "ingest.step".to_string(),
                        start_ns: 0,
                        end_ns: 25_000_000,
                        kv: vec![("records".to_string(), 123)],
                    }],
                }],
            }),
            Response::Error("user 9 out of range".to_string()),
        ];
        for response in responses {
            let payload = encode_response(&response);
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::TopKSeeds { budget: 3 })).unwrap();
        write_frame(&mut wire, &encode_request(&Request::Info)).unwrap();
        let mut cursor = &wire[..];
        let a = read_frame(&mut cursor).unwrap().unwrap();
        let b = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_request(&a).unwrap(), Request::TopKSeeds { budget: 3 });
        assert_eq!(decode_request(&b).unwrap(), Request::Info);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        // Length prefix promises more than the stream holds.
        let mut wire = Vec::new();
        write_frame(&mut wire, &[1, 2, 3, 4]).unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = &wire[..];
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Truncated)));

        // Absurd length prefix fails before allocating.
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(ProtocolError::FrameTooLarge(n)) if n == MAX_FRAME_LEN + 1
        ));

        // Mid-length-prefix EOF is truncation, not a clean close.
        let wire = [1u8, 0];
        assert!(matches!(read_frame(&mut &wire[..]), Err(ProtocolError::Truncated)));
    }

    #[test]
    fn info_dimensions_survive_beyond_u32() {
        // Regression for the PR-2 `as u32` truncation: a snapshot bigger
        // than 2^32 actions must round-trip exactly through op 4.
        let info = ServiceInfo {
            num_users: u64::from(u32::MAX) + 12,
            num_actions: 1 << 40,
            committed_seeds: u64::from(u32::MAX) + 1,
            cache_hits: 3,
            cache_misses: 4,
        };
        let payload = encode_response(&Response::Info(info));
        match decode_response(&payload).unwrap() {
            Response::Info(round) => assert_eq!(round, info),
            other => panic!("expected Info, got {other:?}"),
        }
    }

    #[test]
    fn frame_decoder_handles_byte_at_a_time_delivery() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&Request::TopKSeeds { budget: 3 })).unwrap();
        write_frame(&mut wire, &encode_request(&Request::Spread { seeds: vec![1, 2, 3] })).unwrap();

        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for &byte in &wire {
            decoder.extend(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(decode_request(&frames[0]).unwrap(), Request::TopKSeeds { budget: 3 });
        assert_eq!(decode_request(&frames[1]).unwrap(), Request::Spread { seeds: vec![1, 2, 3] });
        assert!(!decoder.has_partial());
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn frame_decoder_pops_a_pipelined_burst_from_one_read() {
        let mut wire = Vec::new();
        for budget in 0..50u32 {
            write_frame(&mut wire, &encode_request(&Request::TopKSeeds { budget })).unwrap();
        }
        // One extra partial frame at the tail.
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&[0, 1, 2]);

        let mut decoder = FrameDecoder::new();
        decoder.extend(&wire);
        let mut budgets = Vec::new();
        while let Some(frame) = decoder.next_frame().unwrap() {
            match decode_request(&frame).unwrap() {
                Request::TopKSeeds { budget } => budgets.push(budget),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(budgets, (0..50).collect::<Vec<_>>());
        assert!(decoder.has_partial(), "tail bytes must stay buffered");
        assert_eq!(decoder.buffered(), 7);

        // Delivering the rest completes the final frame.
        decoder.extend(&[3, 4, 5, 6, 7]);
        assert_eq!(decoder.next_frame().unwrap().unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(!decoder.has_partial());
    }

    #[test]
    fn frame_decoder_rejects_oversized_prefix_before_payload_arrives() {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(ProtocolError::FrameTooLarge(n)) if n == MAX_FRAME_LEN + 1
        ));
    }

    #[test]
    fn frame_decoder_compaction_preserves_the_stream() {
        // Interleave extends and pops so `consumed` crosses the compaction
        // threshold repeatedly; every frame must still come out intact.
        let mut decoder = FrameDecoder::new();
        let payload = vec![7u8; 1500];
        for round in 0..20 {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            let (a, b) = wire.split_at(wire.len() / 2);
            decoder.extend(a);
            assert!(decoder.next_frame().unwrap().is_none(), "round {round}");
            decoder.extend(b);
            assert_eq!(decoder.next_frame().unwrap().unwrap(), payload, "round {round}");
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(matches!(decode_request(&[]), Err(ProtocolError::Truncated)));
        assert!(matches!(decode_request(&[42]), Err(ProtocolError::UnknownOpcode(42))));
        // Seed count promising more seeds than the payload holds.
        let mut bad = vec![2u8]; // OP_SPREAD
        bad.extend_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(decode_request(&bad), Err(ProtocolError::Truncated)));
        // Trailing garbage.
        let mut bad = encode_request(&Request::Info);
        bad.push(0);
        assert!(matches!(decode_request(&bad), Err(ProtocolError::Malformed(_))));
        // Non-UTF-8 error message.
        let mut bad = vec![255u8];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(decode_response(&bad), Err(ProtocolError::Malformed(_))));
    }
}
