#![warn(missing_docs)]
//! Online serving for the credit-distribution model.
//!
//! The paper's central observation is that once Algorithm 2 has scanned
//! the action log into the credit store, seed selection and spread
//! prediction need *only* that store — no log, no graph, no Monte-Carlo
//! simulation. That makes the CD model uniquely suited to train-once /
//! query-many serving, and this crate is that serving layer, built on the
//! standard library alone:
//!
//! * [`snapshot`] — a versioned, checksummed binary format persisting a
//!   trained [`cdim_core::CreditStore`] + [`cdim_core::CdSelector`] state
//!   to disk ([`ModelSnapshot`]);
//! * [`service`] — [`InfluenceService`], a thread-safe query engine
//!   answering top-k-seed, spread and marginal-gain queries with an LRU
//!   answer cache and atomic zero-downtime snapshot hot-swap;
//! * [`protocol`] — the length-prefixed request/response wire format,
//!   including the incremental [`protocol::FrameDecoder`] for
//!   nonblocking streams;
//! * [`reactor`] — the readiness-driven event loop (epoll / `poll(2)`
//!   via [`cdim_util::poll`]): one thread multiplexing every connection,
//!   pipelined in-order responses, per-connection backpressure, and
//!   per-tick query batching through a small worker pool;
//! * [`server`] — the frontend facade: [`spawn`]/[`server::spawn_with`]
//!   on the reactor, plus the fixed thread-per-connection baseline in
//!   [`server::threaded`] for A/B benchmarking;
//! * [`client`] — a blocking [`QueryClient`] for the protocol.
//!
//! ```no_run
//! use cdim_serve::{InfluenceService, ModelSnapshot, QueryClient};
//! use std::sync::Arc;
//!
//! let snapshot = ModelSnapshot::load(std::path::Path::new("model.snap"))?;
//! let service = Arc::new(InfluenceService::new(snapshot, 1024));
//! let server = cdim_serve::server::spawn(service, "127.0.0.1:0")?;
//!
//! let mut client = QueryClient::connect(server.addr())?;
//! let (seeds, _gains) = client.top_k(50)?;
//! let sigma = client.spread(&seeds)?;
//! println!("predicted spread of the top-50 set: {sigma:.1}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod codec;

pub mod client;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod service;
pub mod snapshot;

pub use client::{ClientError, QueryClient};
pub use protocol::{FrameDecoder, Request, Response, ServiceInfo, StatsReply};
pub use server::{spawn, spawn_with, ServerConfig, ServerHandle};
pub use service::{Answer, InfluenceService, Query, QueryError, ServiceStats};
pub use snapshot::{ModelSnapshot, SnapshotError, SnapshotFormat};
