//! The readiness-driven serving reactor.
//!
//! One event-loop thread multiplexes every connection over a
//! [`cdim_util::poll::Poller`] (epoll on Linux, `poll(2)` fallback):
//! nonblocking sockets, incremental frame decode
//! ([`crate::protocol::FrameDecoder`] — partial reads resume, a slow peer
//! loses nothing), pipelined requests, and per-connection write
//! backpressure (bounded outbound queue; a consumer that stops reading is
//! disconnected at [`ServerConfig::max_outbound_bytes`], never buffered
//! unboundedly).
//!
//! ## Request batching
//!
//! Query-shaped requests (`TopKSeeds`/`Spread`/`MarginalGain`) decoded in
//! the same event-loop tick are dispatched as **one batch** to a small
//! worker pool, which answers them through
//! [`InfluenceService::query_batch`]: one snapshot acquisition for the
//! whole batch, so a concurrent publish can never interleave between the
//! batch's queries, and cache probes amortize to one lock hold.
//! `Info`/`Stats`/`Metrics`/`TraceDump` are answered inline on the
//! reactor thread.
//!
//! ## Tracing
//!
//! Every decoded query request opens a `serve.request` root span in the
//! process-global flight recorder ([`cdim_obs::Tracer`]), closed when the
//! response's last byte reaches the socket. Children record decode,
//! batch wait, worker evaluation (under which the service's own spans
//! nest), and write-out; wire op 7 dumps the recorder.
//!
//! ## Response ordering
//!
//! Each decoded request takes the connection's next sequence number and a
//! slot in a pending queue; completions (inline or from workers) fill
//! their slot, and only the filled *head* of the queue is flushed. A
//! client that pipelines N requests always receives the N answers in
//! request order, whatever order the workers finish in.
//!
//! ## Timeouts
//!
//! Idleness is measured from the last *received byte*. A connection that
//! times out with an empty decode buffer is closed silently (it was
//! idle); one that times out mid-frame gets a `Response::Error` first —
//! the old thread-per-connection server conflated the two and silently
//! dropped half-delivered requests.

use crate::protocol::{
    decode_request, encode_response, FrameDecoder, ProtocolError, Request, Response, ServiceInfo,
    StatsReply,
};
use crate::service::{Answer, InfluenceService, Query, QueryError};
use cdim_obs::{ActiveSpan, Counter, Gauge, Histogram, Stage, TraceCtx, Tracer};
use cdim_util::monotonic_ns;
use cdim_util::poll::{Interest, Poller, WakePipe};
use cdim_util::FxHashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`spawn_with`](crate::server::spawn_with).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections beyond this are accepted and immediately closed (the
    /// kernel backlog drains, the peer sees a clean reset instead of a
    /// hang). Also the bound on reactor bookkeeping memory.
    pub max_connections: usize,
    /// Close a connection that has not delivered a byte for this long.
    pub idle_timeout: Duration,
    /// Disconnect a connection whose un-flushed responses exceed this
    /// many bytes — the write-side backpressure cap.
    pub max_outbound_bytes: usize,
    /// Stop reading from a connection with this many unanswered pipelined
    /// requests until responses drain (read-side backpressure).
    pub max_pipeline: usize,
    /// Worker threads answering query batches. `0` = automatic
    /// (`min(4, available cores)`).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 10_240,
            idle_timeout: Duration::from_secs(60),
            max_outbound_bytes: 8 << 20,
            max_pipeline: 1024,
            workers: 0,
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
    }
}

/// A running reactor server. Shutdown is deterministic: the handle wakes
/// the reactor through its self-pipe and joins the event-loop thread
/// (which in turn joins the worker pool) — no detached threads, no leaked
/// fds, whatever state the loop was in.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<WakePipe>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins every thread it spawned.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` and runs the reactor on a background thread.
pub fn spawn_reactor(
    service: Arc<InfluenceService>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let mut poller = Poller::new()?;
    let wake = Arc::new(WakePipe::new()?);
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poller.register(wake.read_fd(), TOKEN_WAKE, Interest::READABLE)?;

    let stop = Arc::new(AtomicBool::new(false));
    let trace = ReactorTrace::register(Tracer::global());
    let shared = Arc::new(WorkerShared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop_workers: AtomicBool::new(false),
        completions: Mutex::new(Vec::new()),
        wake: Arc::clone(&wake),
        service: Arc::clone(&service),
        trace: trace.clone(),
    });
    let workers: Vec<JoinHandle<()>> = (0..config.resolved_workers())
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("cdim-serve-worker-{i}"))
                .spawn(move || worker_main(&shared))
        })
        .collect::<std::io::Result<_>>()?;

    let metrics = ReactorMetrics::register(&service.metrics_registry());
    let stop_flag = Arc::clone(&stop);
    let thread =
        std::thread::Builder::new().name("cdim-serve-reactor".into()).spawn(move || {
            let mut reactor = Reactor {
                listener,
                poller,
                conns: FxHashMap::default(),
                next_token: FIRST_CONN_TOKEN,
                config,
                service,
                shared,
                workers,
                stop: stop_flag,
                accept_paused_until: None,
                consecutive_accept_errors: 0,
                metrics,
                trace,
            };
            reactor.run();
        })?;
    Ok(ServerHandle { addr, stop, wake, thread: Some(thread) })
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 16 * 1024;

/// One query request in flight from the reactor to the worker pool,
/// addressed by connection token (monotonic, never reused — a completion
/// for a dead connection is dropped harmlessly) and per-connection
/// sequence number.
struct BatchItem {
    token: u64,
    seq: u64,
    /// The request's root-span context (unsampled when tracing skipped
    /// this request), under which the worker opens `serve.eval`.
    ctx: TraceCtx,
    /// When decode finished — the start of the `serve.batch` wait span.
    decoded_ns: u64,
    query: Query,
}

/// Query requests decoded in one event-loop tick, dispatched together.
type Batch = Vec<BatchItem>;

/// Pre-resolved stage handles for the reactor's spans (mirrors
/// [`ReactorMetrics`]: resolve once, record forever).
#[derive(Clone)]
struct ReactorTrace {
    tracer: Arc<Tracer>,
    accept: Stage,
    request: Stage,
    decode: Stage,
    batch: Stage,
    eval: Stage,
    write: Stage,
}

impl ReactorTrace {
    fn register(tracer: Arc<Tracer>) -> Self {
        ReactorTrace {
            accept: tracer.stage("serve.accept"),
            request: tracer.stage("serve.request"),
            decode: tracer.stage("serve.decode"),
            batch: tracer.stage("serve.batch"),
            eval: tracer.stage("serve.eval"),
            write: tracer.stage("serve.write"),
            tracer,
        }
    }
}

/// Records `serve.write` and closes the request roots for frames whose
/// last byte just reached the socket. A free function over the trace
/// handles (not a `Reactor` method) so callers holding a mutable borrow
/// of the connection table can still invoke it.
fn record_finished_writes(trace: &ReactorTrace, finished: &mut Vec<(ActiveSpan, u64)>) {
    if finished.is_empty() {
        return;
    }
    let now = trace.tracer.now_ns();
    for (root, entered_ns) in finished.drain(..) {
        trace.tracer.record(root.ctx(), trace.write, entered_ns, now);
        trace.tracer.close_at(root, now);
    }
}

struct WorkerShared {
    queue: Mutex<VecDeque<Batch>>,
    available: Condvar,
    stop_workers: AtomicBool,
    /// (conn token, seq, framed response bytes), drained by the reactor
    /// after each wake.
    completions: Mutex<Vec<(u64, u64, Vec<u8>)>>,
    wake: Arc<WakePipe>,
    service: Arc<InfluenceService>,
    trace: ReactorTrace,
}

fn worker_main(shared: &WorkerShared) {
    let trace = &shared.trace;
    loop {
        let batch = {
            let mut queue = shared.queue.lock().expect("worker queue poisoned");
            loop {
                if let Some(batch) = queue.pop_front() {
                    break batch;
                }
                if shared.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("worker queue poisoned");
            }
        };
        let queries: Vec<Query> = batch.iter().map(|item| item.query.clone()).collect();
        // One `serve.eval` span per request covering the whole batch
        // evaluation; the service's own spans (snapshot, probe, compute)
        // nest under it via the eval contexts.
        let evals: Vec<ActiveSpan> =
            batch.iter().map(|item| trace.tracer.open(item.ctx, trace.eval)).collect();
        let ctxs: Vec<TraceCtx> = evals.iter().map(ActiveSpan::ctx).collect();
        let answers = shared.service.query_batch_traced(&queries, &ctxs);
        let end = if evals.iter().any(ActiveSpan::is_sampled) { trace.tracer.now_ns() } else { 0 };
        let mut done = Vec::with_capacity(batch.len());
        for ((item, result), eval) in batch.into_iter().zip(answers).zip(evals) {
            trace.tracer.close_at(eval, end);
            done.push((
                item.token,
                item.seq,
                frame_bytes(&encode_response(&answer_response(result))),
            ));
        }
        shared.completions.lock().expect("completions poisoned").extend(done);
        shared.wake.wake();
    }
}

/// Length-prefixes a payload into one wire frame.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Maps a query outcome onto the wire.
fn answer_response(result: Result<Answer, QueryError>) -> Response {
    match result {
        Ok(Answer::TopKSeeds { seeds, gains }) => Response::TopKSeeds { seeds, gains },
        Ok(Answer::Spread(sigma)) => Response::Spread(sigma),
        Ok(Answer::MarginalGain(gain)) => Response::MarginalGain(gain),
        Err(e) => Response::Error(e.to_string()),
    }
}

/// The query shape of a request, or `None` for the inline ops.
fn request_query(request: &Request) -> Option<Query> {
    match request {
        Request::TopKSeeds { budget } => Some(Query::TopKSeeds { budget: *budget }),
        Request::Spread { seeds } => Some(Query::Spread { seeds: seeds.clone() }),
        Request::MarginalGain { seeds, candidate } => {
            Some(Query::MarginalGain { seeds: seeds.clone(), candidate: *candidate })
        }
        Request::Info | Request::Stats | Request::Metrics | Request::TraceDump => None,
    }
}

/// Answers the metadata ops that never touch the model (cheap enough for
/// the reactor thread itself).
pub(crate) fn inline_response(request: &Request, service: &InfluenceService) -> Response {
    match request {
        Request::Info => {
            let snapshot = service.snapshot();
            let stats = service.stats();
            Response::Info(ServiceInfo {
                num_users: snapshot.num_users() as u64,
                num_actions: snapshot.num_actions() as u64,
                committed_seeds: snapshot.committed_seeds() as u64,
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
            })
        }
        Request::Stats => {
            let stats = service.stats();
            Response::Stats(StatsReply {
                queries: stats.queries,
                cache_hits: stats.cache_hits,
                cache_misses: stats.cache_misses,
                publishes: stats.snapshots_published,
                model_version: stats.model_version,
            })
        }
        Request::Metrics => Response::Metrics(service.metrics_registry().dump()),
        Request::TraceDump => Response::TraceDump(Tracer::global().dump()),
        _ => unreachable!("inline_response is only called for metadata ops"),
    }
}

// ------------------------------------------------------------ accept errors

/// Whether an `accept(2)` error concerns only the one failed handshake
/// (aborted/reset mid-accept) rather than the listener itself. Transient
/// errors just move on to the next pending connection; anything else —
/// EMFILE/ENFILE/ENOMEM and friends — is a resource condition that will
/// recur immediately, so the accept loop must back off instead of
/// spinning a core (the PR-2 server's `continue`-on-`Err` bug).
pub(crate) fn accept_error_is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
    )
}

/// Exponential accept backoff: 10ms doubling to a 1.28s ceiling.
pub(crate) fn accept_backoff(consecutive_errors: u32) -> Duration {
    Duration::from_millis(10u64 << consecutive_errors.min(7))
}

// ----------------------------------------------------------------- reactor

struct ReactorMetrics {
    connections: Arc<Gauge>,
    accepted: Arc<Counter>,
    accept_errors: Arc<Counter>,
    rejected: Arc<Counter>,
    backpressure_disconnects: Arc<Counter>,
    batch_size: Arc<Histogram>,
}

impl ReactorMetrics {
    fn register(registry: &cdim_obs::MetricsRegistry) -> Self {
        ReactorMetrics {
            connections: registry.gauge("cdim_serve_connections"),
            accepted: registry.counter("cdim_serve_accepted_total"),
            accept_errors: registry.counter("cdim_serve_accept_errors_total"),
            rejected: registry.counter("cdim_serve_conns_rejected_total"),
            backpressure_disconnects: registry.counter("cdim_serve_backpressure_disconnects_total"),
            batch_size: registry.histogram("cdim_serve_batch_size"),
        }
    }
}

/// A framed response waiting on the socket, carrying the request's root
/// span (if traced) so `serve.write` can be recorded — and the root
/// closed — when the last byte actually leaves.
struct OutFrame {
    bytes: Vec<u8>,
    root: Option<ActiveSpan>,
    /// When the frame entered the outbound queue (start of `serve.write`).
    entered_ns: u64,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Framed responses awaiting the socket, plus the write cursor into
    /// the front frame.
    outbound: VecDeque<OutFrame>,
    front_pos: usize,
    queued_bytes: usize,
    /// In-order response slots: index 0 is sequence `base_seq`. A decoded
    /// request pushes an unfilled slot (plus its root span, if traced);
    /// its completion fills the slot; only the filled head is moved to
    /// `outbound`.
    pending: VecDeque<(Option<Vec<u8>>, Option<ActiveSpan>)>,
    base_seq: u64,
    next_seq: u64,
    last_activity: Instant,
    /// Current registered interest (tracked to skip no-op `modify`s).
    interest: Interest,
    /// Stop reading: the pipeline is full.
    paused_read: bool,
    /// Peer half-closed (EOF seen); finish pending work, then drop.
    read_closed: bool,
    /// Fatal condition answered; drop once `outbound` drains.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            outbound: VecDeque::new(),
            front_pos: 0,
            queued_bytes: 0,
            pending: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            last_activity: now,
            interest: Interest::READABLE,
            paused_read: false,
            read_closed: false,
            closing: false,
        }
    }

    /// Allocates the next request's sequence number and pending slot,
    /// parking the request's root span (if traced) until its response is
    /// ready to leave. A root parked on a connection that dies before its
    /// response flushes is abandoned (never recorded) — the flight
    /// recorder only holds complete spans.
    fn push_request(&mut self, root: Option<ActiveSpan>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back((None, root));
        seq
    }

    /// Fills `seq`'s slot (no-op if the slot was dropped by a close) and
    /// moves the filled head of the pending queue into the outbound
    /// queue, preserving request order.
    fn complete(&mut self, seq: u64, frame: Vec<u8>) {
        let Some(index) = seq.checked_sub(self.base_seq) else { return };
        let Some(slot) = self.pending.get_mut(index as usize) else { return };
        slot.0 = Some(frame);
        while matches!(self.pending.front(), Some((Some(_), _))) {
            let (frame, root) = self.pending.pop_front().expect("front was just matched");
            let bytes = frame.expect("head slot is filled");
            self.base_seq += 1;
            self.queued_bytes += bytes.len();
            let entered_ns =
                if root.as_ref().is_some_and(ActiveSpan::is_sampled) { monotonic_ns() } else { 0 };
            self.outbound.push_back(OutFrame { bytes, root, entered_ns });
        }
    }

    /// Writes as much of the outbound queue as the socket accepts,
    /// pushing `(root span, entered_ns)` onto `finished` for every traced
    /// frame whose last byte was written. `Err(())` means the connection
    /// is dead.
    fn flush(&mut self, finished: &mut Vec<(ActiveSpan, u64)>) -> Result<(), ()> {
        while let Some(front) = self.outbound.front() {
            match self.stream.write(&front.bytes[self.front_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.front_pos += n;
                    self.queued_bytes -= n;
                    if self.front_pos == front.bytes.len() {
                        let done = self.outbound.pop_front().expect("front exists");
                        self.front_pos = 0;
                        if let Some(root) = done.root.filter(ActiveSpan::is_sampled) {
                            finished.push((root, done.entered_ns));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }

    fn desired_interest(&self, max_pipeline: usize) -> (Interest, bool) {
        let want_read = !self.read_closed && !self.closing && self.pending.len() < max_pipeline;
        let want_write = !self.outbound.is_empty();
        let interest = match (want_read, want_write) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            (false, false) => Interest::NONE,
        };
        (interest, want_read)
    }
}

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    conns: FxHashMap<u64, Conn>,
    next_token: u64,
    config: ServerConfig,
    service: Arc<InfluenceService>,
    shared: Arc<WorkerShared>,
    workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    /// While set, the listener is deregistered (resource-error backoff —
    /// level-triggered polling would otherwise spin on the pending
    /// handshake we cannot accept).
    accept_paused_until: Option<Instant>,
    consecutive_accept_errors: u32,
    metrics: ReactorMetrics,
    trace: ReactorTrace,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = Vec::new();
        let mut touched: Vec<u64> = Vec::new();
        let mut tick_batch: Batch = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self.tick_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            touched.clear();
            tick_batch.clear();
            let mut accept_ready = false;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKE => {
                        self.shared.wake.drain();
                    }
                    token => {
                        if ev.readable && self.conn_readable(token, now, &mut tick_batch) {
                            touched.push(token);
                        }
                        if ev.writable {
                            touched.push(token);
                        }
                    }
                }
            }
            // Worker completions (checked every tick: the wake may have
            // raced the previous drain). Filling slots may reopen pipeline
            // headroom, so frames still buffered in the decoder are
            // processed here too — a client that sent its whole burst up
            // front never deadlocks on the pipeline cap.
            let completions =
                std::mem::take(&mut *self.shared.completions.lock().expect("completions poisoned"));
            for (token, seq, frame) in completions {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.complete(seq, frame);
                    self.process_decoder(token, &mut tick_batch);
                    touched.push(token);
                }
            }
            if self.accept_ready_after_backoff(now) || accept_ready {
                self.accept_pending(now);
            }
            if !tick_batch.is_empty() {
                self.metrics.batch_size.observe(tick_batch.len() as f64);
                // `serve.batch`: each request's wait from decode to
                // dispatch (the cost of riding this tick's batch). The
                // clock is read once per tick and only when some request
                // in the batch is sampled.
                if tick_batch.iter().any(|item| item.ctx.is_sampled()) {
                    let dispatched_ns = self.trace.tracer.now_ns();
                    for item in &tick_batch {
                        self.trace.tracer.record(
                            item.ctx,
                            self.trace.batch,
                            item.decoded_ns,
                            dispatched_ns,
                        );
                    }
                }
                self.shared
                    .queue
                    .lock()
                    .expect("worker queue poisoned")
                    .push_back(std::mem::take(&mut tick_batch));
                self.shared.available.notify_one();
            }
            touched.sort_unstable();
            touched.dedup();
            for &token in &touched {
                self.flush_conn(token);
            }
            self.sweep_idle(now);
        }
        self.teardown();
    }

    /// The poll timeout: a quarter of the idle timeout (so sweeps are
    /// timely even with no traffic), shortened further while the accept
    /// loop is backing off.
    fn tick_timeout(&self) -> Duration {
        let base = (self.config.idle_timeout / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(500));
        match self.accept_paused_until {
            Some(until) => base
                .min(until.saturating_duration_since(Instant::now()))
                .max(Duration::from_millis(1)),
            None => base,
        }
    }

    /// Re-registers the listener once a resource-error backoff elapses.
    fn accept_ready_after_backoff(&mut self, now: Instant) -> bool {
        match self.accept_paused_until {
            Some(until) if now >= until => {
                self.accept_paused_until = None;
                if self
                    .poller
                    .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)
                    .is_err()
                {
                    // Registration failing here is unrecoverable-ish; retry
                    // on the next tick.
                    self.accept_paused_until = Some(now + accept_backoff(0));
                    return false;
                }
                true
            }
            _ => false,
        }
    }

    fn accept_pending(&mut self, now: Instant) {
        loop {
            let accept_ns = self.trace.tracer.now_ns();
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.consecutive_accept_errors = 0;
                    if self.conns.len() >= self.config.max_connections {
                        // Accept-then-drop: the backlog drains and the peer
                        // sees an immediate close instead of a hang.
                        self.metrics.rejected.inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.register(stream.as_raw_fd(), token, Interest::READABLE).is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream, now));
                    self.metrics.accepted.inc();
                    self.metrics.connections.add(1.0);
                    // Each accepted connection gets a tiny single-span
                    // trace covering the handshake + registration.
                    let ctx = self.trace.tracer.begin_trace();
                    if ctx.is_sampled() {
                        self.trace.tracer.record(
                            ctx,
                            self.trace.accept,
                            accept_ns,
                            self.trace.tracer.now_ns(),
                        );
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if accept_error_is_transient(e.kind()) => {
                    self.metrics.accept_errors.inc();
                    continue;
                }
                Err(_) => {
                    // Resource exhaustion (EMFILE & friends): deregister the
                    // listener and back off exponentially — retrying now
                    // would fail again and spin a core.
                    self.metrics.accept_errors.inc();
                    let backoff = accept_backoff(self.consecutive_accept_errors);
                    self.consecutive_accept_errors =
                        self.consecutive_accept_errors.saturating_add(1);
                    let _ = self.poller.deregister(self.listener.as_raw_fd());
                    self.accept_paused_until = Some(now + backoff);
                    break;
                }
            }
        }
    }

    /// Reads and decodes everything the socket has. Returns true when the
    /// connection still exists (and needs a flush/interest update).
    fn conn_readable(&mut self, token: u64, now: Instant, tick_batch: &mut Batch) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        if conn.paused_read || conn.closing {
            return true;
        }
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = now;
                    conn.decoder.extend(&buf[..n]);
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(token);
                    return false;
                }
            }
        }
        self.process_decoder(token, tick_batch);
        true
    }

    /// Decodes every complete frame buffered for `token`, respecting the
    /// pipeline cap (excess frames stay in the decoder for a later pass).
    fn process_decoder(&mut self, token: u64, tick_batch: &mut Batch) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        while conn.pending.len() < self.config.max_pipeline && !conn.closing {
            match conn.decoder.next_frame() {
                Ok(Some(payload)) => {
                    // The sampling decision is taken per frame, before
                    // decoding: an unsampled request must never read the
                    // clock (monotonic reads are the dominant tracing
                    // cost, ~50 ns each on virtualized hosts).
                    let ctx = self.trace.tracer.begin_trace();
                    let frame_ns = if ctx.is_sampled() { self.trace.tracer.now_ns() } else { 0 };
                    match decode_request(&payload) {
                        Ok(request) => match request_query(&request) {
                            Some(query) => {
                                // A query request gets a trace root
                                // (`serve.request`) opened at frame
                                // availability and closed when its
                                // response's last byte hits the wire.
                                let root =
                                    self.trace.tracer.open_at(ctx, self.trace.request, frame_ns);
                                let decoded_ns =
                                    if ctx.is_sampled() { self.trace.tracer.now_ns() } else { 0 };
                                self.trace.tracer.record(
                                    root.ctx(),
                                    self.trace.decode,
                                    frame_ns,
                                    decoded_ns,
                                );
                                let seq = conn.push_request(Some(root));
                                tick_batch.push(BatchItem {
                                    token,
                                    seq,
                                    ctx: root.ctx(),
                                    decoded_ns,
                                    query,
                                });
                            }
                            None => {
                                let seq = conn.push_request(None);
                                let response = inline_response(&request, &self.service);
                                conn.complete(seq, frame_bytes(&encode_response(&response)));
                            }
                        },
                        Err(
                            e @ (ProtocolError::UnknownOpcode(_) | ProtocolError::Malformed(_)),
                        ) => {
                            // Framing is intact: answer the error, go on.
                            let seq = conn.push_request(None);
                            let response = Response::Error(format!("bad request: {e}"));
                            conn.complete(seq, frame_bytes(&encode_response(&response)));
                        }
                        Err(e) => {
                            let seq = conn.push_request(None);
                            let response = Response::Error(format!("bad request: {e}"));
                            conn.complete(seq, frame_bytes(&encode_response(&response)));
                            conn.closing = true;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Frame-level failure (oversized length prefix): the
                    // byte stream's framing is lost — answer and close.
                    let response = Response::Error(format!("protocol error: {e}"));
                    let seq = conn.push_request(None);
                    conn.complete(seq, frame_bytes(&encode_response(&response)));
                    conn.closing = true;
                }
            }
        }
        conn.paused_read = conn.pending.len() >= self.config.max_pipeline;
    }

    /// Flushes a connection, applies the backpressure cap, updates
    /// readiness interest, and reaps it when done for.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut finished: Vec<(ActiveSpan, u64)> = Vec::new();
        let flushed = conn.flush(&mut finished);
        record_finished_writes(&self.trace, &mut finished);
        if flushed.is_err() {
            self.drop_conn(token);
            return;
        }
        // The cap is checked *after* the write attempt: a fast consumer
        // with a momentarily large burst is fine; only a peer that stops
        // reading accumulates past it.
        if conn.queued_bytes > self.config.max_outbound_bytes {
            self.metrics.backpressure_disconnects.inc();
            self.drop_conn(token);
            return;
        }
        let done_writing = conn.outbound.is_empty();
        if done_writing && conn.closing {
            self.drop_conn(token);
            return;
        }
        if done_writing && conn.read_closed && conn.pending.is_empty() {
            self.drop_conn(token);
            return;
        }
        let (interest, want_read) = conn.desired_interest(self.config.max_pipeline);
        conn.paused_read = !want_read && !conn.read_closed && !conn.closing;
        if interest != conn.interest {
            conn.interest = interest;
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, interest).is_err() {
                self.drop_conn(token);
            }
        }
    }

    /// Closes connections that have been silent past the idle timeout. A
    /// half-delivered frame gets an explanatory error response first; a
    /// genuinely idle connection closes silently.
    fn sweep_idle(&mut self, now: Instant) {
        let idle_timeout = self.config.idle_timeout;
        let mut expired: Vec<(u64, bool)> = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.closing {
                continue;
            }
            if now.duration_since(conn.last_activity) >= idle_timeout {
                expired.push((token, conn.decoder.has_partial()));
            }
        }
        for (token, mid_frame) in expired {
            if mid_frame {
                let Some(conn) = self.conns.get_mut(&token) else { continue };
                let response = Response::Error(format!(
                    "request timed out mid-frame after {idle_timeout:?} without a byte"
                ));
                let seq = conn.push_request(None);
                conn.complete(seq, frame_bytes(&encode_response(&response)));
                conn.closing = true;
                self.flush_conn(token);
            } else {
                self.drop_conn(token);
            }
        }
    }

    fn drop_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.metrics.connections.add(-1.0);
        }
    }

    /// Deterministic teardown: every connection closed and deregistered,
    /// every worker joined, before the reactor thread exits.
    fn teardown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.drop_conn(token);
        }
        self.shared.stop_workers.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_accept_errors_are_classified() {
        assert!(accept_error_is_transient(std::io::ErrorKind::ConnectionAborted));
        assert!(accept_error_is_transient(std::io::ErrorKind::ConnectionReset));
        assert!(accept_error_is_transient(std::io::ErrorKind::Interrupted));
        // EMFILE surfaces as an uncategorized kind — resource, not transient.
        let emfile = std::io::Error::from_raw_os_error(24);
        assert!(!accept_error_is_transient(emfile.kind()));
        assert!(!accept_error_is_transient(std::io::ErrorKind::OutOfMemory));
    }

    #[test]
    fn accept_backoff_is_exponential_and_capped() {
        assert_eq!(accept_backoff(0), Duration::from_millis(10));
        assert_eq!(accept_backoff(1), Duration::from_millis(20));
        assert_eq!(accept_backoff(4), Duration::from_millis(160));
        assert_eq!(accept_backoff(7), Duration::from_millis(1280));
        // …and never overflows however long the outage lasts.
        assert_eq!(accept_backoff(u32::MAX), Duration::from_millis(1280));
    }

    #[test]
    fn pending_slots_release_responses_in_request_order() {
        // A connection whose completions arrive out of order must still
        // emit frames in sequence order. Use a socket pair for a real
        // TcpStream; only the slot bookkeeping is under test.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let _keep_alive = client;

        let mut conn = Conn::new(stream, Instant::now());
        let s0 = conn.push_request(None);
        let s1 = conn.push_request(None);
        let s2 = conn.push_request(None);

        conn.complete(s2, vec![2]);
        assert!(conn.outbound.is_empty(), "seq 2 must wait for 0 and 1");
        conn.complete(s0, vec![0]);
        assert_eq!(conn.outbound.len(), 1, "head release stops at the unfilled slot");
        conn.complete(s1, vec![1]);
        let order: Vec<u8> = conn.outbound.iter().map(|f| f.bytes[0]).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(conn.queued_bytes, 3);
        assert!(conn.pending.is_empty());

        // A stale completion (connection already advanced past it) is a
        // no-op rather than a panic.
        conn.complete(s0, vec![9]);
        assert_eq!(conn.outbound.len(), 3);
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.max_connections >= 10_000, "the ROADMAP target is 10k+ clients");
        assert!(config.resolved_workers() >= 1);
        assert!(config.max_outbound_bytes > 0);
        assert!(config.max_pipeline > 0);
    }
}
