//! Little-endian encode primitives shared by the snapshot format and the
//! wire protocol. (The two decoders keep separate bounds-checked readers
//! because they report genuinely different error types — rich
//! truncation/section diagnostics for files, compact ones for frames.)

/// Appends a `u32` in little-endian order.
pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 little-endian bit pattern.
pub(crate) fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
