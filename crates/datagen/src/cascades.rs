//! Continuous-time cascade generation.
//!
//! Each action starts with a Zipf-sized set of initiators (sampled by
//! activity weight) and propagates as a continuous-time independent
//! cascade: when `u` activates at time `t`, each out-edge `(u, v)` fires
//! with the planted probability; on success `v` activates at
//! `t + Exp(mean_delay(u, v))` unless an earlier activation already won.
//! The emitted `(user, action, time)` tuples are exactly the action-log
//! format of §4 — with real time stamps, not IC rounds, so the EM
//! adaptation and the CD model's time decay both have something to learn.

use crate::groundtruth::{sample_user, GroundTruth};
use cdim_actionlog::{ActionLog, ActionLogBuilder};
use cdim_graph::{DirectedGraph, NodeId};
use cdim_util::rng::Zipf;
use cdim_util::{OrdF64, Rng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cascade-generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CascadeConfig {
    /// Number of actions (propagation traces) to generate.
    pub actions: usize,
    /// Zipf exponent for the initiator-count distribution.
    pub initiator_zipf_s: f64,
    /// Maximum number of initiators per action.
    pub max_initiators: usize,
    /// Hard cap on a single cascade's size (bounds generation cost).
    pub max_cascade_size: usize,
    /// Spacing between action start times (keeps actions disjoint in
    /// time; purely cosmetic since models treat actions independently).
    pub action_spacing: f64,
    /// Per-action virality spread: each action `a` draws a strength
    /// multiplier `s_a = exp(N(0, σ²) − σ²/2)` (mean 1) applied to every
    /// edge probability during its cascade. Real actions differ wildly in
    /// influence-proneness (Goyal et al., WSDM 2010) — a static per-edge
    /// IC probability cannot represent this, which is part of why
    /// trace-based prediction (CD) is more robust. `0` disables.
    pub virality_sigma: f64,
    /// Expected number of *exogenous* adopters per action (Poisson):
    /// users who perform the action without a network cause (media,
    /// offline influence). Real logs are full of these; they are the
    /// model misspecification that separates trace-calibrated predictors
    /// (CD) from propagation models fitted as if every adoption had a
    /// network explanation (§3's EM adaptation).
    pub exogenous_rate: f64,
    /// Time window after the action start within which exogenous adopters
    /// arrive.
    pub exogenous_window: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            actions: 1000,
            initiator_zipf_s: 1.6,
            max_initiators: 12,
            max_cascade_size: 2_000,
            action_spacing: 10_000.0,
            virality_sigma: 0.45,
            exogenous_rate: 1.0,
            exogenous_window: 25.0,
            seed: 7,
        }
    }
}

/// Generates an action log by simulating cascades over the planted
/// ground truth.
pub fn generate_cascades(
    graph: &DirectedGraph,
    truth: &GroundTruth,
    config: CascadeConfig,
) -> ActionLog {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut builder = ActionLogBuilder::new(graph.num_nodes());
    let cdf = truth.activity_cdf();
    let zipf = Zipf::new(config.max_initiators.max(1), config.initiator_zipf_s);

    // Per-user activation time for the current action; f64::INFINITY when
    // inactive. Epoch-reset via touched list.
    let mut activation = vec![f64::INFINITY; graph.num_nodes()];
    let mut touched: Vec<NodeId> = Vec::new();

    for a in 0..config.actions as u32 {
        for &t in &touched {
            activation[t as usize] = f64::INFINITY;
        }
        touched.clear();

        let t0 = a as f64 * config.action_spacing;
        let virality = if config.virality_sigma > 0.0 {
            let sigma = config.virality_sigma;
            rng.normal(-sigma * sigma / 2.0, sigma).exp()
        } else {
            1.0
        };
        let n_init = zipf.sample(&mut rng);
        // Tentative-activation-time priority queue (earliest first).
        let mut queue: BinaryHeap<(Reverse<OrdF64>, NodeId)> = BinaryHeap::new();
        for _ in 0..n_init {
            let u = sample_user(&cdf, &mut rng);
            let t = t0 + rng.range_f64(0.0, 1.0);
            if t < activation[u as usize] {
                if activation[u as usize].is_infinite() {
                    touched.push(u);
                }
                activation[u as usize] = t;
                queue.push((Reverse(OrdF64(t)), u));
            }
        }
        // Exogenous adopters: no network cause, arbitrary arrival within
        // the window. They still expose their own neighbors onward.
        for _ in 0..rng.poisson(config.exogenous_rate) {
            let u = sample_user(&cdf, &mut rng);
            let t = t0 + rng.range_f64(0.0, config.exogenous_window.max(1e-9));
            if t < activation[u as usize] {
                if activation[u as usize].is_infinite() {
                    touched.push(u);
                }
                activation[u as usize] = t;
                queue.push((Reverse(OrdF64(t)), u));
            }
        }

        let mut activated = 0usize;
        while let Some((Reverse(OrdF64(t)), u)) = queue.pop() {
            if t > activation[u as usize] {
                continue; // superseded by an earlier activation
            }
            builder.push(u, a, t);
            activated += 1;
            if activated >= config.max_cascade_size {
                break;
            }
            let range = graph.out_range(u);
            let targets = graph.out_targets();
            for pos in range {
                let v = targets[pos];
                if activation[v as usize] <= t {
                    continue; // already active earlier
                }
                if rng.bool((truth.probs.out(pos) * virality).min(1.0)) {
                    let tv = t + rng.exp(truth.mean_delay[pos]);
                    if tv < activation[v as usize] {
                        if activation[v as usize].is_infinite() {
                            touched.push(v);
                        }
                        activation[v as usize] = tv;
                        queue.push((Reverse(OrdF64(tv)), v));
                    }
                }
            }
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{preferential_attachment, GraphGenConfig};
    use crate::groundtruth::GroundTruthConfig;
    use cdim_actionlog::PropagationDag;

    fn setup() -> (DirectedGraph, GroundTruth) {
        let g = preferential_attachment(GraphGenConfig {
            nodes: 300,
            attach: 6,
            reciprocity: 0.3,
            seed: 4,
        });
        let gt = GroundTruth::generate(&g, GroundTruthConfig::default());
        (g, gt)
    }

    #[test]
    fn generates_requested_actions() {
        let (g, gt) = setup();
        let log = generate_cascades(&g, &gt, CascadeConfig { actions: 200, ..Default::default() });
        assert_eq!(log.num_actions(), 200);
        assert!(log.num_tuples() >= 200, "each action has ≥1 initiator");
    }

    #[test]
    fn cascades_are_heavy_tailed() {
        let (g, gt) = setup();
        let log = generate_cascades(&g, &gt, CascadeConfig { actions: 400, ..Default::default() });
        let mut sizes: Vec<usize> = log.actions().map(|a| log.action_size(a)).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let median = sizes[sizes.len() / 2];
        assert!(sizes[0] >= 5 * median.max(1), "max {} vs median {median}", sizes[0]);
    }

    #[test]
    fn respects_cascade_cap() {
        let (g, gt) = setup();
        let log = generate_cascades(
            &g,
            &gt,
            CascadeConfig { actions: 100, max_cascade_size: 10, ..Default::default() },
        );
        for a in log.actions() {
            assert!(log.action_size(a) <= 10);
        }
    }

    #[test]
    fn timestamps_propagate_forward() {
        let (g, gt) = setup();
        let log = generate_cascades(&g, &gt, CascadeConfig { actions: 100, ..Default::default() });
        // Propagation DAG parents always precede children — guaranteed by
        // construction, but verify end-to-end through the real pipeline.
        for a in log.actions().take(20) {
            let dag = PropagationDag::build(&log, &g, a);
            for i in 0..dag.len() {
                for &p in dag.parents_of(i) {
                    assert!(dag.time(p as usize) < dag.time(i));
                }
            }
        }
    }

    #[test]
    fn propagation_actually_happens_along_edges() {
        let (g, gt) = setup();
        let log = generate_cascades(&g, &gt, CascadeConfig { actions: 300, ..Default::default() });
        let with_parents: usize = log
            .actions()
            .map(|a| {
                let dag = PropagationDag::build(&log, &g, a);
                (0..dag.len()).filter(|&i| dag.in_degree(i) > 0).count()
            })
            .sum();
        assert!(with_parents > log.num_actions() / 2, "only {with_parents} influenced activations");
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, gt) = setup();
        let cfg = CascadeConfig { actions: 50, ..Default::default() };
        assert_eq!(generate_cascades(&g, &gt, cfg), generate_cascades(&g, &gt, cfg));
    }
}
