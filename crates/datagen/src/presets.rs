//! Named dataset presets mirroring Table 1 (scaled).
//!
//! The paper's datasets, and our laptop-scale stand-ins (scale factors are
//! documented per experiment in EXPERIMENTS.md):
//!
//! | paper            | nodes | edges | props | here             | nodes |
//! |------------------|-------|-------|-------|------------------|-------|
//! | Flixster_Small   | 13K   | 192K  | 25K   | `flixster_small` | 1.6K  |
//! | Flickr_Small     | 14.8K | 1.17M | 28.5K | `flickr_small`   | 1.9K  |
//! | Flixster_Large   | 1M    | 28M   | 49K   | `flixster_large` | 60K   |
//! | Flickr_Large     | 1.32M | 81M   | 296K  | `flickr_large`   | 90K   |
//!
//! The *Small* presets keep the paper's contrast: Flixster-like sparse
//! (avg degree ≈ 14) vs Flickr-like dense (avg degree ≈ 60+). The *Large*
//! presets exist to exercise scalability (Figs 8–9, Table 4), not
//! accuracy.

use crate::cascades::{generate_cascades, CascadeConfig};
use crate::graphgen::{preferential_attachment, GraphGenConfig};
use crate::groundtruth::{GroundTruth, GroundTruthConfig};
use cdim_actionlog::ActionLog;
use cdim_graph::DirectedGraph;

/// Everything needed to run an experiment on one dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Preset name (e.g. `flixster_small`).
    pub name: &'static str,
    /// The social graph.
    pub graph: DirectedGraph,
    /// The full action log (experiments split it 80/20 themselves).
    pub log: ActionLog,
    /// The planted ground truth (not visible to any learner; kept for
    /// diagnostics).
    pub truth: GroundTruth,
}

/// A fully-specified generation recipe.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Preset name.
    pub name: &'static str,
    /// Graph recipe.
    pub graph: GraphGenConfig,
    /// Ground-truth recipe.
    pub truth: GroundTruthConfig,
    /// Cascade recipe.
    pub cascades: CascadeConfig,
}

impl DatasetSpec {
    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let graph = preferential_attachment(self.graph);
        let truth = GroundTruth::generate(&graph, self.truth);
        let log = generate_cascades(&graph, &truth, self.cascades);
        Dataset { name: self.name, graph, log, truth }
    }

    /// Returns a copy scaled down by `factor` (nodes and actions divided),
    /// for quick tests and benches.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1);
        self.graph.nodes = (self.graph.nodes / factor).max(50);
        self.cascades.actions = (self.cascades.actions / factor).max(20);
        self
    }
}

/// Flixster-like sparse community (accuracy experiments).
pub fn flixster_small() -> DatasetSpec {
    DatasetSpec {
        name: "flixster_small",
        graph: GraphGenConfig { nodes: 1_600, attach: 7, reciprocity: 0.35, seed: 0xF1A },
        truth: GroundTruthConfig { max_prob: 0.42, seed: 0xF1B, ..Default::default() },
        cascades: CascadeConfig {
            actions: 3_100,
            max_cascade_size: 1_000,
            seed: 0xF1C,
            ..Default::default()
        },
    }
}

/// Flickr-like dense community (accuracy experiments; MC-greedy hostile).
pub fn flickr_small() -> DatasetSpec {
    DatasetSpec {
        name: "flickr_small",
        graph: GraphGenConfig { nodes: 1_900, attach: 30, reciprocity: 0.5, seed: 0xF2A },
        truth: GroundTruthConfig {
            // Denser graph: weaker ties (mean p ≈ 0.018 at avg degree ≈ 42
            // keeps the cascade branching factor just below 1), or
            // everything merges into one global cascade.
            max_prob: 0.09,
            prob_skew: 4.0,
            seed: 0xF2B,
            ..Default::default()
        },
        cascades: CascadeConfig {
            actions: 3_600,
            max_cascade_size: 600,
            seed: 0xF2C,
            ..Default::default()
        },
    }
}

/// Flixster-like large network (scalability experiments).
pub fn flixster_large() -> DatasetSpec {
    DatasetSpec {
        name: "flixster_large",
        graph: GraphGenConfig { nodes: 60_000, attach: 12, reciprocity: 0.35, seed: 0xF3A },
        truth: GroundTruthConfig {
            // Avg degree ≈ 16: rescale tie strength for subcritical spread.
            max_prob: 0.22,
            seed: 0xF3B,
            ..Default::default()
        },
        cascades: CascadeConfig {
            actions: 6_000,
            max_cascade_size: 2_000,
            seed: 0xF3C,
            ..Default::default()
        },
    }
}

/// Flickr-like large network (scalability experiments).
pub fn flickr_large() -> DatasetSpec {
    DatasetSpec {
        name: "flickr_large",
        graph: GraphGenConfig { nodes: 90_000, attach: 25, reciprocity: 0.5, seed: 0xF4A },
        truth: GroundTruthConfig {
            // Avg degree ≈ 37: weak ties keep cascades heavy-tailed.
            max_prob: 0.085,
            prob_skew: 4.0,
            seed: 0xF4B,
            ..Default::default()
        },
        cascades: CascadeConfig {
            actions: 5_000,
            max_cascade_size: 1_500,
            seed: 0xF4C,
            ..Default::default()
        },
    }
}

/// All four presets, small first.
pub fn all_presets() -> Vec<DatasetSpec> {
    vec![flixster_small(), flickr_small(), flixster_large(), flickr_large()]
}

/// A miniature dataset for unit tests and doc examples (fast to build).
///
/// ```
/// let ds = cdim_datagen::presets::tiny().generate();
/// assert_eq!(ds.graph.num_nodes(), 120);
/// assert_eq!(ds.log.num_actions(), 250);
/// // Fixed seeds: regeneration is bit-identical.
/// assert_eq!(ds.log, cdim_datagen::presets::tiny().generate().log);
/// ```
pub fn tiny() -> DatasetSpec {
    DatasetSpec {
        name: "tiny",
        graph: GraphGenConfig { nodes: 120, attach: 5, reciprocity: 0.3, seed: 0x71 },
        truth: GroundTruthConfig { seed: 0x72, ..Default::default() },
        cascades: CascadeConfig {
            actions: 250,
            max_cascade_size: 60,
            seed: 0x73,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::stats::log_stats;
    use cdim_graph::stats::graph_stats;

    #[test]
    fn tiny_preset_generates_quickly_and_sanely() {
        let ds = tiny().generate();
        assert_eq!(ds.graph.num_nodes(), 120);
        assert_eq!(ds.log.num_actions(), 250);
        assert_eq!(ds.log.num_users(), ds.graph.num_nodes());
        let stats = log_stats(&ds.log);
        assert!(stats.tuples >= 250);
    }

    #[test]
    fn small_presets_have_contrasting_density() {
        let fx = flixster_small().scaled_down(4).generate();
        let fl = flickr_small().scaled_down(4).generate();
        let fx_deg = graph_stats(&fx.graph).avg_degree;
        let fl_deg = graph_stats(&fl.graph).avg_degree;
        assert!(
            fl_deg > 2.5 * fx_deg,
            "flickr-like ({fl_deg}) must be much denser than flixster-like ({fx_deg})"
        );
    }

    #[test]
    fn scaled_down_shrinks() {
        let spec = flixster_small().scaled_down(8);
        assert_eq!(spec.graph.nodes, 200);
        assert_eq!(spec.cascades.actions, 387);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = tiny().generate();
        let b = tiny().generate();
        assert_eq!(a.log, b.log);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn all_presets_enumerates_four() {
        let names: Vec<_> = all_presets().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["flixster_small", "flickr_small", "flixster_large", "flickr_large"]);
    }
}
