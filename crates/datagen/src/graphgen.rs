//! Social-graph generation.
//!
//! Directed preferential attachment: nodes arrive one at a time and wire
//! `attach` out-edges to existing nodes sampled proportionally to
//! (in-degree + 1). Each edge is reciprocated with probability
//! `reciprocity` — follower graphs like Flixster's are partially mutual.
//! The result has the heavy-tailed in-degree distribution that the
//! weighted-cascade method and the PageRank baseline are sensitive to.

use cdim_graph::{DirectedGraph, GraphBuilder, NodeId};
use cdim_util::Rng;

/// Preferential-attachment parameters.
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-edges created per arriving node.
    pub attach: usize,
    /// Probability that an edge is reciprocated.
    pub reciprocity: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig { nodes: 1000, attach: 7, reciprocity: 0.3, seed: 1 }
    }
}

/// Generates a preferential-attachment digraph.
pub fn preferential_attachment(config: GraphGenConfig) -> DirectedGraph {
    let GraphGenConfig { nodes, attach, reciprocity, seed } = config;
    let mut rng = Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(nodes);
    if nodes == 0 {
        return builder.build();
    }
    // `endpoints` holds one entry per (in-)edge endpoint plus one per node,
    // so sampling from it is proportional to in-degree + 1.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(nodes * (attach + 1));
    endpoints.push(0);

    for u in 1..nodes as NodeId {
        let m = attach.min(u as usize);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 20 * m {
            guard += 1;
            let v = endpoints[rng.index(endpoints.len())];
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            builder.push_edge(u, v);
            endpoints.push(v);
            if rng.bool(reciprocity) {
                builder.push_edge(v, u);
                endpoints.push(u);
            }
        }
        endpoints.push(u);
    }
    builder.build()
}

/// Uniform random digraph (Erdős–Rényi G(n, m)); used in tests where
/// degree structure should be flat.
pub fn random_digraph(nodes: usize, edges: usize, seed: u64) -> DirectedGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(nodes);
    if nodes < 2 {
        return builder.build();
    }
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < edges && guard < 20 * edges + 100 {
        guard += 1;
        let u = rng.below(nodes as u64) as NodeId;
        let v = rng.below(nodes as u64) as NodeId;
        if u != v {
            builder.push_edge(u, v);
            added += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_graph::stats::graph_stats;

    #[test]
    fn produces_requested_scale() {
        let g = preferential_attachment(GraphGenConfig {
            nodes: 500,
            attach: 6,
            reciprocity: 0.25,
            seed: 7,
        });
        assert_eq!(g.num_nodes(), 500);
        let s = graph_stats(&g);
        // ~6 out-edges per node plus ~25% reciprocals.
        assert!(s.avg_degree > 5.0 && s.avg_degree < 9.0, "avg = {}", s.avg_degree);
        assert!(s.reciprocity > 0.15, "reciprocity = {}", s.reciprocity);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = preferential_attachment(GraphGenConfig {
            nodes: 2000,
            attach: 5,
            reciprocity: 0.0,
            seed: 3,
        });
        let mut in_degrees: Vec<usize> = g.nodes().map(|u| g.in_degree(u)).collect();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        // The top node should hold far more than the mean in-degree.
        let mean = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(in_degrees[0] as f64 > 8.0 * mean, "hub degree {} vs mean {mean}", in_degrees[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GraphGenConfig { nodes: 300, attach: 4, reciprocity: 0.5, seed: 11 };
        assert_eq!(preferential_attachment(cfg), preferential_attachment(cfg));
        let other = GraphGenConfig { seed: 12, ..cfg };
        assert_ne!(preferential_attachment(cfg), preferential_attachment(other));
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = preferential_attachment(GraphGenConfig {
            nodes: 200,
            attach: 8,
            reciprocity: 0.4,
            seed: 5,
        });
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
            let nbrs = g.out_neighbors(u);
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1], "duplicate neighbor");
            }
        }
    }

    #[test]
    fn random_digraph_hits_target_size() {
        let g = random_digraph(100, 400, 2);
        assert_eq!(g.num_nodes(), 100);
        // Duplicates collapse, so allow slack.
        assert!(g.num_edges() > 300, "edges = {}", g.num_edges());
    }

    #[test]
    fn tiny_configs_do_not_panic() {
        assert_eq!(
            preferential_attachment(GraphGenConfig { nodes: 0, ..Default::default() }).num_nodes(),
            0
        );
        assert_eq!(
            preferential_attachment(GraphGenConfig { nodes: 1, ..Default::default() }).num_edges(),
            0
        );
        assert_eq!(random_digraph(1, 10, 1).num_edges(), 0);
    }
}
