#![warn(missing_docs)]
//! Synthetic social networks and action logs.
//!
//! The paper evaluates on proprietary crawls of Flixster (movie ratings)
//! and Flickr (group joins). Those crawls are not redistributable, so this
//! crate synthesizes datasets with the same *shape* (see DESIGN.md §3 for
//! the substitution argument):
//!
//! * [`graphgen`] — directed preferential-attachment social graphs with
//!   tunable average degree and reciprocity (heavy-tailed degrees, like
//!   real follower graphs);
//! * [`groundtruth`] — a *planted* influence process: per-edge influence
//!   probabilities and mean propagation delays, per-user activity;
//! * [`cascades`] — continuous-time independent-cascade simulation that
//!   emits `(user, action, time)` tuples — the ground-truth process the
//!   learners (EM, LT weights, CD) later try to recover;
//! * [`presets`] — the four named datasets mirroring Table 1, scaled to
//!   laptop size with fixed seeds.

pub mod cascades;
pub mod graphgen;
pub mod groundtruth;
pub mod presets;

pub use cascades::{generate_cascades, CascadeConfig};
pub use graphgen::{preferential_attachment, GraphGenConfig};
pub use groundtruth::{GroundTruth, GroundTruthConfig};
pub use presets::{Dataset, DatasetSpec};
