//! Planted ground-truth influence processes.
//!
//! The generator plants the quantities the learners will later try to
//! recover from traces alone:
//!
//! * per-edge influence probability `p(v,u)` — heavy-tailed (most ties are
//!   weak, a few are strong), scaled by the source's planted "influencer
//!   strength";
//! * per-edge mean propagation delay (drives the exponential time decay
//!   that the CD model's Eq 9 exploits);
//! * per-user activity weight (who initiates actions — heavy-tailed, as
//!   in real logs where a small core originates most content).

use cdim_diffusion::EdgeProbabilities;
use cdim_graph::DirectedGraph;
use cdim_util::Rng;

/// Ground-truth generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GroundTruthConfig {
    /// Lower bound of edge influence probability.
    pub min_prob: f64,
    /// Upper bound of edge influence probability.
    pub max_prob: f64,
    /// Skew exponent: probabilities are `min + (max-min)·x^skew` for
    /// uniform `x`, so larger values mean more weak ties.
    pub prob_skew: f64,
    /// Fraction of users designated strong influencers (their out-edges
    /// get a probability boost).
    pub influencer_fraction: f64,
    /// Multiplier on influencers' out-edge probabilities.
    pub influencer_boost: f64,
    /// Mean of the per-edge mean-delay distribution (exponential).
    pub delay_scale: f64,
    /// Zipf exponent for user activity weights.
    pub activity_skew: f64,
    /// Audience-saturation damping: a source's edge probabilities are
    /// divided by `1 + hub_damping · out_degree/avg_out_degree`, modelling
    /// the well-documented decay of per-follower influence with audience
    /// size. Also keeps preferential-attachment hubs from making every
    /// cascade supercritical. `0` disables.
    pub hub_damping: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        // Tuned so that cascades on an average-degree-≈8 graph sit just
        // below criticality: most traces stay small, a few percolate into
        // large ones — the heavy-tailed size profile of real logs.
        GroundTruthConfig {
            min_prob: 0.004,
            max_prob: 0.35,
            prob_skew: 4.0,
            influencer_fraction: 0.03,
            influencer_boost: 2.5,
            delay_scale: 5.0,
            activity_skew: 1.2,
            hub_damping: 0.5,
            seed: 99,
        }
    }
}

/// A planted influence process over a fixed graph.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// True influence probability per edge.
    pub probs: EdgeProbabilities,
    /// True mean propagation delay per edge (out-aligned).
    pub mean_delay: Vec<f64>,
    /// Initiator-sampling weight per user (sums to 1).
    pub activity: Vec<f64>,
    /// Which users are planted strong influencers.
    pub is_influencer: Vec<bool>,
}

impl GroundTruth {
    /// Plants a ground-truth process on `graph`.
    pub fn generate(graph: &DirectedGraph, config: GroundTruthConfig) -> Self {
        let mut rng = Rng::seed_from_u64(config.seed);
        let n = graph.num_nodes();
        let m = graph.num_edges();

        let is_influencer: Vec<bool> =
            (0..n).map(|_| rng.bool(config.influencer_fraction)).collect();

        let avg_out = if n > 0 { (m as f64 / n as f64).max(1.0) } else { 1.0 };
        let mut out_probs = vec![0.0f64; m];
        let mut mean_delay = vec![0.0f64; m];
        for u in graph.nodes() {
            let boost = if is_influencer[u as usize] { config.influencer_boost } else { 1.0 };
            let saturation = 1.0 + config.hub_damping * graph.out_degree(u) as f64 / avg_out;
            for pos in graph.out_range(u) {
                let x = rng.f64().powf(config.prob_skew);
                let p = config.min_prob + (config.max_prob - config.min_prob) * x;
                out_probs[pos] = (p * boost / saturation).clamp(0.0, 1.0);
                mean_delay[pos] = rng.exp(config.delay_scale).max(1e-3);
            }
        }

        // Heavy-tailed activity: weight ∝ 1 / rank^skew over a random
        // permutation of users.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut activity = vec![0.0f64; n];
        let mut total = 0.0;
        for (rank, &u) in order.iter().enumerate() {
            let w = 1.0 / ((rank + 1) as f64).powf(config.activity_skew);
            activity[u] = w;
            total += w;
        }
        if total > 0.0 {
            for w in &mut activity {
                *w /= total;
            }
        }

        GroundTruth {
            probs: EdgeProbabilities::from_out_aligned(graph, out_probs),
            mean_delay,
            activity,
            is_influencer,
        }
    }

    /// Cumulative activity distribution for O(log n) weighted sampling.
    pub fn activity_cdf(&self) -> Vec<f64> {
        let mut cdf = Vec::with_capacity(self.activity.len());
        let mut acc = 0.0;
        for &w in &self.activity {
            acc += w;
            cdf.push(acc);
        }
        cdf
    }
}

/// Samples a user index from a cumulative activity distribution.
pub fn sample_user(cdf: &[f64], rng: &mut Rng) -> u32 {
    let x = rng.f64() * cdf.last().copied().unwrap_or(1.0);
    match cdf.binary_search_by(|p| p.partial_cmp(&x).unwrap()) {
        Ok(i) | Err(i) => (i.min(cdf.len().saturating_sub(1))) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{preferential_attachment, GraphGenConfig};

    fn graph() -> DirectedGraph {
        preferential_attachment(GraphGenConfig { nodes: 400, attach: 6, reciprocity: 0.3, seed: 2 })
    }

    #[test]
    fn probabilities_in_bounds() {
        let g = graph();
        let gt = GroundTruth::generate(&g, GroundTruthConfig::default());
        for &p in gt.probs.out_view() {
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(gt.mean_delay.len(), g.num_edges());
        assert!(gt.mean_delay.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn activity_is_a_distribution() {
        let g = graph();
        let gt = GroundTruth::generate(&g, GroundTruthConfig::default());
        let sum: f64 = gt.activity.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(gt.activity.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let g = graph();
        let gt = GroundTruth::generate(&g, GroundTruthConfig::default());
        let mut sorted = gt.activity.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10: f64 = sorted.iter().take(40).sum(); // top 10%
        assert!(top10 > 0.4, "top decile holds {top10}");
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let g = graph();
        let gt = GroundTruth::generate(&g, GroundTruthConfig::default());
        let cdf = gt.activity_cdf();
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = vec![0usize; g.num_nodes()];
        for _ in 0..30_000 {
            counts[sample_user(&cdf, &mut rng) as usize] += 1;
        }
        // The most active user must be sampled far more often than a
        // median-activity user.
        let top =
            gt.activity.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(counts[top] > 1000, "top user sampled {} times", counts[top]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let a = GroundTruth::generate(&g, GroundTruthConfig::default());
        let b = GroundTruth::generate(&g, GroundTruthConfig::default());
        assert_eq!(a.probs, b.probs);
        assert_eq!(a.activity, b.activity);
    }

    #[test]
    fn influencers_exist_at_requested_rate() {
        let g = graph();
        let gt = GroundTruth::generate(
            &g,
            GroundTruthConfig { influencer_fraction: 0.25, ..Default::default() },
        );
        let count = gt.is_influencer.iter().filter(|&&b| b).count();
        let frac = count as f64 / g.num_nodes() as f64;
        assert!((frac - 0.25).abs() < 0.08, "fraction = {frac}");
    }
}
