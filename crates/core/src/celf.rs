//! Algorithms 3–5: CELF seed selection under the CD model.
//!
//! The selector never touches the action log after the scan. Marginal
//! gains come from Theorem 3:
//!
//! ```text
//! σ(S+x) − σ(S) = Σ_a (1 − Γ_{S,x}(a)) · Σ_u Γ^{V−S}_{x,u}(a) / A_u
//! ```
//!
//! where the inner sum includes the `u = x` self term `1/A_x`. The paper's
//! Algorithm 4 adds `1/A_x` only for actions in which `x` holds outgoing
//! credit; we follow Theorem 3 and iterate *all* actions `x` performed
//! (see DESIGN.md §2.1 — the pseudocode variant is available as
//! [`CdSelector::compute_mg_pseudocode`] for the ablation).
//!
//! When a seed is chosen, [`CdSelector::update`] applies Lemma 3 to SC and
//! Lemma 2 to UC, then retires the new seed's credit row and column —
//! `x ∉ V − S` any more, so credits into or out of `x` must not survive
//! (DESIGN.md §2.2).

use crate::store::{pair_key, CreditStore, CreditStoreDump};
use cdim_maxim::Selection;
use cdim_util::{FxHashMap, OrdF64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Packs an `(action, user)` pair for the SC map.
#[inline]
fn sc_key(a: u32, u: u32) -> u64 {
    pair_key(a, u)
}

/// Stateful CD seed selector (Algorithm 3).
#[derive(Clone, Debug)]
pub struct CdSelector {
    pub(crate) store: CreditStore,
    /// `SC[x][a] = Γ_{S,x}(a)` for the current seed set.
    sc: FxHashMap<u64, f64>,
    pub(crate) seeds: Vec<u32>,
}

impl CdSelector {
    /// Wraps a scanned credit store.
    pub fn new(store: CreditStore) -> Self {
        CdSelector { store, sc: FxHashMap::default(), seeds: Vec::new() }
    }

    /// Seeds chosen so far.
    pub fn seeds(&self) -> &[u32] {
        &self.seeds
    }

    /// Read access to the (updated) credit store.
    pub fn store(&self) -> &CreditStore {
        &self.store
    }

    /// Exports the full selector state (store, SC map, chosen seeds) as
    /// plain data — the serialization hook snapshot persistence builds on.
    /// SC entries are emitted in sorted `(action, user)` order, making the
    /// dump canonical.
    pub fn dump(&self) -> SelectorDump {
        let mut sc: Vec<(u32, u32, f64)> =
            self.sc.iter().map(|(&key, &c)| ((key >> 32) as u32, key as u32, c)).collect();
        sc.sort_unstable_by_key(|&(a, u, _)| sc_key(a, u));
        SelectorDump { store: self.store.dump(), sc, seeds: self.seeds.clone() }
    }

    /// Rebuilds a selector from a [`dump`](Self::dump). Two selectors
    /// restored from equal dumps answer every query identically (bit-exact
    /// floating-point sums included).
    pub fn from_dump(dump: &SelectorDump) -> Self {
        let mut sc = FxHashMap::default();
        for &(a, u, c) in &dump.sc {
            sc.insert(sc_key(a, u), c);
        }
        CdSelector { store: CreditStore::from_dump(&dump.store), sc, seeds: dump.seeds.clone() }
    }

    /// Theorem-3 marginal gain of adding `x` to the current seed set.
    pub fn compute_mg(&self, x: u32) -> f64 {
        let inv_ax = self.store.inv_au(x);
        if inv_ax == 0.0 {
            return 0.0; // user never acted: the log carries no evidence
        }
        let mut mg = 0.0;
        for &a in self.store.actions_of_user(x) {
            let sc_xa = self.sc.get(&sc_key(a, x)).copied().unwrap_or(0.0);
            let factor = (1.0 - sc_xa).max(0.0);
            if factor == 0.0 {
                continue;
            }
            let mut mga = inv_ax; // the u = x self term
            for (u, c) in self.store.action(a).targets_of(x) {
                mga += c * self.store.inv_au(u);
            }
            mg += mga * factor;
        }
        mg
    }

    /// The paper's literal Algorithm 4: like [`Self::compute_mg`] but the
    /// self term is only added for actions where `x` holds outgoing
    /// credit. Kept for the `ablate-mg` experiment.
    pub fn compute_mg_pseudocode(&self, x: u32) -> f64 {
        let inv_ax = self.store.inv_au(x);
        if inv_ax == 0.0 {
            return 0.0;
        }
        let mut mg = 0.0;
        for &a in self.store.actions_of_user(x) {
            let ac = self.store.action(a);
            let mut mga = 0.0;
            let mut any = false;
            for (u, c) in ac.targets_of(x) {
                any = true;
                mga += c * self.store.inv_au(u);
            }
            if !any {
                continue;
            }
            mga += inv_ax;
            let sc_xa = self.sc.get(&sc_key(a, x)).copied().unwrap_or(0.0);
            mg += mga * (1.0 - sc_xa).max(0.0);
        }
        mg
    }

    /// Algorithm 5: adds `x` to the seed set and updates UC (Lemma 2) and
    /// SC (Lemma 3) incrementally.
    pub fn update(&mut self, x: u32) {
        // Credits involving x exist only in actions x performed, so the
        // per-user action index bounds the walk.
        let actions: Vec<u32> = self.store.actions_of_user(x).to_vec();
        for a in actions {
            self.apply_seed_to_action(a, x);
        }
        self.seeds.push(x);
    }

    /// One action's worth of [`Self::update`]: retires `x` from action `a`
    /// and applies the Lemma 2/3 credit algebra. Actions are independent,
    /// which is what lets the incremental path (`extend`) replay already
    /// committed seeds over freshly appended actions only.
    pub(crate) fn apply_seed_to_action(&mut self, a: u32, x: u32) {
        let sc_xa = self.sc.get(&sc_key(a, x)).copied().unwrap_or(0.0);
        let one_minus = (1.0 - sc_xa).max(0.0);
        let (gout, gin) = self.store.action_mut(a).retire(x);
        // Lemma 3: Γ_{S+x,u} = Γ_{S,u} + Γ^{V−S}_{x,u}·(1 − Γ_{S,x}).
        for &(u, cxu) in &gout {
            let e = self.sc.entry(sc_key(a, u)).or_insert(0.0);
            *e = (*e + cxu * one_minus).min(1.0);
        }
        // Lemma 2: Γ^{W−x}_{v,u} = Γ^W_{v,u} − Γ^W_{v,x}·Γ^W_{x,u}.
        let ac = self.store.action_mut(a);
        for &(v, cvx) in &gin {
            for &(u, cxu) in &gout {
                ac.subtract(v, u, cvx * cxu);
            }
        }
    }

    /// Drops SC entries of the first `k` actions and renumbers the
    /// survivors down by `k` — the SC half of a sliding-window
    /// retraction. SC is keyed per `(action, user)` and each entry
    /// depends only on its own action's credits plus the seed sequence,
    /// so the surviving entries equal what a fresh window-only selector
    /// would accumulate replaying the same seeds.
    pub(crate) fn retract_sc_prefix(&mut self, k: u32) {
        if k == 0 {
            return;
        }
        let old = std::mem::take(&mut self.sc);
        self.sc.reserve(old.len());
        for (key, c) in old {
            let a = (key >> 32) as u32;
            if a >= k {
                self.sc.insert(sc_key(a - k, key as u32), c);
            }
        }
    }

    /// Runs CELF until `k` seeds are chosen; returns the selection and
    /// consumes the selector. Candidates are all users that performed at
    /// least one action.
    pub fn select(self, k: usize) -> Selection {
        self.select_with_mode(k, MgMode::Theorem3)
    }

    /// Like [`Self::select`] but with an explicit marginal-gain mode
    /// (the `ablate-mg` experiment compares the two).
    pub fn select_with_mode(mut self, k: usize, mode: MgMode) -> Selection {
        let (gains, evaluations) = run_celf(&mut self, k, mode);
        Selection { seeds: self.seeds, marginal_gains: gains, evaluations }
    }
}

/// The state interface the CELF driver (Algorithm 3) runs against.
///
/// Two engines implement it: the mutable [`CdSelector`] and the
/// flat-array overlay in [`crate::compact`]. Sharing one driver is what
/// makes their answers *bit-identical* for canonically restored state —
/// the candidate enumeration, heap discipline, and every f64 accumulation
/// order are structurally the same code.
pub(crate) trait CelfEngine {
    /// Users in the id space (the candidate range).
    fn num_users(&self) -> usize;
    /// Seeds committed so far.
    fn seeds_len(&self) -> usize;
    /// `Σ_a Σ_u Γ_{x,u}(a)·1/A_u` for every user `x` — the credit half of
    /// the `S = ∅` bulk pass. Implementations must accumulate per
    /// out-row, actions in ascending order, rows in each row's traversal
    /// order: every contribution to `initial[x]` comes from `x`'s own
    /// rows, so the per-user sums are then deterministic for canonically
    /// ordered state regardless of how the row *set* is iterated.
    fn initial_credit_gains(&self) -> Vec<f64>;
    /// `1 / A_x` (0 for users that never acted, who are not candidates).
    fn inv_au_of(&self, x: u32) -> f64;
    /// The self-credit half of the `S = ∅` bulk pass for candidate `x`
    /// (mode-dependent; see [`MgMode`]). Summed per performed action with
    /// the same accumulation order as the full marginal-gain formula.
    fn self_term(&self, x: u32, mode: MgMode) -> f64;
    /// Theorem-3 (or pseudocode) marginal gain of `x` under the current
    /// seed set.
    fn mg(&self, x: u32, mode: MgMode) -> f64;
    /// Commits `x` as a seed and applies the Lemma 2/3 updates.
    fn commit(&mut self, x: u32);
}

/// Algorithm 3's CELF loop over any [`CelfEngine`]: bulk first pass, then
/// lazy re-evaluation off a max-heap (ties break toward the smaller user
/// id). Returns the per-seed gains and the evaluation count; the chosen
/// seeds accumulate inside the engine.
pub(crate) fn run_celf<E: CelfEngine>(engine: &mut E, k: usize, mode: MgMode) -> (Vec<f64>, usize) {
    let mut evaluations = 0usize;
    let mut gains = Vec::with_capacity(k);
    let mut heap: BinaryHeap<(OrdF64, Reverse<u32>, usize)> =
        BinaryHeap::with_capacity(engine.num_users());

    // First pass: S = ∅, so SC = 0 and mg(x) = σ_cd({x}). One bulk sweep
    // over the credit rows computes every candidate's gain at once — the
    // per-user formula would pay an index probe per entry, which
    // dominates selection time on multi-million-entry stores. (Theorem3
    // and Pseudocode agree on all credit terms; they differ only in the
    // self term.)
    let initial = engine.initial_credit_gains();
    for x in 0..engine.num_users() as u32 {
        if engine.inv_au_of(x) == 0.0 {
            continue;
        }
        evaluations += 1;
        heap.push((OrdF64(initial[x as usize] + engine.self_term(x, mode)), Reverse(x), 0));
    }

    while engine.seeds_len() < k {
        let Some((OrdF64(mg), Reverse(x), round)) = heap.pop() else {
            break;
        };
        if round == engine.seeds_len() {
            gains.push(mg);
            engine.commit(x);
        } else {
            let fresh = engine.mg(x, mode);
            evaluations += 1;
            heap.push((OrdF64(fresh), Reverse(x), engine.seeds_len()));
        }
    }

    (gains, evaluations)
}

impl CelfEngine for CdSelector {
    fn num_users(&self) -> usize {
        self.store.num_users()
    }

    fn seeds_len(&self) -> usize {
        self.seeds.len()
    }

    fn initial_credit_gains(&self) -> Vec<f64> {
        let mut initial = vec![0.0f64; self.store.num_users()];
        for a in 0..self.store.num_actions() as u32 {
            let ac = self.store.action(a);
            for (v, row) in ac.out_rows() {
                let acc = &mut initial[v as usize];
                for &u in row {
                    *acc += ac.get(v, u) * self.store.inv_au(u);
                }
            }
        }
        initial
    }

    fn inv_au_of(&self, x: u32) -> f64 {
        self.store.inv_au(x)
    }

    fn self_term(&self, x: u32, mode: MgMode) -> f64 {
        let inv_ax = self.store.inv_au(x);
        match mode {
            // inv_ax summed over every action x performed is exactly 1 up
            // to rounding; use the same per-action accumulation as
            // compute_mg for bit-identical refresh comparisons.
            MgMode::Theorem3 => self.store.actions_of_user(x).iter().map(|_| inv_ax).sum::<f64>(),
            MgMode::Pseudocode => self
                .store
                .actions_of_user(x)
                .iter()
                .filter(|&&a| self.store.action(a).has_influencer(x))
                .map(|_| inv_ax)
                .sum::<f64>(),
        }
    }

    fn mg(&self, x: u32, mode: MgMode) -> f64 {
        match mode {
            MgMode::Theorem3 => self.compute_mg(x),
            MgMode::Pseudocode => self.compute_mg_pseudocode(x),
        }
    }

    fn commit(&mut self, x: u32) {
        self.update(x);
    }
}

/// Plain-data image of a [`CdSelector`] (see [`CdSelector::dump`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SelectorDump {
    /// The (possibly Lemma-2-updated) credit store.
    pub store: CreditStoreDump,
    /// `(action, user, Γ_{S,u}(a))` triples sorted by `(action, user)`.
    pub sc: Vec<(u32, u32, f64)>,
    /// Seeds chosen so far, in selection order.
    pub seeds: Vec<u32>,
}

/// Which marginal-gain formula Algorithm 3 runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MgMode {
    /// The Theorem-3-faithful gain (self term for every performed action).
    Theorem3,
    /// The paper's literal Algorithm-4 pseudocode (self term only for
    /// actions with outgoing credit).
    Pseudocode,
}

/// Convenience: scan-independent one-call selection.
pub fn select_seeds(store: CreditStore, k: usize) -> Selection {
    CdSelector::new(store).select(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CreditPolicy;
    use crate::reference;
    use crate::scan::scan;
    use cdim_actionlog::{ActionLog, ActionLogBuilder};
    use cdim_graph::{DirectedGraph, GraphBuilder};

    fn figure1() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(6)
            .edges([(0, 2), (1, 2), (0, 3), (2, 4), (0, 5), (2, 5), (3, 5), (4, 5)])
            .build();
        let mut b = ActionLogBuilder::new(6);
        for (u, t) in [(0u32, 0.0), (1, 0.5), (2, 1.0), (3, 1.5), (4, 2.0), (5, 2.5)] {
            b.push(u, 0, t);
        }
        (graph, b.build())
    }

    #[test]
    fn first_marginal_gain_is_sigma_singleton() {
        let (graph, log) = figure1();
        let policy = CreditPolicy::Uniform;
        let store = scan(&graph, &log, &policy, 0.0).unwrap();
        let sel = CdSelector::new(store);
        for x in 0..6u32 {
            let mg = sel.compute_mg(x);
            let expect = reference::sigma_cd(&graph, &log, &policy, &[x]);
            assert!((mg - expect).abs() < 1e-12, "user {x}: {mg} vs {expect}");
        }
    }

    #[test]
    fn marginal_gains_match_reference_after_updates() {
        let (graph, log) = figure1();
        let policy = CreditPolicy::Uniform;
        let store = scan(&graph, &log, &policy, 0.0).unwrap();
        let mut sel = CdSelector::new(store);
        sel.update(0); // S = {v}
        let base = reference::sigma_cd(&graph, &log, &policy, &[0]);
        for x in 1..6u32 {
            let mg = sel.compute_mg(x);
            let expect = reference::sigma_cd(&graph, &log, &policy, &[0, x]) - base;
            assert!((mg - expect).abs() < 1e-12, "S={{0}}, x={x}: {mg} vs {expect}");
        }
        // Second update and re-check.
        sel.update(4); // S = {v, z}
        let base2 = reference::sigma_cd(&graph, &log, &policy, &[0, 4]);
        for x in [1u32, 2, 3, 5] {
            let mg = sel.compute_mg(x);
            let expect = reference::sigma_cd(&graph, &log, &policy, &[0, 4, x]) - base2;
            assert!((mg - expect).abs() < 1e-12, "S={{0,4}}, x={x}: {mg} vs {expect}");
        }
    }

    #[test]
    fn selection_telescopes_to_sigma() {
        let (graph, log) = figure1();
        let policy = CreditPolicy::Uniform;
        let store = scan(&graph, &log, &policy, 0.0).unwrap();
        let sel = select_seeds(store, 3);
        let sigma = reference::sigma_cd(&graph, &log, &policy, &sel.seeds);
        assert!(
            (sel.total_gain() - sigma).abs() < 1e-12,
            "telescoped {} vs direct {}",
            sel.total_gain(),
            sigma
        );
    }

    #[test]
    fn matches_exact_greedy() {
        let (graph, log) = figure1();
        let policy = CreditPolicy::Uniform;
        let store = scan(&graph, &log, &policy, 0.0).unwrap();
        let cd = select_seeds(store, 3);
        let eval = crate::spread::CdSpreadEvaluator::build(&graph, &log, &policy);
        let greedy = cdim_maxim::greedy_select(&eval, 3);
        assert_eq!(cd.seeds, greedy.seeds);
    }

    #[test]
    fn inactive_users_are_never_selected() {
        let graph = GraphBuilder::new(4).edges([(0, 1), (3, 0)]).build();
        let mut b = ActionLogBuilder::new(4);
        b.push(0, 0, 0.0);
        b.push(1, 0, 1.0);
        let log = b.build();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let sel = select_seeds(store, 4);
        // Users 2 and 3 never acted: only 0 and 1 are eligible.
        assert_eq!(sel.seeds.len(), 2);
        assert!(!sel.seeds.contains(&2));
        assert!(!sel.seeds.contains(&3));
    }

    #[test]
    fn pseudocode_mg_never_exceeds_theorem3() {
        let (graph, log) = figure1();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let sel = CdSelector::new(store);
        for x in 0..6u32 {
            let full = sel.compute_mg(x);
            let pseudo = sel.compute_mg_pseudocode(x);
            assert!(pseudo <= full + 1e-12, "user {x}: {pseudo} > {full}");
        }
        // The sink user (5) influences nobody: pseudocode says 0, Theorem 3
        // says 1 (its own activation).
        assert_eq!(sel.compute_mg_pseudocode(5), 0.0);
        assert!((sel.compute_mg(5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_cover_reduction_of_theorem1() {
        // The NP-hardness reduction: undirected triangle + pendant.
        //   G: 0-1, 1-2, 2-0, 2-3. {0, 2} is a vertex cover of size 2.
        // The CD instance: bidirectional social edges; per undirected edge
        // two 2-node propagation traces (one per direction) with direct
        // credit α = 1 (uniform policy, d_in = 1).
        // Then S is a vertex cover of size k iff σ_cd(S) = k + (|V|−k)/2·α.
        let undirected = [(0u32, 1u32), (1, 2), (2, 0), (2, 3)];
        let mut gb = GraphBuilder::new(4);
        for &(u, v) in &undirected {
            gb.push_undirected(u, v);
        }
        let graph = gb.build();
        let mut b = ActionLogBuilder::new(4);
        let mut action = 0u32;
        for &(u, v) in &undirected {
            b.push(u, action, 0.0);
            b.push(v, action, 1.0);
            action += 1;
            b.push(v, action, 0.0);
            b.push(u, action, 1.0);
            action += 1;
        }
        let log = b.build();
        let policy = CreditPolicy::Uniform;

        let sigma = |s: &[u32]| reference::sigma_cd(&graph, &log, &policy, s);
        let threshold = |k: usize| k as f64 + (4.0 - k as f64) / 2.0;

        // Vertex covers meet the bound with equality.
        assert!((sigma(&[0, 2]) - threshold(2)).abs() < 1e-12);
        assert!((sigma(&[1, 2]) - threshold(2)).abs() < 1e-12);
        // Non-covers fall short.
        assert!(sigma(&[0, 1]) < threshold(2) - 1e-12);
        assert!(sigma(&[0, 3]) < threshold(2) - 1e-12);
        // And the CD CELF finds a cover-grade seed set.
        let store = scan(&graph, &log, &policy, 0.0).unwrap();
        let sel = select_seeds(store, 2);
        assert!(sigma(&sel.seeds) >= threshold(2) - 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::policy::CreditPolicy;
    use crate::reference;
    use crate::scan::scan;
    use crate::spread::CdSpreadEvaluator;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// End-to-end: on random instances with λ = 0, the specialized
        /// Algorithm-3 selection equals generic greedy over the exact
        /// σ_cd oracle — seeds and telescoped gains.
        #[test]
        fn cd_celf_equals_exact_greedy(
            edges in proptest::collection::vec((0u32..7, 0u32..7), 0..30),
            events in proptest::collection::vec((0u32..7, 0u32..3, 0u64..12), 1..35),
            k in 1usize..4,
            time_aware in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(7).edges(edges).build();
            let mut b = ActionLogBuilder::new(7);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let store = scan(&graph, &log, &policy, 0.0).unwrap();
            let cd = select_seeds(store, k);

            let eval = CdSpreadEvaluator::build(&graph, &log, &policy);
            // Restrict greedy to active users (CD candidates).
            let candidates: Vec<u32> = (0..7u32)
                .filter(|&u| log.actions_performed_by(u) > 0)
                .collect();
            let greedy = cdim_maxim::greedy::greedy_select_from(&eval, k, &candidates);
            // Exact ties may resolve differently between the two
            // implementations (f64 summation order differs by a few ulp),
            // so we compare the achieved spreads and per-step gains, which
            // is the property the greedy guarantee is about.
            prop_assert_eq!(cd.seeds.len(), greedy.seeds.len());
            let cd_sigma = eval.spread(&cd.seeds);
            let greedy_sigma = eval.spread(&greedy.seeds);
            prop_assert!((cd_sigma - greedy_sigma).abs() < 1e-9,
                "cd {:?} -> {cd_sigma} vs greedy {:?} -> {greedy_sigma}",
                cd.seeds, greedy.seeds);
            for (a, b) in cd.marginal_gains.iter().zip(&greedy.marginal_gains) {
                prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }

        /// Incremental updates stay exact over several seeds: after any
        /// update sequence, compute_mg equals the brute-force marginal.
        #[test]
        fn updates_remain_exact(
            edges in proptest::collection::vec((0u32..6, 0u32..6), 0..25),
            events in proptest::collection::vec((0u32..6, 0u32..2, 0u64..10), 1..25),
            seed_order in proptest::sample::subsequence((0u32..6).collect::<Vec<_>>(), 1..4),
        ) {
            let graph = GraphBuilder::new(6).edges(edges).build();
            let mut b = ActionLogBuilder::new(6);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = CreditPolicy::Uniform;
            let store = scan(&graph, &log, &policy, 0.0).unwrap();
            let mut sel = CdSelector::new(store);
            let mut current: Vec<u32> = Vec::new();

            for s in seed_order {
                // Check all candidates against the reference first.
                let base = reference::sigma_cd(&graph, &log, &policy, &current);
                for x in 0..6u32 {
                    if current.contains(&x) || log.actions_performed_by(x) == 0 {
                        continue;
                    }
                    let mut with_x = current.clone();
                    with_x.push(x);
                    let expect = reference::sigma_cd(&graph, &log, &policy, &with_x) - base;
                    let got = sel.compute_mg(x);
                    prop_assert!((got - expect).abs() < 1e-9,
                        "S={current:?} x={x}: {got} vs {expect}");
                }
                sel.update(s);
                current.push(s);
            }
        }
    }
}
