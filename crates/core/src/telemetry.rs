//! Scan instrumentation: per-shard wall time and pool utilization.
//!
//! The scan reports into the process-wide
//! [`cdim_obs::MetricsRegistry::global`] registry so its series show up on
//! the same scrape endpoint and wire dump as the serve and ingest layers:
//!
//! * `cdim_scan_seconds` — histogram, wall time of the whole parallel
//!   section of each [`crate::scan_with`] call;
//! * `cdim_scan_shard_seconds` — histogram, wall time of each worker's
//!   shard (the p99/max spread diagnoses shard imbalance);
//! * `cdim_scan_pool_workers` — gauge, workers used by the latest scan;
//! * `cdim_scan_pool_utilization` — gauge, `Σ shard time / (wall ×
//!   workers)` of the latest scan: 1.0 means every worker was busy the
//!   whole section, low values mean stragglers dominated.
//!
//! Recording happens strictly *outside* the per-action kernel — the
//! instrumented quantities are shard-level wall times, so the hot path of
//! [`crate::scan_action`] is untouched and the model bytes cannot depend
//! on whether anyone is scraping.
//!
//! The same shard times also feed the process-global span flight
//! recorder ([`cdim_obs::Tracer::global`]): each scan becomes a derived
//! `core.scan` root with one `core.scan_shard` child per worker,
//! reconstructed *post-hoc* from the wall measurements — tracing shares
//! the kernel-untouched guarantee with the metrics.

use cdim_obs::{Gauge, Histogram, MetricsRegistry, Stage, Tracer};
use std::sync::{Arc, OnceLock};

/// Handles into the global registry, resolved once per process.
pub(crate) struct ScanTelemetry {
    /// Whole-parallel-section wall time per scan call.
    pub scan_seconds: Arc<Histogram>,
    /// Per-worker shard wall time.
    pub shard_seconds: Arc<Histogram>,
    /// Workers used by the most recent scan.
    pub pool_workers: Arc<Gauge>,
    /// Busy fraction of the most recent scan.
    pub pool_utilization: Arc<Gauge>,
    /// The global flight recorder the derived scan trace lands in.
    tracer: Arc<Tracer>,
    /// `core.scan` — the whole parallel section.
    scan_stage: Stage,
    /// `core.scan_shard` — one worker's shard of it.
    shard_stage: Stage,
}

impl ScanTelemetry {
    /// The process-wide scan telemetry handles.
    pub(crate) fn get() -> &'static ScanTelemetry {
        static TELEMETRY: OnceLock<ScanTelemetry> = OnceLock::new();
        TELEMETRY.get_or_init(|| {
            let registry = MetricsRegistry::global();
            let tracer = Tracer::global();
            ScanTelemetry {
                scan_seconds: registry.histogram("cdim_scan_seconds"),
                shard_seconds: registry.histogram("cdim_scan_shard_seconds"),
                pool_workers: registry.gauge("cdim_scan_pool_workers"),
                pool_utilization: registry.gauge("cdim_scan_pool_utilization"),
                scan_stage: tracer.stage("core.scan"),
                shard_stage: tracer.stage("core.scan_shard"),
                tracer,
            }
        })
    }

    /// Record one scan's parallel section: total wall seconds, per-shard
    /// wall seconds, and the derived pool facts.
    pub(crate) fn record_scan(&self, wall_secs: f64, shard_secs: &[f64]) {
        self.scan_seconds.observe(wall_secs);
        let mut busy = 0.0;
        for &s in shard_secs {
            self.shard_seconds.observe(s);
            busy += s;
        }
        let workers = shard_secs.len();
        self.pool_workers.set(workers as f64);
        if workers > 0 && wall_secs > 0.0 {
            self.pool_utilization.set((busy / (wall_secs * workers as f64)).min(1.0));
        }
        // Derived trace: the section's interval is reconstructed as
        // [now − wall, now]; each shard child starts with the section
        // (workers launch together) and runs its own measured time,
        // clamped into the root so the nesting invariant holds under
        // floating-point jitter.
        let now = self.tracer.now_ns();
        let wall_ns = (wall_secs * 1e9) as u64;
        let start = now.saturating_sub(wall_ns);
        let ctx = self.tracer.begin_trace();
        let root = self.tracer.open_at(ctx, self.scan_stage, start);
        for &s in shard_secs {
            let shard_ns = ((s * 1e9) as u64).min(wall_ns);
            self.tracer.record(root.ctx(), self.shard_stage, start, start + shard_ns);
        }
        self.tracer.close_at(root, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_scan_populates_the_global_registry() {
        let t = ScanTelemetry::get();
        let before = t.scan_seconds.count();
        t.record_scan(2.0, &[1.0, 2.0]);
        assert_eq!(t.scan_seconds.count(), before + 1);
        // 3 busy seconds over 2 workers × 2 wall seconds = 0.75.
        assert!((t.pool_utilization.get() - 0.75).abs() < 1e-12);
        assert_eq!(t.pool_workers.get(), 2.0);
        // The series live in the global registry under their public names.
        let dump = MetricsRegistry::global().dump();
        assert!(dump.histograms.iter().any(|(n, _)| n == "cdim_scan_seconds"));
        assert!(dump.gauges.iter().any(|(n, _)| n == "cdim_scan_pool_utilization"));
    }

    #[test]
    fn degenerate_scans_do_not_divide_by_zero() {
        let t = ScanTelemetry::get();
        t.record_scan(0.0, &[]);
        assert!(t.pool_utilization.get().is_finite());
    }

    #[test]
    fn record_scan_derives_a_nested_trace() {
        // The global recorder samples 1-in-8 by default; this test needs
        // its specific trace captured.
        Tracer::global().set_sampling(1);
        let t = ScanTelemetry::get();
        // A distinctive shard count so this trace is findable in the
        // shared global recorder.
        t.record_scan(0.004, &[0.001, 0.002, 0.003]);
        let spans = Tracer::global().recent();
        let root = spans
            .iter()
            .filter(|s| s.stage == "core.scan" && s.parent_id == 0)
            .find(|root| {
                spans
                    .iter()
                    .filter(|s| s.trace_id == root.trace_id && s.stage == "core.scan_shard")
                    .count()
                    == 3
            })
            .expect("a 3-shard core.scan trace is in the recorder");
        for shard in
            spans.iter().filter(|s| s.trace_id == root.trace_id && s.span_id != root.span_id)
        {
            assert_eq!(shard.parent_id, root.span_id);
            assert!(root.start_ns <= shard.start_ns && shard.end_ns <= root.end_ns);
        }
    }
}
