//! CSR-flat, read-optimized form of the trained state.
//!
//! The mutable [`CreditStore`] is hashmap-of-hashmaps shaped — ideal for
//! the scan and for Lemma-2/3 updates, cache-hostile at 10⁶⁺ users. This
//! module freezes it into a [`CompactCreditStore`] / [`CompactSelector`]:
//! every per-action credit/out/inc adjacency flattened into CSR
//! offset+data arrays with *sorted* neighbor runs, all living in one
//! contiguous 8-byte-aligned arena ([`cdim_util::AlignedBuf`]). The arena
//! is also the v2 snapshot payload: the serving layer stores it verbatim
//! and reloads it by validate + reinterpret — no per-entry decode.
//!
//! ## Arena layout
//!
//! Sections in order, each 8-byte-aligned, sizes fully determined by
//! [`CompactCounts`] (`U` users, `A` actions, `R`/`R'` out/inc rows, `E`
//! entries):
//!
//! ```text
//! ua_offsets   (U+1)×u32   user → range into ua_data
//! ua_data      ua_len×u32  dense action ids each user performed
//! inv_au       U×f64       1/A_u per user
//! out_act_rows (A+1)×u32   action → range of out rows
//! out_row_user R×u32       row → influencer v (sorted per action)
//! out_row_offs (R+1)×u32   row → range of entries
//! out_targets  E×u32       entry → target u (sorted per row)
//! out_credits  E×f64       entry → Γ_{v,u}(a)
//! inc_act_rows (A+1)×u32   action → range of inc rows
//! inc_row_user R'×u32      row → target u (sorted per action)
//! inc_row_offs (R'+1)×u32  row → range of inc entries
//! inc_sources  E×u32       inc entry → source v (sorted per row)
//! sc_keys      sc_len×u64  packed (action, user), sorted
//! sc_vals      sc_len×f64  Γ_{S,u}(a)
//! seeds        seeds×u32   committed seeds, selection order
//! ```
//!
//! Credit values are stored once (in `out_credits`); the incoming
//! direction carries only source ids and finds each credit by binary
//! search over the source's sorted out run — two probes per entry when
//! retiring a user's column, in exchange for 4 fewer bytes per entry.
//!
//! ## Bit-identity contract
//!
//! Freezing sorts entries exactly like [`CreditStore::dump`], so a
//! compact store and a canonically restored mutable store (`from_dump`)
//! traverse credits in the same order — and because the compact query
//! engine ([`OverlaySelector`]) shares the CELF driver and mirrors every
//! f64 accumulation order of [`CdSelector`], the two answer every query
//! **bit-identically**. The incremental extend/retract path stays on the
//! mutable store: [`thaw`](CompactSelector::thaw) converts back.

use crate::celf::{run_celf, CdSelector, CelfEngine, MgMode};
use crate::store::{pair_key, CreditStore, CreditStoreDump};
use crate::SelectorDump;
use cdim_maxim::Selection;
use cdim_util::bytes::{
    cast_slice_f64, cast_slice_f64_mut, cast_slice_u32, cast_slice_u32_mut, cast_slice_u64,
    cast_slice_u64_mut,
};
use cdim_util::{AlignedBuf, FxHashMap, HeapSize};
use std::ops::Range;
use std::sync::Arc;

/// Element counts that fully determine the arena layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactCounts {
    /// Users in the id space.
    pub num_users: usize,
    /// Actions scanned.
    pub num_actions: usize,
    /// Total user→action index entries (Σ |actions_of_user|).
    pub ua_len: usize,
    /// Out-adjacency rows (Σ per action distinct influencers).
    pub out_rows: usize,
    /// Inc-adjacency rows (Σ per action distinct targets).
    pub inc_rows: usize,
    /// Live credit entries.
    pub entries: usize,
    /// SC map entries.
    pub sc_len: usize,
    /// Committed seeds.
    pub seeds_len: usize,
}

/// Byte ranges of each arena section (relative to the arena base).
#[derive(Clone, Debug)]
struct Layout {
    ua_offsets: Range<usize>,
    ua_data: Range<usize>,
    inv_au: Range<usize>,
    out_act_rows: Range<usize>,
    out_row_user: Range<usize>,
    out_row_offsets: Range<usize>,
    out_targets: Range<usize>,
    out_credits: Range<usize>,
    inc_act_rows: Range<usize>,
    inc_row_user: Range<usize>,
    inc_row_offsets: Range<usize>,
    inc_sources: Range<usize>,
    sc_keys: Range<usize>,
    sc_vals: Range<usize>,
    seeds: Range<usize>,
    total: usize,
}

const fn align8(x: usize) -> usize {
    (x + 7) & !7
}

impl CompactCounts {
    /// Offsets are u32; every count an offset array must express has to
    /// fit (`u32::MAX` itself is reserved so `len+1`-sized arrays fit
    /// too). At ~20 bytes/entry that bound is only reachable past ~80 GB
    /// of credits.
    fn check_offsets_fit(&self) {
        for (what, n) in [
            ("ua_len", self.ua_len),
            ("out_rows", self.out_rows),
            ("inc_rows", self.inc_rows),
            ("entries", self.entries),
        ] {
            assert!(
                n < u32::MAX as usize,
                "compact store overflow: {what} = {n} exceeds the u32 offset space"
            );
        }
    }

    fn layout(&self) -> Layout {
        let mut off = 0usize;
        let mut section = |bytes: usize| -> Range<usize> {
            let start = align8(off);
            off = start + bytes;
            start..start + bytes
        };
        let ua_offsets = section(4 * (self.num_users + 1));
        let ua_data = section(4 * self.ua_len);
        let inv_au = section(8 * self.num_users);
        let out_act_rows = section(4 * (self.num_actions + 1));
        let out_row_user = section(4 * self.out_rows);
        let out_row_offsets = section(4 * (self.out_rows + 1));
        let out_targets = section(4 * self.entries);
        let out_credits = section(8 * self.entries);
        let inc_act_rows = section(4 * (self.num_actions + 1));
        let inc_row_user = section(4 * self.inc_rows);
        let inc_row_offsets = section(4 * (self.inc_rows + 1));
        let inc_sources = section(4 * self.entries);
        let sc_keys = section(8 * self.sc_len);
        let sc_vals = section(8 * self.sc_len);
        let seeds = section(4 * self.seeds_len);
        let total = align8(off);
        Layout {
            ua_offsets,
            ua_data,
            inv_au,
            out_act_rows,
            out_row_user,
            out_row_offsets,
            out_targets,
            out_credits,
            inc_act_rows,
            inc_row_user,
            inc_row_offsets,
            inc_sources,
            sc_keys,
            sc_vals,
            seeds,
            total,
        }
    }

    /// Arena size in bytes for these counts.
    pub fn arena_len(&self) -> usize {
        self.layout().total
    }

    /// Counts of a selector dump (what [`CompactSelector::from_dump`]
    /// will build).
    pub fn of_dump(dump: &SelectorDump) -> CompactCounts {
        let store = &dump.store;
        let mut out_rows = 0usize;
        let mut inc_rows = 0usize;
        let mut entries = 0usize;
        for action in &store.credits {
            entries += action.len();
            // Entries are sorted by (v, u): out rows are the v-groups.
            let mut last_v = None;
            for &(v, _, _) in action {
                if last_v != Some(v) {
                    out_rows += 1;
                    last_v = Some(v);
                }
            }
            // Inc rows are the distinct targets.
            let mut targets: Vec<u32> = action.iter().map(|&(_, u, _)| u).collect();
            targets.sort_unstable();
            targets.dedup();
            inc_rows += targets.len();
        }
        CompactCounts {
            num_users: store.user_actions.len(),
            num_actions: store.credits.len(),
            ua_len: store.user_actions.iter().map(Vec::len).sum(),
            out_rows,
            inc_rows,
            entries,
            sc_len: dump.sc.len(),
            seeds_len: dump.seeds.len(),
        }
    }
}

/// The shared immutable payload: one arena plus the metadata to slice it.
#[derive(Debug)]
struct CompactData {
    buf: Arc<AlignedBuf>,
    /// Byte offset of the arena inside `buf` (0 for freeze-built arenas,
    /// the header size for snapshot-backed ones). Always 8-aligned.
    base: usize,
    counts: CompactCounts,
    layout: Layout,
    lambda: f64,
}

macro_rules! typed_section {
    ($name:ident, $cast:ident, $t:ty) => {
        #[inline]
        fn $name(&self) -> &[$t] {
            let r = &self.layout.$name;
            // Layout sections are 8-aligned on an 8-aligned arena base,
            // and sized as whole elements, so the cast cannot fail.
            $cast(&self.buf[self.base + r.start..self.base + r.end])
                .expect("arena section misaligned")
        }
    };
}

impl CompactData {
    typed_section!(ua_offsets, cast_slice_u32, u32);
    typed_section!(ua_data, cast_slice_u32, u32);
    typed_section!(inv_au, cast_slice_f64, f64);
    typed_section!(out_act_rows, cast_slice_u32, u32);
    typed_section!(out_row_user, cast_slice_u32, u32);
    typed_section!(out_row_offsets, cast_slice_u32, u32);
    typed_section!(out_targets, cast_slice_u32, u32);
    typed_section!(out_credits, cast_slice_f64, f64);
    typed_section!(inc_act_rows, cast_slice_u32, u32);
    typed_section!(inc_row_user, cast_slice_u32, u32);
    typed_section!(inc_row_offsets, cast_slice_u32, u32);
    typed_section!(inc_sources, cast_slice_u32, u32);
    typed_section!(sc_keys, cast_slice_u64, u64);
    typed_section!(sc_vals, cast_slice_f64, f64);
    typed_section!(seeds, cast_slice_u32, u32);

    fn arena(&self) -> &[u8] {
        &self.buf[self.base..self.base + self.layout.total]
    }

    #[inline]
    fn inv_au_of(&self, u: u32) -> f64 {
        self.inv_au()[u as usize]
    }

    #[inline]
    fn ua_row(&self, u: u32) -> &[u32] {
        let offs = self.ua_offsets();
        &self.ua_data()[offs[u as usize] as usize..offs[u as usize + 1] as usize]
    }

    /// Row-index range of action `a` in the out direction.
    #[inline]
    fn out_act_range(&self, a: u32) -> Range<usize> {
        let r = self.out_act_rows();
        r[a as usize] as usize..r[a as usize + 1] as usize
    }

    /// Row index of influencer `v` in action `a`, if `v` has a row.
    #[inline]
    fn out_row_of(&self, a: u32, v: u32) -> Option<usize> {
        let range = self.out_act_range(a);
        let users = &self.out_row_user()[range.clone()];
        users.binary_search(&v).ok().map(|i| range.start + i)
    }

    /// Entry-position range of out row `row`.
    #[inline]
    fn out_row_entries(&self, row: usize) -> Range<usize> {
        let offs = self.out_row_offsets();
        offs[row] as usize..offs[row + 1] as usize
    }

    #[inline]
    fn inc_act_range(&self, a: u32) -> Range<usize> {
        let r = self.inc_act_rows();
        r[a as usize] as usize..r[a as usize + 1] as usize
    }

    #[inline]
    fn inc_row_of(&self, a: u32, u: u32) -> Option<usize> {
        let range = self.inc_act_range(a);
        let users = &self.inc_row_user()[range.clone()];
        users.binary_search(&u).ok().map(|i| range.start + i)
    }

    #[inline]
    fn inc_row_entries(&self, row: usize) -> Range<usize> {
        let offs = self.inc_row_offsets();
        offs[row] as usize..offs[row + 1] as usize
    }

    /// Global out-entry position of `(a, v, u)`, if stored.
    #[inline]
    fn entry_pos(&self, a: u32, v: u32, u: u32) -> Option<usize> {
        let row = self.out_row_of(a, v)?;
        let entries = self.out_row_entries(row);
        let targets = &self.out_targets()[entries.clone()];
        targets.binary_search(&u).ok().map(|i| entries.start + i)
    }

    fn memory_bytes(&self) -> usize {
        self.buf.heap_bytes()
    }
}

// ------------------------------------------------------------------ freeze

/// Builds the arena from a canonical dump.
fn build(dump: &SelectorDump) -> Arc<CompactData> {
    let counts = CompactCounts::of_dump(dump);
    counts.check_offsets_fit();
    let layout = counts.layout();
    let store = &dump.store;
    let mut buf = AlignedBuf::zeroed(layout.total);

    // user → actions index.
    {
        let bytes = buf.as_mut_slice();
        let offs = cast_slice_u32_mut(&mut bytes[layout.ua_offsets.clone()]).unwrap();
        let mut running = 0u32;
        offs[0] = 0;
        for (u, actions) in store.user_actions.iter().enumerate() {
            running += actions.len() as u32;
            offs[u + 1] = running;
        }
    }
    {
        let bytes = buf.as_mut_slice();
        let data = cast_slice_u32_mut(&mut bytes[layout.ua_data.clone()]).unwrap();
        let mut at = 0usize;
        for actions in &store.user_actions {
            data[at..at + actions.len()].copy_from_slice(actions);
            at += actions.len();
        }
    }
    {
        let bytes = buf.as_mut_slice();
        let inv = cast_slice_f64_mut(&mut bytes[layout.inv_au.clone()]).unwrap();
        inv.copy_from_slice(&store.inv_au);
    }

    // Out direction: entries are already sorted by (v, u) per action.
    {
        let bytes = buf.as_mut_slice();
        // The sections are disjoint; split_at_mut-style reborrows via
        // pointers would be noisy, so fill through one pass per array.
        let mut row = 0u32;
        let mut pos = 0u32;
        {
            let act_rows = cast_slice_u32_mut(&mut bytes[layout.out_act_rows.clone()]).unwrap();
            act_rows[0] = 0;
        }
        for (a, action) in store.credits.iter().enumerate() {
            let mut last_v = None;
            for &(v, u, c) in action {
                if last_v != Some(v) {
                    let r = row as usize;
                    cast_slice_u32_mut(&mut bytes[layout.out_row_user.clone()]).unwrap()[r] = v;
                    cast_slice_u32_mut(&mut bytes[layout.out_row_offsets.clone()]).unwrap()[r] =
                        pos;
                    row += 1;
                    last_v = Some(v);
                }
                cast_slice_u32_mut(&mut bytes[layout.out_targets.clone()]).unwrap()[pos as usize] =
                    u;
                cast_slice_f64_mut(&mut bytes[layout.out_credits.clone()]).unwrap()[pos as usize] =
                    c;
                pos += 1;
            }
            cast_slice_u32_mut(&mut bytes[layout.out_act_rows.clone()]).unwrap()[a + 1] = row;
        }
        cast_slice_u32_mut(&mut bytes[layout.out_row_offsets.clone()]).unwrap()[counts.out_rows] =
            pos;
    }

    // Inc direction: per action, entries regrouped by (u, v). Credits are
    // not duplicated here; queries find them in `out_credits` by binary
    // search over the source's sorted out run.
    {
        let bytes = buf.as_mut_slice();
        let mut row = 0u32;
        let mut at = 0u32;
        {
            let act_rows = cast_slice_u32_mut(&mut bytes[layout.inc_act_rows.clone()]).unwrap();
            act_rows[0] = 0;
        }
        for (a, action) in store.credits.iter().enumerate() {
            let mut by_target: Vec<(u32, u32)> = action.iter().map(|&(v, u, _)| (u, v)).collect();
            by_target.sort_unstable_by_key(|&(u, v)| pair_key(u, v));
            let mut last_u = None;
            for &(u, v) in &by_target {
                if last_u != Some(u) {
                    let r = row as usize;
                    cast_slice_u32_mut(&mut bytes[layout.inc_row_user.clone()]).unwrap()[r] = u;
                    cast_slice_u32_mut(&mut bytes[layout.inc_row_offsets.clone()]).unwrap()[r] = at;
                    row += 1;
                    last_u = Some(u);
                }
                cast_slice_u32_mut(&mut bytes[layout.inc_sources.clone()]).unwrap()[at as usize] =
                    v;
                at += 1;
            }
            cast_slice_u32_mut(&mut bytes[layout.inc_act_rows.clone()]).unwrap()[a + 1] = row;
        }
        cast_slice_u32_mut(&mut bytes[layout.inc_row_offsets.clone()]).unwrap()[counts.inc_rows] =
            at;
    }

    // Selector state.
    {
        let bytes = buf.as_mut_slice();
        let keys = cast_slice_u64_mut(&mut bytes[layout.sc_keys.clone()]).unwrap();
        for (i, &(a, u, _)) in dump.sc.iter().enumerate() {
            keys[i] = pair_key(a, u);
        }
    }
    {
        let bytes = buf.as_mut_slice();
        let vals = cast_slice_f64_mut(&mut bytes[layout.sc_vals.clone()]).unwrap();
        for (i, &(_, _, c)) in dump.sc.iter().enumerate() {
            vals[i] = c;
        }
    }
    {
        let bytes = buf.as_mut_slice();
        let seeds = cast_slice_u32_mut(&mut bytes[layout.seeds.clone()]).unwrap();
        seeds.copy_from_slice(&dump.seeds);
    }

    Arc::new(CompactData { buf: Arc::new(buf), base: 0, counts, layout, lambda: store.lambda })
}

// ------------------------------------------------------------- public types

/// Read-only CSR-flat image of a [`CreditStore`].
#[derive(Clone, Debug)]
pub struct CompactCreditStore {
    data: Arc<CompactData>,
}

impl CompactCreditStore {
    /// Freezes a mutable store (entries sorted canonically, exactly like
    /// [`CreditStore::dump`]).
    pub fn freeze(store: &CreditStore) -> CompactCreditStore {
        let dump = SelectorDump { store: store.dump(), sc: Vec::new(), seeds: Vec::new() };
        CompactCreditStore { data: build(&dump) }
    }

    /// Reconstructs the mutable store — the path back for incremental
    /// extend/retract, which stay on the hashmap representation. The
    /// result is canonical: `store.dump() == freeze(store).thaw().dump()`.
    pub fn thaw(&self) -> CreditStore {
        CreditStore::from_dump(&self.store_dump())
    }

    fn store_dump(&self) -> CreditStoreDump {
        store_dump(&self.data)
    }

    /// Users in the id space.
    pub fn num_users(&self) -> usize {
        self.data.counts.num_users
    }

    /// Actions scanned.
    pub fn num_actions(&self) -> usize {
        self.data.counts.num_actions
    }

    /// Truncation threshold λ the store was built with.
    pub fn lambda(&self) -> f64 {
        self.data.lambda
    }

    /// Live credit entries.
    pub fn total_entries(&self) -> usize {
        self.data.counts.entries
    }

    /// `1 / A_u` (0 for users with no actions).
    pub fn inv_au(&self, u: u32) -> f64 {
        self.data.inv_au_of(u)
    }

    /// Dense action ids user `u` performed.
    pub fn actions_of_user(&self, u: u32) -> &[u32] {
        self.data.ua_row(u)
    }

    /// Resident bytes of the arena (owned or mapped).
    pub fn memory_bytes(&self) -> usize {
        self.data.memory_bytes()
    }
}

impl HeapSize for CompactCreditStore {
    fn heap_bytes(&self) -> usize {
        self.data.memory_bytes()
    }
}

fn store_dump(data: &CompactData) -> CreditStoreDump {
    let counts = &data.counts;
    let mut user_actions = Vec::with_capacity(counts.num_users);
    for u in 0..counts.num_users as u32 {
        user_actions.push(data.ua_row(u).to_vec());
    }
    let targets = data.out_targets();
    let credits_arr = data.out_credits();
    let row_user = data.out_row_user();
    let mut credits = Vec::with_capacity(counts.num_actions);
    for a in 0..counts.num_actions as u32 {
        let mut entries = Vec::new();
        for row in data.out_act_range(a) {
            let v = row_user[row];
            for pos in data.out_row_entries(row) {
                entries.push((v, targets[pos], credits_arr[pos]));
            }
        }
        credits.push(entries);
    }
    CreditStoreDump { lambda: data.lambda, user_actions, inv_au: data.inv_au().to_vec(), credits }
}

/// Read-only CSR-flat image of a full [`CdSelector`] (store + SC map +
/// committed seeds). Queries run through [`CompactSelector::overlay`].
#[derive(Clone, Debug)]
pub struct CompactSelector {
    data: Arc<CompactData>,
}

impl CompactSelector {
    /// Freezes a mutable selector (canonical entry order, as
    /// [`CdSelector::dump`] emits it).
    pub fn freeze(selector: &CdSelector) -> CompactSelector {
        Self::from_dump(&selector.dump())
    }

    /// Builds the arena from a canonical dump.
    pub fn from_dump(dump: &SelectorDump) -> CompactSelector {
        CompactSelector { data: build(dump) }
    }

    /// Exports the canonical dump (identical to the dump the selector was
    /// frozen from).
    pub fn to_dump(&self) -> SelectorDump {
        let data = &self.data;
        let sc = data
            .sc_keys()
            .iter()
            .zip(data.sc_vals())
            .map(|(&key, &c)| ((key >> 32) as u32, key as u32, c))
            .collect();
        SelectorDump { store: store_dump(data), sc, seeds: data.seeds().to_vec() }
    }

    /// Reconstructs the mutable selector (the extend/retract path).
    pub fn thaw(&self) -> CdSelector {
        CdSelector::from_dump(&self.to_dump())
    }

    /// Wraps a pre-built arena — the zero-copy snapshot load path. `base`
    /// is the arena's byte offset inside `buf`; the slice
    /// `buf[base..base + counts.arena_len()]` must hold a little-endian
    /// arena laid out per the module docs. Every structural invariant
    /// (offset monotonicity, id ranges, sorted runs, finite credits,
    /// position bounds) is validated before any query can run, so a
    /// corrupt arena yields `Err`, never a panic or out-of-bounds access.
    pub fn from_arena(
        buf: Arc<AlignedBuf>,
        base: usize,
        counts: CompactCounts,
        lambda: f64,
    ) -> Result<CompactSelector, String> {
        counts.check_offsets_fit();
        let layout = counts.layout();
        if !base.is_multiple_of(8) || !(buf.as_ptr() as usize + base).is_multiple_of(8) {
            return Err(format!("arena base {base} is not 8-byte-aligned"));
        }
        let end = base.checked_add(layout.total).ok_or("arena extent overflows")?;
        if end > buf.len() {
            return Err(format!(
                "arena needs {} bytes at offset {base}, buffer holds {}",
                layout.total,
                buf.len()
            ));
        }
        if lambda.is_nan() || lambda < 0.0 {
            return Err(format!("invalid lambda {lambda}"));
        }
        let data = CompactData { buf, base, counts, layout, lambda };
        validate(&data)?;
        Ok(CompactSelector { data: Arc::new(data) })
    }

    /// The raw arena bytes (what the v2 snapshot stores verbatim).
    pub fn arena(&self) -> &[u8] {
        self.data.arena()
    }

    /// The element counts (what the v2 snapshot header records).
    pub fn counts(&self) -> CompactCounts {
        self.data.counts
    }

    /// The flat credit store view (shares the arena).
    pub fn store(&self) -> CompactCreditStore {
        CompactCreditStore { data: Arc::clone(&self.data) }
    }

    /// Committed seeds, in selection order.
    pub fn seeds(&self) -> &[u32] {
        self.data.seeds()
    }

    /// Users in the id space.
    pub fn num_users(&self) -> usize {
        self.data.counts.num_users
    }

    /// Actions scanned.
    pub fn num_actions(&self) -> usize {
        self.data.counts.num_actions
    }

    /// Truncation threshold λ.
    pub fn lambda(&self) -> f64 {
        self.data.lambda
    }

    /// Live credit entries.
    pub fn total_entries(&self) -> usize {
        self.data.counts.entries
    }

    /// Resident bytes of the arena (owned or mapped).
    pub fn memory_bytes(&self) -> usize {
        self.data.memory_bytes()
    }

    /// Whether the arena is an `mmap`ed file (vs owned memory).
    pub fn is_mapped(&self) -> bool {
        self.data.buf.is_mapped()
    }

    /// Starts a query session: an [`OverlaySelector`] that can compute
    /// marginal gains, commit seeds, and run CELF without mutating the
    /// shared arena.
    pub fn overlay(&self) -> OverlaySelector {
        OverlaySelector {
            data: Arc::clone(&self.data),
            credits: self.data.out_credits().to_vec(),
            sc: self
                .data
                .sc_keys()
                .iter()
                .zip(self.data.sc_vals())
                .map(|(&k, &v)| (k, v))
                .collect(),
            seeds: self.data.seeds().to_vec(),
        }
    }
}

impl HeapSize for CompactSelector {
    fn heap_bytes(&self) -> usize {
        self.data.memory_bytes()
    }
}

// -------------------------------------------------------------- validation

/// Structural validation of an untrusted arena. Cheap linear scans — no
/// hash maps, no allocation proportional to the data. The CRC trailer
/// (checked by the snapshot layer) covers integrity; this pass guarantees
/// that every later index access is in bounds and every traversal order
/// assumption (sorted runs) holds.
fn validate(data: &CompactData) -> Result<(), String> {
    let c = &data.counts;
    check_offsets("ua_offsets", data.ua_offsets(), c.num_users, c.ua_len)?;
    if let Some(&a) = data.ua_data().iter().find(|&&a| a as usize >= c.num_actions) {
        return Err(format!("user-action id {a} out of range ({} actions)", c.num_actions));
    }
    if let Some((u, &x)) =
        data.inv_au().iter().enumerate().find(|(_, &x)| !(0.0..=1.0).contains(&x))
    {
        return Err(format!("user {u}: 1/A_u = {x} out of [0, 1]"));
    }

    // One fused pass per direction: offsets, strictly-sorted rows, id
    // ranges, and an order-independent hash of the direction's (v, u)
    // pair set per action, all in a single sweep (validation runs on
    // every v2 snapshot load, so it must stay bandwidth-bound).
    let out_sums = validate_direction(
        Direction::Out,
        c,
        data.out_act_rows(),
        data.out_row_user(),
        data.out_row_offsets(),
        data.out_targets(),
        c.out_rows,
        Some(data.out_credits()),
    )?;
    let inc_sums = validate_direction(
        Direction::Inc,
        c,
        data.inc_act_rows(),
        data.inc_row_user(),
        data.inc_row_offsets(),
        data.inc_sources(),
        c.inc_rows,
        None,
    )?;
    // Per action, the inc direction must hold exactly the out direction's
    // (v, u) pairs. Both sides are duplicate-free (strictly sorted rows)
    // and the same total size, so equal order-independent hashes prove
    // they match — no binary search per entry. A mismatch slipping
    // through needs a 64-bit hash-sum collision *and* a valid CRC
    // trailer; queries degrade gracefully (skip the entry) even then.
    if let Some(a) = (0..c.num_actions).find(|&a| out_sums[a] != inc_sums[a]) {
        return Err(format!("action {a}: inc entries do not mirror the out entries"));
    }

    let keys = data.sc_keys();
    if keys.windows(2).any(|w| w[0] >= w[1]) {
        return Err("SC keys not strictly sorted".to_string());
    }
    for &key in keys {
        let (a, u) = ((key >> 32) as usize, (key as u32) as usize);
        if a >= c.num_actions || u >= c.num_users {
            return Err(format!("SC key ({a}, {u}) out of range"));
        }
    }
    if let Some(&x) = data.sc_vals().iter().find(|&&x| !x.is_finite()) {
        return Err(format!("non-finite SC credit {x}"));
    }
    let seeds = data.seeds();
    for (i, &s) in seeds.iter().enumerate() {
        if s as usize >= c.num_users {
            return Err(format!("seed {s} out of range"));
        }
        if seeds[..i].contains(&s) {
            return Err(format!("duplicate seed {s}"));
        }
    }
    Ok(())
}

/// Offset-array sanity: starts at 0, ends at `last`, monotone.
fn check_offsets(name: &str, offs: &[u32], len: usize, last: usize) -> Result<(), String> {
    if offs[0] != 0 {
        return Err(format!("{name}: first offset {} != 0", offs[0]));
    }
    if offs[len] as usize != last {
        return Err(format!("{name}: final offset {} != {last}", offs[len]));
    }
    if offs.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{name}: offsets not monotone"));
    }
    Ok(())
}

/// Which adjacency direction a CSR group encodes.
#[derive(Clone, Copy)]
enum Direction {
    Out,
    Inc,
}

/// SplitMix64 finalizer: enough diffusion that pair-hash sums of nearby
/// keys don't cancel.
fn mix64(key: u64) -> u64 {
    let mut x = key;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Fused structural sweep of one CSR direction group: offset arrays,
/// strictly-sorted row users and entry runs, id ranges, and — in the
/// same pass — the per-action order-independent hash of the direction's
/// `(v, u)` pair set (keys are direction-normalized so out and inc sums
/// are comparable). When `credits` is given (the out direction, whose
/// entries carry the stored credits) the credits are checked finite in
/// the same per-entry loop, so the whole arena is validated in exactly
/// one sweep per direction.
#[allow(clippy::too_many_arguments)]
fn validate_direction(
    dir: Direction,
    c: &CompactCounts,
    act_rows: &[u32],
    row_user: &[u32],
    row_offsets: &[u32],
    ids: &[u32],
    rows: usize,
    credits: Option<&[f64]>,
) -> Result<Vec<u64>, String> {
    let name = match dir {
        Direction::Out => "out",
        Direction::Inc => "inc",
    };
    check_offsets(&format!("{name}_act_rows"), act_rows, c.num_actions, rows)?;
    check_offsets(&format!("{name}_row_offsets"), row_offsets, rows, c.entries)?;
    let mut sums = vec![0u64; c.num_actions];
    for a in 0..c.num_actions {
        let row_range = act_rows[a] as usize..act_rows[a + 1] as usize;
        let users = &row_user[row_range.clone()];
        if users.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("{name} rows of action {a} not strictly sorted"));
        }
        if let Some(&v) = users.iter().find(|&&v| v as usize >= c.num_users) {
            return Err(format!("{name} row user {v} out of range"));
        }
        let mut sum = 0u64;
        for row in row_range {
            let owner = row_user[row];
            let start = row_offsets[row] as usize;
            let span = &ids[start..row_offsets[row + 1] as usize];
            if span.is_empty() {
                return Err(format!("{name} row {row} is empty"));
            }
            let mut prev = -1i64;
            for (k, &id) in span.iter().enumerate() {
                if id as usize >= c.num_users || id == owner {
                    return Err(format!("{name} row {row}: invalid counterparty {id}"));
                }
                if i64::from(id) <= prev {
                    return Err(format!("{name} row {row} entries not strictly sorted"));
                }
                prev = i64::from(id);
                let key = match dir {
                    Direction::Out => pair_key(owner, id),
                    Direction::Inc => pair_key(id, owner),
                };
                sum = sum.wrapping_add(mix64(key));
                if let Some(credits) = credits {
                    if !credits[start + k].is_finite() {
                        return Err(format!("non-finite credit {}", credits[start + k]));
                    }
                }
            }
        }
        sums[a] = sum;
    }
    Ok(sums)
}

// ------------------------------------------------------------ query engine

/// A per-query view over a [`CompactSelector`]: the immutable CSR arrays
/// plus a mutable credit overlay (`NaN` marks entries retired or zeroed
/// by Lemma 2), an SC hash map, and the growing seed list. Mirrors every
/// f64 accumulation order of the canonical [`CdSelector`], so answers are
/// bit-identical to the mutable engine restored from the same dump.
#[derive(Clone, Debug)]
pub struct OverlaySelector {
    data: Arc<CompactData>,
    /// Clone of `out_credits`; `NaN` = entry removed. Live stored credits
    /// are finite by validation, so the sentinel is unambiguous.
    credits: Vec<f64>,
    sc: FxHashMap<u64, f64>,
    seeds: Vec<u32>,
}

impl OverlaySelector {
    /// Seeds committed so far (snapshot seeds plus this session's).
    pub fn seeds(&self) -> &[u32] {
        &self.seeds
    }

    /// Theorem-3 marginal gain of adding `x` to the current seed set
    /// (bit-identical to [`CdSelector::compute_mg`] on canonical state).
    pub fn compute_mg(&self, x: u32) -> f64 {
        let data = &self.data;
        let inv_ax = data.inv_au_of(x);
        if inv_ax == 0.0 {
            return 0.0;
        }
        let mut mg = 0.0;
        let targets = data.out_targets();
        for &a in data.ua_row(x) {
            let sc_xa = self.sc.get(&pair_key(a, x)).copied().unwrap_or(0.0);
            let factor = (1.0 - sc_xa).max(0.0);
            if factor == 0.0 {
                continue;
            }
            let mut mga = inv_ax;
            if let Some(row) = data.out_row_of(a, x) {
                for pos in data.out_row_entries(row) {
                    let c = self.credits[pos];
                    if !c.is_nan() {
                        mga += c * data.inv_au_of(targets[pos]);
                    }
                }
            }
            mg += mga * factor;
        }
        mg
    }

    /// The literal Algorithm-4 gain (self term only for actions with
    /// outgoing credit) — see [`CdSelector::compute_mg_pseudocode`].
    pub fn compute_mg_pseudocode(&self, x: u32) -> f64 {
        let data = &self.data;
        let inv_ax = data.inv_au_of(x);
        if inv_ax == 0.0 {
            return 0.0;
        }
        let mut mg = 0.0;
        let targets = data.out_targets();
        for &a in data.ua_row(x) {
            let mut mga = 0.0;
            let mut any = false;
            if let Some(row) = data.out_row_of(a, x) {
                for pos in data.out_row_entries(row) {
                    let c = self.credits[pos];
                    if !c.is_nan() {
                        any = true;
                        mga += c * data.inv_au_of(targets[pos]);
                    }
                }
            }
            if !any {
                continue;
            }
            mga += inv_ax;
            let sc_xa = self.sc.get(&pair_key(a, x)).copied().unwrap_or(0.0);
            mg += mga * (1.0 - sc_xa).max(0.0);
        }
        mg
    }

    /// Algorithm 5: commits `x` and applies the Lemma 2/3 updates to the
    /// overlay (bit-identical to [`CdSelector::update`]).
    pub fn update(&mut self, x: u32) {
        let data = Arc::clone(&self.data);
        for &a in data.ua_row(x) {
            self.apply_seed_to_action(a, x);
        }
        self.seeds.push(x);
    }

    fn apply_seed_to_action(&mut self, a: u32, x: u32) {
        let data = Arc::clone(&self.data);
        let sc_xa = self.sc.get(&pair_key(a, x)).copied().unwrap_or(0.0);
        let one_minus = (1.0 - sc_xa).max(0.0);

        // Retire x from action a. Row runs are sorted, matching the
        // canonical mutable store's adjacency order exactly.
        let mut gout: Vec<(u32, f64)> = Vec::new();
        if let Some(row) = data.out_row_of(a, x) {
            let targets = data.out_targets();
            for pos in data.out_row_entries(row) {
                let c = self.credits[pos];
                if !c.is_nan() {
                    gout.push((targets[pos], c));
                    self.credits[pos] = f64::NAN;
                }
            }
        }
        let mut gin: Vec<(u32, f64)> = Vec::new();
        if let Some(row) = data.inc_row_of(a, x) {
            let sources = data.inc_sources();
            for i in data.inc_row_entries(row) {
                let v = sources[i];
                // Validation guarantees the matching out entry exists.
                let Some(pos) = data.entry_pos(a, v, x) else { continue };
                let c = self.credits[pos];
                if !c.is_nan() {
                    gin.push((v, c));
                    self.credits[pos] = f64::NAN;
                }
            }
        }

        // Lemma 3: Γ_{S+x,u} = Γ_{S,u} + Γ^{V−S}_{x,u}·(1 − Γ_{S,x}).
        for &(u, cxu) in &gout {
            let e = self.sc.entry(pair_key(a, u)).or_insert(0.0);
            *e = (*e + cxu * one_minus).min(1.0);
        }
        // Lemma 2: Γ^{W−x}_{v,u} = Γ^W_{v,u} − Γ^W_{v,x}·Γ^W_{x,u}.
        for &(v, cvx) in &gin {
            for &(u, cxu) in &gout {
                self.subtract(a, v, u, cvx * cxu);
            }
        }
    }

    /// Lemma-2 subtraction with the same clamp-and-remove semantics as
    /// `ActionCredits::subtract` (entries at ≤ 1e-15 become `NaN`).
    fn subtract(&mut self, a: u32, v: u32, u: u32, amount: f64) {
        let Some(pos) = self.data.entry_pos(a, v, u) else {
            return;
        };
        let c = &mut self.credits[pos];
        if c.is_nan() {
            return;
        }
        *c -= amount;
        if *c <= 1e-15 {
            *c = f64::NAN;
        }
    }

    fn has_influencer(&self, a: u32, x: u32) -> bool {
        self.data.out_row_of(a, x).is_some_and(|row| {
            self.data.out_row_entries(row).any(|pos| !self.credits[pos].is_nan())
        })
    }

    /// Runs CELF until `k` seeds are chosen (continuing from any seeds
    /// already committed), consuming the overlay.
    pub fn select(self, k: usize) -> Selection {
        self.select_with_mode(k, MgMode::Theorem3)
    }

    /// Like [`Self::select`] with an explicit marginal-gain mode.
    pub fn select_with_mode(mut self, k: usize, mode: MgMode) -> Selection {
        let (gains, evaluations) = run_celf(&mut self, k, mode);
        Selection { seeds: self.seeds, marginal_gains: gains, evaluations }
    }
}

impl CelfEngine for OverlaySelector {
    fn num_users(&self) -> usize {
        self.data.counts.num_users
    }

    fn seeds_len(&self) -> usize {
        self.seeds.len()
    }

    fn initial_credit_gains(&self) -> Vec<f64> {
        let data = &self.data;
        let mut initial = vec![0.0f64; data.counts.num_users];
        let row_user = data.out_row_user();
        let targets = data.out_targets();
        let inv_au = data.inv_au();
        for a in 0..data.counts.num_actions as u32 {
            for row in data.out_act_range(a) {
                let acc = &mut initial[row_user[row] as usize];
                for pos in data.out_row_entries(row) {
                    let c = self.credits[pos];
                    if !c.is_nan() {
                        *acc += c * inv_au[targets[pos] as usize];
                    }
                }
            }
        }
        initial
    }

    fn inv_au_of(&self, x: u32) -> f64 {
        self.data.inv_au_of(x)
    }

    fn self_term(&self, x: u32, mode: MgMode) -> f64 {
        let inv_ax = self.data.inv_au_of(x);
        match mode {
            MgMode::Theorem3 => self.data.ua_row(x).iter().map(|_| inv_ax).sum::<f64>(),
            MgMode::Pseudocode => self
                .data
                .ua_row(x)
                .iter()
                .filter(|&&a| self.has_influencer(a, x))
                .map(|_| inv_ax)
                .sum::<f64>(),
        }
    }

    fn mg(&self, x: u32, mode: MgMode) -> f64 {
        match mode {
            MgMode::Theorem3 => self.compute_mg(x),
            MgMode::Pseudocode => self.compute_mg_pseudocode(x),
        }
    }

    fn commit(&mut self, x: u32) {
        self.update(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CreditPolicy;
    use crate::scan::scan;
    use cdim_actionlog::{ActionLog, ActionLogBuilder};
    use cdim_graph::{DirectedGraph, GraphBuilder};
    use cdim_util::Rng;

    fn figure1() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(6)
            .edges([(0, 2), (1, 2), (0, 3), (2, 4), (0, 5), (2, 5), (3, 5), (4, 5)])
            .build();
        let mut b = ActionLogBuilder::new(6);
        for (u, t) in [(0u32, 0.0), (1, 0.5), (2, 1.0), (3, 1.5), (4, 2.0), (5, 2.5)] {
            b.push(u, 0, t);
        }
        (graph, b.build())
    }

    /// Deterministic random instance: `n` users, `actions` actions.
    fn random_instance(seed: u64, n: u32, actions: u32) -> (DirectedGraph, ActionLog) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 0..n {
            for u in 0..n {
                if v != u && rng.bool(0.12) {
                    edges.push((v, u));
                }
            }
        }
        let graph = GraphBuilder::new(n as usize).edges(edges).build();
        let mut b = ActionLogBuilder::new(n as usize);
        for a in 0..actions {
            let mut t = 0.0;
            for u in 0..n {
                if rng.bool(0.4) {
                    t += rng.range_f64(0.1, 1.0);
                    b.push(u, a, t);
                }
            }
        }
        (graph, b.build())
    }

    fn trained_dump(seed: u64, committed: usize) -> SelectorDump {
        let (graph, log) = random_instance(seed, 40, 12);
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let mut sel = CdSelector::new(store);
        let picked = sel.clone().select(committed).seeds;
        for s in picked {
            sel.update(s);
        }
        sel.dump()
    }

    #[test]
    fn counts_and_arena_len_are_consistent() {
        let dump = trained_dump(7, 2);
        let counts = CompactCounts::of_dump(&dump);
        assert_eq!(counts.num_users, 40);
        assert_eq!(counts.num_actions, 12);
        assert_eq!(counts.seeds_len, 2);
        assert_eq!(counts.entries, dump.store.credits.iter().map(Vec::len).sum::<usize>());
        let sel = CompactSelector::from_dump(&dump);
        assert_eq!(sel.arena().len(), counts.arena_len());
        assert_eq!(sel.counts(), counts);
        assert_eq!(sel.arena().len() % 8, 0);
    }

    #[test]
    fn freeze_thaw_round_trips_the_dump() {
        for (seed, committed) in [(1u64, 0usize), (2, 1), (3, 3)] {
            let dump = trained_dump(seed, committed);
            let compact = CompactSelector::from_dump(&dump);
            assert_eq!(compact.to_dump(), dump, "to_dump (seed {seed})");
            assert_eq!(compact.thaw().dump(), dump, "thaw (seed {seed})");
        }
    }

    #[test]
    fn credit_store_freeze_thaw_round_trips() {
        let (graph, log) = random_instance(11, 35, 9);
        let store = scan(&graph, &log, &CreditPolicy::time_aware(&graph, &log), 0.001).unwrap();
        let dump = store.dump();
        let compact = CompactCreditStore::freeze(&store);
        assert_eq!(compact.thaw().dump(), dump);
        assert_eq!(compact.num_users(), 35);
        assert_eq!(compact.total_entries(), dump.credits.iter().map(Vec::len).sum::<usize>());
        for u in 0..35u32 {
            assert_eq!(compact.inv_au(u).to_bits(), dump.inv_au[u as usize].to_bits());
            assert_eq!(compact.actions_of_user(u), dump.user_actions[u as usize].as_slice());
        }
    }

    #[test]
    fn empty_state_freezes_and_thaws() {
        let dump = SelectorDump::default();
        let compact = CompactSelector::from_dump(&dump);
        assert_eq!(compact.to_dump(), dump);
        assert_eq!(compact.total_entries(), 0);
        let sel = compact.overlay().select(3);
        assert!(sel.seeds.is_empty());
    }

    #[test]
    fn overlay_gains_match_mutable_bitwise() {
        let dump = trained_dump(21, 1);
        let mutable = CdSelector::from_dump(&dump);
        let compact = CompactSelector::from_dump(&dump);
        let overlay = compact.overlay();
        for x in 0..40u32 {
            assert_eq!(
                overlay.compute_mg(x).to_bits(),
                mutable.compute_mg(x).to_bits(),
                "theorem-3 mg of {x}"
            );
            assert_eq!(
                overlay.compute_mg_pseudocode(x).to_bits(),
                mutable.compute_mg_pseudocode(x).to_bits(),
                "pseudocode mg of {x}"
            );
        }
    }

    #[test]
    fn overlay_gains_match_after_updates() {
        let dump = trained_dump(33, 0);
        let mut mutable = CdSelector::from_dump(&dump);
        let mut overlay = CompactSelector::from_dump(&dump).overlay();
        let order = mutable.clone().select(3).seeds;
        for s in order {
            mutable.update(s);
            overlay.update(s);
            assert_eq!(overlay.seeds(), mutable.seeds());
            for x in 0..40u32 {
                assert_eq!(
                    overlay.compute_mg(x).to_bits(),
                    mutable.compute_mg(x).to_bits(),
                    "mg of {x} after committing {s}"
                );
            }
        }
    }

    #[test]
    fn overlay_celf_selection_is_bit_identical() {
        for seed in [5u64, 6, 7] {
            for mode in [MgMode::Theorem3, MgMode::Pseudocode] {
                let dump = trained_dump(seed, 0);
                let want = CdSelector::from_dump(&dump).select_with_mode(5, mode);
                let got = CompactSelector::from_dump(&dump).overlay().select_with_mode(5, mode);
                assert_eq!(got.seeds, want.seeds, "seeds (seed {seed}, {mode:?})");
                assert_eq!(got.evaluations, want.evaluations, "evals (seed {seed}, {mode:?})");
                let want_bits: Vec<u64> = want.marginal_gains.iter().map(|g| g.to_bits()).collect();
                let got_bits: Vec<u64> = got.marginal_gains.iter().map(|g| g.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "gains (seed {seed}, {mode:?})");
            }
        }
    }

    #[test]
    fn overlay_selection_continues_from_committed_seeds() {
        let dump = trained_dump(44, 2);
        let want = CdSelector::from_dump(&dump).select(4);
        let got = CompactSelector::from_dump(&dump).overlay().select(4);
        assert_eq!(got.seeds, want.seeds);
        assert_eq!(got.seeds.len(), 4);
        assert_eq!(&got.seeds[..2], &dump.seeds[..]);
    }

    #[test]
    fn figure1_selection_matches() {
        let (graph, log) = figure1();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let dump = CdSelector::new(store).dump();
        let want = CdSelector::from_dump(&dump).select(2);
        let got = CompactSelector::from_dump(&dump).overlay().select(2);
        assert_eq!(got.seeds, want.seeds);
    }

    #[test]
    fn from_arena_accepts_a_frozen_arena() {
        let dump = trained_dump(55, 2);
        let compact = CompactSelector::from_dump(&dump);
        let buf = Arc::new(AlignedBuf::from_bytes(compact.arena()));
        let reloaded =
            CompactSelector::from_arena(buf, 0, compact.counts(), compact.lambda()).unwrap();
        assert_eq!(reloaded.to_dump(), dump);
        assert!(!reloaded.is_mapped());
    }

    #[test]
    fn from_arena_rejects_structural_corruption() {
        let dump = trained_dump(66, 1);
        let compact = CompactSelector::from_dump(&dump);
        let counts = compact.counts();
        let lambda = compact.lambda();
        let layout = counts.layout();
        let pristine = compact.arena().to_vec();

        let expect_err = |bytes: &[u8], what: &str| {
            let buf = Arc::new(AlignedBuf::from_bytes(bytes));
            assert!(
                CompactSelector::from_arena(buf, 0, counts, lambda).is_err(),
                "corruption not caught: {what}"
            );
        };

        // Too short for the layout.
        expect_err(&pristine[..pristine.len() - 8], "truncated arena");

        // Break ua_offsets monotonicity / final offset.
        let mut bad = pristine.clone();
        bad[layout.ua_offsets.start..layout.ua_offsets.start + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        expect_err(&bad, "ua_offsets[0] != 0");

        // Out-of-range action id in ua_data.
        if counts.ua_len > 0 {
            let mut bad = pristine.clone();
            bad[layout.ua_data.start..layout.ua_data.start + 4]
                .copy_from_slice(&(counts.num_actions as u32).to_le_bytes());
            expect_err(&bad, "ua_data action out of range");
        }

        // Non-finite credit.
        if counts.entries > 0 {
            let mut bad = pristine.clone();
            bad[layout.out_credits.start..layout.out_credits.start + 8]
                .copy_from_slice(&f64::NAN.to_le_bytes());
            expect_err(&bad, "NaN credit");
        }

        // Unsorted out row users: swap the first two rows of some action
        // with two rows.
        if let Some(a) = (0..counts.num_actions).find(|&a| {
            let r = &compact.data.out_act_rows();
            r[a + 1] - r[a] >= 2
        }) {
            let first = compact.data.out_act_rows()[a] as usize;
            let mut bad = pristine.clone();
            let at = layout.out_row_user.start + 4 * first;
            let (x, y) = (bad[at..at + 4].to_vec(), bad[at + 4..at + 8].to_vec());
            bad[at..at + 4].copy_from_slice(&y);
            bad[at + 4..at + 8].copy_from_slice(&x);
            expect_err(&bad, "unsorted out rows");
        }

        // Mispaired inc source: bump the first inc entry's source id.
        // Whatever it lands on — out of range, the row's own user, a
        // duplicate breaking strict sortedness, or a (v, u) pair absent
        // from the out direction — some check must notice.
        if counts.entries > 0 && counts.num_users >= 2 {
            let mut bad = pristine.clone();
            let v0 = u32::from_le_bytes(
                bad[layout.inc_sources.start..layout.inc_sources.start + 4].try_into().unwrap(),
            );
            let bumped = if (v0 as usize) + 1 < counts.num_users { v0 + 1 } else { v0 - 1 };
            bad[layout.inc_sources.start..layout.inc_sources.start + 4]
                .copy_from_slice(&bumped.to_le_bytes());
            expect_err(&bad, "mispaired inc entry");
        }

        // Duplicate seed.
        if counts.seeds_len >= 2 {
            let mut bad = pristine.clone();
            let first = bad[layout.seeds.start..layout.seeds.start + 4].to_vec();
            bad[layout.seeds.start + 4..layout.seeds.start + 8].copy_from_slice(&first);
            expect_err(&bad, "duplicate seed");
        }

        // The pristine arena still loads (guards against over-strictness).
        let buf = Arc::new(AlignedBuf::from_bytes(&pristine));
        CompactSelector::from_arena(buf, 0, counts, lambda).unwrap();
    }

    #[test]
    fn from_arena_rejects_misaligned_base() {
        let dump = trained_dump(77, 0);
        let compact = CompactSelector::from_dump(&dump);
        let mut padded = vec![0u8; 4];
        padded.extend_from_slice(compact.arena());
        padded.resize((padded.len() + 7) & !7, 0);
        let buf = Arc::new(AlignedBuf::from_bytes(&padded));
        assert!(CompactSelector::from_arena(buf, 4, compact.counts(), compact.lambda()).is_err());
    }

    #[test]
    fn memory_is_well_below_the_mutable_store() {
        let (graph, log) = random_instance(88, 60, 16);
        let mut store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        store.shrink_to_fit();
        let mutable_bytes = store.memory_bytes();
        let compact = CompactCreditStore::freeze(&store);
        assert!(
            compact.memory_bytes() * 2 <= mutable_bytes,
            "compact {} vs mutable {}",
            compact.memory_bytes(),
            mutable_bytes
        );
    }
}
