//! Convenience facade: train once, then select seeds and predict spread.
//!
//! [`CdModel`] is what a downstream application uses: it bundles the
//! learned credit policy, the scanned (λ-truncated) credit store for seed
//! selection, and the exact evaluator for spread prediction.

use crate::celf::CdSelector;
use crate::policy::CreditPolicy;
use crate::scan::{scan_with, ScanError};
use crate::spread::CdSpreadEvaluator;
use crate::store::CreditStore;
use cdim_actionlog::{ActionLog, UserId};
use cdim_graph::DirectedGraph;
use cdim_maxim::Selection;
use cdim_util::{HeapSize, Parallelism};

/// Which direct-credit policy to train.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// `γ = 1/d_in(u, a)`.
    Uniform,
    /// Eq 9 with learned `τ` and `infl` (the paper's default in §6).
    TimeAware,
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct CdModelConfig {
    /// Direct-credit policy.
    pub policy: PolicyKind,
    /// Truncation threshold λ for the selection store (§5.3; the paper
    /// uses `0.001` in all experiments).
    pub lambda: f64,
    /// Worker threads for the credit scan (the dominant training cost).
    /// Never affects the trained model — the scan is bit-identical for
    /// every thread count — only how fast training finishes.
    pub parallelism: Parallelism,
}

impl Default for CdModelConfig {
    fn default() -> Self {
        CdModelConfig {
            policy: PolicyKind::TimeAware,
            lambda: 0.001,
            parallelism: Parallelism::auto(),
        }
    }
}

impl CdModelConfig {
    /// Instantiates the configured credit policy (learning temporal
    /// parameters from `train_log` when the kind requires them). The one
    /// place the [`PolicyKind`] → [`CreditPolicy`] mapping lives; every
    /// training entry point (model, snapshot build) goes through it.
    pub fn build_policy(&self, graph: &DirectedGraph, train_log: &ActionLog) -> CreditPolicy {
        match self.policy {
            PolicyKind::Uniform => CreditPolicy::Uniform,
            PolicyKind::TimeAware => CreditPolicy::time_aware(graph, train_log),
        }
    }
}

/// A trained credit-distribution model.
///
/// ```
/// use cdim_core::{CdModel, CdModelConfig};
///
/// let dataset = cdim_datagen::presets::tiny().generate();
/// let model = CdModel::train(&dataset.graph, &dataset.log, CdModelConfig::default());
///
/// let selection = model.select(3);
/// assert_eq!(selection.seeds.len(), 3);
/// // The telescoped gains never exceed the exact spread (λ truncation
/// // can only lose credit mass).
/// assert!(selection.total_gain() <= model.spread(&selection.seeds) + 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct CdModel {
    config: CdModelConfig,
    policy: CreditPolicy,
    store: CreditStore,
    evaluator: CdSpreadEvaluator,
}

impl CdModel {
    /// Trains the model: learns temporal parameters (if requested), scans
    /// the log into the credit store, and precompiles the evaluator.
    ///
    /// Panics on invalid inputs; use [`Self::try_train`] where bad data
    /// must be rejected as a value (e.g. inside a serving process).
    pub fn train(graph: &DirectedGraph, train_log: &ActionLog, config: CdModelConfig) -> Self {
        Self::try_train(graph, train_log, config).expect("invalid training inputs")
    }

    /// Fallible variant of [`Self::train`].
    pub fn try_train(
        graph: &DirectedGraph,
        train_log: &ActionLog,
        config: CdModelConfig,
    ) -> Result<Self, ScanError> {
        let policy = config.build_policy(graph, train_log);
        let store = scan_with(graph, train_log, &policy, config.lambda, config.parallelism)?;
        let evaluator = CdSpreadEvaluator::build(graph, train_log, &policy);
        Ok(CdModel { config, policy, store, evaluator })
    }

    /// Incremental retraining: folds an append-only batch of new actions
    /// into the trained model — credit store and exact evaluator both —
    /// without rescanning anything already learned. Delta batches run in
    /// parallel under the training [`CdModelConfig::parallelism`].
    ///
    /// The credit policy stays as trained (time-aware `τ`/`infl` are
    /// *not* re-learned — refreshing them would change old actions'
    /// credits and require a full retrain). Under that fixed policy the
    /// extended store's [`CreditStore::dump`] is byte-identical to a
    /// from-scratch scan of the combined log, for every thread count.
    pub fn extend(
        &mut self,
        graph: &DirectedGraph,
        delta: &cdim_actionlog::ActionLogDelta,
    ) -> Result<(), crate::incremental::ExtendError> {
        self.store.apply_delta(graph, delta, &self.policy, self.config.parallelism)?;
        self.evaluator.extend(graph, delta, &self.policy)
    }

    /// Sliding-window retraining: expires an action prefix from the
    /// trained model — credit store and exact evaluator both — without
    /// rescanning anything that survives. `expired` must be the model's
    /// first actions packaged as a delta based at 0 (see
    /// `ActionLog::split_off_prefix`); the expired credits are recomputed
    /// with the scan kernel and checked bit-for-bit before anything is
    /// dropped.
    ///
    /// As with [`extend`](Self::extend) the trained policy stays fixed.
    /// Under that fixed policy the retracted store's
    /// [`CreditStore::dump`] is byte-identical to a from-scratch scan of
    /// just the surviving window, for every thread count.
    pub fn retract(
        &mut self,
        graph: &DirectedGraph,
        expired: &cdim_actionlog::ActionLogDelta,
    ) -> Result<(), crate::incremental::ExtendError> {
        self.store.retract_delta(graph, expired, &self.policy, self.config.parallelism)?;
        self.evaluator.retract(graph, expired)
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> CdModelConfig {
        self.config
    }

    /// The trained credit policy.
    pub fn policy(&self) -> &CreditPolicy {
        &self.policy
    }

    /// The λ-truncated credit store (pre-selection state).
    pub fn store(&self) -> &CreditStore {
        &self.store
    }

    /// The exact spread evaluator.
    pub fn evaluator(&self) -> &CdSpreadEvaluator {
        &self.evaluator
    }

    /// Influence maximization: runs Algorithm 3 for `k` seeds.
    ///
    /// Clones the credit store (selection mutates it); call
    /// [`Self::into_selector`] to avoid the copy when the model is no
    /// longer needed.
    pub fn select(&self, k: usize) -> Selection {
        CdSelector::new(self.store.clone()).select(k)
    }

    /// Consumes the model into a stateful selector (no store copy).
    pub fn into_selector(self) -> CdSelector {
        CdSelector::new(self.store)
    }

    /// Exact σ_cd(S) — the model's spread prediction for any seed set.
    pub fn spread(&self, seeds: &[UserId]) -> f64 {
        self.evaluator.spread(seeds)
    }

    /// Approximate heap memory of the selection store, in bytes (the
    /// quantity Fig 8 right / Table 4 track).
    pub fn store_memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }
}

impl HeapSize for CdModel {
    fn heap_bytes(&self) -> usize {
        self.store.heap_bytes() + self.evaluator.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    fn instance() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(5).edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).build();
        let mut b = ActionLogBuilder::new(5);
        for a in 0..4u32 {
            let mut t = 0.0;
            for u in 0..=(a.min(4)) {
                b.push(u, a, t);
                t += 1.0;
            }
        }
        (graph, b.build())
    }

    #[test]
    fn train_select_spread_round_trip() {
        let (graph, log) = instance();
        let model = CdModel::train(&graph, &log, CdModelConfig::default());
        let sel = model.select(2);
        assert_eq!(sel.seeds.len(), 2);
        let s = model.spread(&sel.seeds);
        assert!(s > 0.0);
        // Selection gains approximate the exact spread (λ truncation may
        // lose a little mass, never gain).
        assert!(sel.total_gain() <= s + 1e-9);
    }

    #[test]
    fn uniform_policy_lambda_zero_is_exact() {
        let (graph, log) = instance();
        let config =
            CdModelConfig { policy: PolicyKind::Uniform, lambda: 0.0, ..Default::default() };
        let model = CdModel::train(&graph, &log, config);
        let sel = model.select(2);
        assert!((model.spread(&sel.seeds) - sel.total_gain()).abs() < 1e-9);
    }

    #[test]
    fn training_parallelism_never_changes_the_model() {
        let (graph, log) = instance();
        let dump = |threads: usize| {
            let config =
                CdModelConfig { parallelism: Parallelism::fixed(threads), ..Default::default() };
            CdModel::train(&graph, &log, config).store().dump()
        };
        let baseline = dump(1);
        for threads in [2usize, 8] {
            assert_eq!(dump(threads), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn extend_equals_training_on_the_full_log() {
        let (graph, log) = instance();
        // Uniform policy is log-independent, so prefix-trained and
        // full-trained models share it exactly — the extended model must
        // match full training bit for bit.
        let config =
            CdModelConfig { policy: PolicyKind::Uniform, lambda: 0.001, ..Default::default() };
        let full = CdModel::train(&graph, &log, config);
        for split in 0..=log.num_actions() {
            let (prefix, delta) = log.split_at_action(split);
            let mut model = CdModel::train(&graph, &prefix, config);
            model.extend(&graph, &delta).unwrap();
            assert_eq!(model.store().dump(), full.store().dump(), "split {split}");
            let sel = full.select(2);
            assert_eq!(model.select(2).seeds, sel.seeds);
            assert_eq!(
                model.spread(&sel.seeds).to_bits(),
                full.spread(&sel.seeds).to_bits(),
                "split {split}"
            );
        }
    }

    #[test]
    fn retract_equals_training_on_the_window() {
        let (graph, log) = instance();
        // Uniform policy is log-independent, so the full-trained and
        // window-trained models share it exactly — retraction must land
        // bit-for-bit on the window-only model.
        let config =
            CdModelConfig { policy: PolicyKind::Uniform, lambda: 0.001, ..Default::default() };
        for expire in 0..=log.num_actions() {
            let (expired, window) = log.split_off_prefix(expire);
            let mut model = CdModel::train(&graph, &log, config);
            model.retract(&graph, &expired).unwrap();
            let fresh = CdModel::train(&graph, &window, config);
            assert_eq!(model.store().dump(), fresh.store().dump(), "expire {expire}");
            assert_eq!(model.evaluator().num_actions(), fresh.evaluator().num_actions());
            for seeds in [vec![0u32], vec![1, 3], vec![0, 2, 4]] {
                assert_eq!(
                    model.spread(&seeds).to_bits(),
                    fresh.spread(&seeds).to_bits(),
                    "expire {expire}, seeds {seeds:?}"
                );
            }
        }
    }

    #[test]
    fn retract_rejects_non_prefix_batches() {
        let (graph, log) = instance();
        let mut model = CdModel::train(&graph, &log, CdModelConfig::default());
        // A mid-log range is not a prefix (base != 0).
        let not_a_prefix = log.delta_range(1, 3);
        assert!(model.retract(&graph, &not_a_prefix).is_err());
        // Data the model was never trained on fails the bitwise replay.
        let mut b = ActionLogBuilder::new(5);
        b.push(4, 0, 0.0);
        b.push(0, 0, 1.0);
        let foreign = cdim_actionlog::ActionLogDelta::new(0, b.build());
        assert!(model.retract(&graph, &foreign).is_err());
    }

    #[test]
    fn extend_rejects_stale_deltas() {
        let (graph, log) = instance();
        let (prefix, _) = log.split_at_action(2);
        let mut model = CdModel::train(&graph, &prefix, CdModelConfig::default());
        let wrong_base = log.delta_range(3, 4);
        assert!(model.extend(&graph, &wrong_base).is_err());
    }

    #[test]
    fn memory_reporting_is_positive_after_training() {
        let (graph, log) = instance();
        let model = CdModel::train(&graph, &log, CdModelConfig::default());
        assert!(model.store_memory_bytes() > 0);
        assert!(model.heap_bytes() >= model.store_memory_bytes());
    }

    #[test]
    fn select_does_not_consume_model() {
        let (graph, log) = instance();
        let model = CdModel::train(&graph, &log, CdModelConfig::default());
        let a = model.select(1);
        let b = model.select(1);
        assert_eq!(a.seeds, b.seeds);
    }
}
