#![warn(missing_docs)]
//! The credit-distribution (CD) model — the paper's primary contribution.
//!
//! Instead of learning edge probabilities and Monte-Carlo-simulating a
//! propagation model, CD mines the action log directly (§4): when user `u`
//! performs action `a`, each potential influencer `v ∈ N_in(u, a)` receives
//! *direct credit* `γ_{v,u}(a)`, and credit flows transitively backward
//! through the propagation DAG (Eq 5). Aggregated over the log,
//!
//! ```text
//! κ_{S,u} = (1/A_u) Σ_a Γ_{S,u}(a)        (Eq 7)
//! σ_cd(S) = Σ_u κ_{S,u}                   (Eq 8)
//! ```
//!
//! plays the role of `Σ_u Pr[path(S, u) = 1]` (Eq 4). Influence
//! maximization under σ_cd is NP-hard (Theorem 1) but σ_cd is monotone and
//! submodular (Theorem 2), so CELF-style greedy gives the usual
//! (1 − 1/e)-approximation — with marginal gains computed *directly from
//! the log* via Theorem 3 in place of simulations.
//!
//! Modules:
//! * [`policy`] — direct-credit assignment: uniform `1/d_in(u,a)` and the
//!   time-aware Eq 9 (`infl(u)`, `τ_{v,u}`, exponential decay);
//! * [`store`] — the UC/SC credit structures of §5.3;
//! * [`mod@scan`] — Algorithm 2 (one pass over the sorted log, truncation λ);
//! * [`incremental`] — incremental retraining: extend a scanned store
//!   with an [`cdim_actionlog::ActionLogDelta`] (byte-identical to a full
//!   rescan) or retract an expired action prefix (byte-identical to a
//!   scan of just the surviving window);
//! * [`celf`] — Algorithms 3–5 (CELF selection, Theorem-3 marginal gains,
//!   Lemma 2/3 incremental updates);
//! * [`compact`] — CSR-flat, arena-backed read-only form of the trained
//!   state (freeze/thaw, zero-copy v2 snapshot payload, overlay query
//!   engine answering bit-identically to the mutable selector);
//! * [`spread`] — exact σ_cd(S) evaluation for arbitrary seed sets (the
//!   spread-prediction experiments) and a [`cdim_maxim::SpreadOracle`]
//!   implementation;
//! * [`mod@reference`] — an intentionally naive reference implementation used
//!   to verify every optimized path;
//! * [`model`] — a convenience facade bundling train → select → evaluate;
//! * `telemetry` — shard-level scan timing reported into the process-wide
//!   [`cdim_obs::MetricsRegistry::global`] registry (never touches the
//!   per-action kernel, so instrumentation cannot affect model bytes).

pub mod celf;
pub mod compact;
pub mod incremental;
pub mod model;
pub mod policy;
pub mod reference;
pub mod scan;
pub mod spread;
pub mod store;
mod telemetry;

pub use cdim_util::Parallelism;
pub use celf::{select_seeds, CdSelector, MgMode, SelectorDump};
pub use compact::{CompactCounts, CompactCreditStore, CompactSelector, OverlaySelector};
pub use incremental::ExtendError;
pub use model::{CdModel, CdModelConfig};
pub use policy::CreditPolicy;
pub use scan::{scan, scan_action, scan_with, ScanError};
pub use spread::CdSpreadEvaluator;
pub use store::{CreditStore, CreditStoreDump};
