//! Exact σ_cd(S) evaluation for arbitrary seed sets.
//!
//! The spread-prediction experiments (Figs 3, 4, 6) evaluate σ_cd on seed
//! sets that were *not* produced by the selector (test-trace initiators,
//! rival models' seeds), so they need a standalone evaluator. It runs the
//! set-credit DP of Eq 5 over each propagation DAG with no λ truncation:
//!
//! ```text
//! Γ_{S,u}(a) = 1                        if u ∈ S
//!            = Σ_w Γ_{S,w}(a)·γ_{w,u}   otherwise
//! σ_cd(S)   = Σ_a Σ_{u∈V(a)} Γ_{S,u}(a) / A_u
//! ```
//!
//! DAG topology and γ values are precomputed once; each evaluation is one
//! linear pass per action. The evaluator implements
//! [`cdim_maxim::SpreadOracle`], so the generic greedy/CELF selectors can
//! run against exact σ_cd — the ablation baseline for the specialized
//! Algorithm 3.

use crate::incremental::ExtendError;
use crate::policy::CreditPolicy;
use cdim_actionlog::{ActionLog, ActionLogDelta, PropagationDag, UserId};
use cdim_graph::{DirectedGraph, NodeId};
use cdim_maxim::SpreadOracle;
use cdim_util::HeapSize;

/// One precompiled propagation DAG.
#[derive(Clone, Debug)]
struct CompactDag {
    /// Performers in chronological order.
    users: Vec<UserId>,
    /// CSR offsets into `parents`/`gammas` per local node.
    parent_offsets: Vec<u32>,
    /// Parent local indices.
    parents: Vec<u32>,
    /// Direct credit per parent edge.
    gammas: Vec<f64>,
}

/// Precompiled exact σ_cd evaluator.
#[derive(Clone, Debug)]
pub struct CdSpreadEvaluator {
    dags: Vec<CompactDag>,
    /// `A_u` per user over the compiled log (kept alongside `inv_au` so
    /// an append-only [`extend`](Self::extend) can bump counts exactly).
    au: Vec<u32>,
    /// `1/A_u` per user (0 when the user never acted).
    inv_au: Vec<f64>,
    num_users: usize,
    max_dag_len: usize,
}

impl CdSpreadEvaluator {
    /// Compiles one action's DAG + γ values.
    fn compile_dag(
        graph: &DirectedGraph,
        dag: &PropagationDag,
        policy: &CreditPolicy,
    ) -> CompactDag {
        let gammas = policy.edge_credits(graph, dag);
        let mut parent_offsets = Vec::with_capacity(dag.len() + 1);
        let mut parents = Vec::with_capacity(dag.num_edges());
        parent_offsets.push(0u32);
        for i in 0..dag.len() {
            parents.extend_from_slice(dag.parents_of(i));
            parent_offsets.push(parents.len() as u32);
        }
        CompactDag { users: dag.users().to_vec(), parent_offsets, parents, gammas }
    }

    /// Precompiles every propagation DAG of `log` with its γ values.
    pub fn build(graph: &DirectedGraph, log: &ActionLog, policy: &CreditPolicy) -> Self {
        let mut max_dag_len = 0;
        let dags = log
            .actions()
            .map(|a| {
                let dag = PropagationDag::build(log, graph, a);
                max_dag_len = max_dag_len.max(dag.len());
                Self::compile_dag(graph, &dag, policy)
            })
            .collect();
        let au = log.actions_per_user().to_vec();
        let inv_au = au.iter().map(|&n| if n > 0 { 1.0 / f64::from(n) } else { 0.0 }).collect();
        CdSpreadEvaluator { dags, au, inv_au, num_users: log.num_users(), max_dag_len }
    }

    /// Appends an action batch: compiles the new DAGs (γ under the same
    /// `policy` the evaluator was built with) and bumps the `A_u` counts
    /// of users acting in the delta — already-compiled DAGs are reused
    /// untouched. Spread answers afterwards are bit-identical to a
    /// from-scratch [`build`](Self::build) over the combined log.
    pub fn extend(
        &mut self,
        graph: &DirectedGraph,
        delta: &ActionLogDelta,
        policy: &CreditPolicy,
    ) -> Result<(), ExtendError> {
        if graph.num_nodes() != self.num_users {
            return Err(ExtendError::GraphMismatch {
                graph_nodes: graph.num_nodes(),
                store_users: self.num_users,
            });
        }
        if delta.num_users() != self.num_users {
            return Err(ExtendError::UserUniverseMismatch {
                store_users: self.num_users,
                delta_users: delta.num_users(),
            });
        }
        if delta.base_actions() != self.dags.len() {
            return Err(ExtendError::BaseMismatch {
                store_actions: self.dags.len(),
                delta_base: delta.base_actions(),
            });
        }
        let additions = delta.additions();
        self.dags.reserve(additions.num_actions());
        for a in additions.actions() {
            let dag = PropagationDag::build(additions, graph, a);
            self.max_dag_len = self.max_dag_len.max(dag.len());
            self.dags.push(Self::compile_dag(graph, &dag, policy));
        }
        for (u, &n) in additions.actions_per_user().iter().enumerate() {
            if n > 0 {
                self.au[u] += n;
                self.inv_au[u] = 1.0 / f64::from(self.au[u]);
            }
        }
        Ok(())
    }

    /// Retracts an expired action prefix — the inverse of
    /// [`extend`](Self::extend). `expired` must be based at 0 and cover
    /// the evaluator's first actions (see `ActionLog::split_off_prefix`):
    /// their compiled DAGs are dropped and the `A_u` counts of users
    /// acting in the prefix are decremented. Spread answers afterwards
    /// are bit-identical to a from-scratch [`build`](Self::build) over
    /// just the surviving window (`1/A_u` depends only on the surviving
    /// count, and a DAG never references its action's dense id).
    pub fn retract(
        &mut self,
        graph: &DirectedGraph,
        expired: &ActionLogDelta,
    ) -> Result<(), ExtendError> {
        if graph.num_nodes() != self.num_users {
            return Err(ExtendError::GraphMismatch {
                graph_nodes: graph.num_nodes(),
                store_users: self.num_users,
            });
        }
        if expired.num_users() != self.num_users {
            return Err(ExtendError::UserUniverseMismatch {
                store_users: self.num_users,
                delta_users: expired.num_users(),
            });
        }
        let k = expired.num_new_actions();
        if expired.base_actions() != 0 || k > self.dags.len() {
            return Err(ExtendError::WindowMismatch {
                store_actions: self.dags.len(),
                expired_base: expired.base_actions(),
                expired_actions: k,
            });
        }
        for (u, &n) in expired.additions().actions_per_user().iter().enumerate() {
            if n > self.au[u] {
                return Err(ExtendError::MembershipMismatch {
                    user: u as u32,
                    expected: n,
                    got: self.au[u],
                });
            }
        }
        self.dags.drain(..k);
        for (u, &n) in expired.additions().actions_per_user().iter().enumerate() {
            if n > 0 {
                self.au[u] -= n;
                self.inv_au[u] = if self.au[u] > 0 { 1.0 / f64::from(self.au[u]) } else { 0.0 };
            }
        }
        // `max_dag_len` stays as-is: it is a scratch-capacity hint only
        // and never influences an answer.
        Ok(())
    }

    /// Exact σ_cd(S).
    pub fn spread(&self, seeds: &[UserId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        let mut is_seed = vec![false; self.num_users];
        for &s in seeds {
            is_seed[s as usize] = true;
        }
        let mut credit = Vec::with_capacity(self.max_dag_len);
        let mut total = 0.0;
        for dag in &self.dags {
            credit.clear();
            for i in 0..dag.users.len() {
                let c = if is_seed[dag.users[i] as usize] {
                    1.0
                } else {
                    let lo = dag.parent_offsets[i] as usize;
                    let hi = dag.parent_offsets[i + 1] as usize;
                    let mut acc = 0.0;
                    for k in lo..hi {
                        acc += credit[dag.parents[k] as usize] * dag.gammas[k];
                    }
                    acc
                };
                credit.push(c);
                total += c * self.inv_au[dag.users[i] as usize];
            }
        }
        total
    }

    /// Per-action predicted credit mass Σ_{u∈V(a)} Γ_{S,u}(a): the model's
    /// estimate of how many performers of `a` the set `S` accounts for.
    pub fn per_action_credit(&self, seeds: &[UserId]) -> Vec<f64> {
        let mut is_seed = vec![false; self.num_users];
        for &s in seeds {
            is_seed[s as usize] = true;
        }
        let mut credit = Vec::with_capacity(self.max_dag_len);
        self.dags
            .iter()
            .map(|dag| {
                credit.clear();
                let mut mass = 0.0;
                for i in 0..dag.users.len() {
                    let c = if is_seed[dag.users[i] as usize] {
                        1.0
                    } else {
                        let lo = dag.parent_offsets[i] as usize;
                        let hi = dag.parent_offsets[i + 1] as usize;
                        let mut acc = 0.0;
                        for k in lo..hi {
                            acc += credit[dag.parents[k] as usize] * dag.gammas[k];
                        }
                        acc
                    };
                    credit.push(c);
                    mass += c;
                }
                mass
            })
            .collect()
    }

    /// Number of precompiled actions.
    pub fn num_actions(&self) -> usize {
        self.dags.len()
    }
}

impl SpreadOracle for CdSpreadEvaluator {
    fn spread(&self, seeds: &[NodeId]) -> f64 {
        CdSpreadEvaluator::spread(self, seeds)
    }

    fn universe(&self) -> usize {
        self.num_users
    }
}

impl HeapSize for CdSpreadEvaluator {
    fn heap_bytes(&self) -> usize {
        self.au.heap_bytes()
            + self.inv_au.heap_bytes()
            + self
                .dags
                .iter()
                .map(|d| {
                    d.users.heap_bytes()
                        + d.parent_offsets.heap_bytes()
                        + d.parents.heap_bytes()
                        + d.gammas.heap_bytes()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    fn figure1() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(6)
            .edges([(0, 2), (1, 2), (0, 3), (2, 4), (0, 5), (2, 5), (3, 5), (4, 5)])
            .build();
        let mut b = ActionLogBuilder::new(6);
        for (u, t) in [(0u32, 0.0), (1, 0.5), (2, 1.0), (3, 1.5), (4, 2.0), (5, 2.5)] {
            b.push(u, 0, t);
        }
        (graph, b.build())
    }

    #[test]
    fn matches_reference_on_example() {
        let (graph, log) = figure1();
        let policy = CreditPolicy::Uniform;
        let eval = CdSpreadEvaluator::build(&graph, &log, &policy);
        for seeds in [vec![0u32], vec![0, 4], vec![5], vec![0, 1], vec![2, 3]] {
            let fast = eval.spread(&seeds);
            let slow = reference::sigma_cd(&graph, &log, &policy, &seeds);
            assert!((fast - slow).abs() < 1e-12, "{seeds:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn empty_seeds_spread_zero() {
        let (graph, log) = figure1();
        let eval = CdSpreadEvaluator::build(&graph, &log, &CreditPolicy::Uniform);
        assert_eq!(eval.spread(&[]), 0.0);
    }

    #[test]
    fn per_action_credit_of_initiators_is_trace_size() {
        let (graph, log) = figure1();
        let eval = CdSpreadEvaluator::build(&graph, &log, &CreditPolicy::Uniform);
        // Seeding the initiators accounts for the entire trace.
        let mass = eval.per_action_credit(&[0, 1]);
        assert_eq!(mass.len(), 1);
        assert!((mass[0] - 6.0).abs() < 1e-12, "mass = {}", mass[0]);
    }

    #[test]
    fn extend_matches_rebuild_bitwise() {
        let (graph, log) = figure1();
        // Duplicate the trace into three actions so splits are non-trivial.
        let mut b = ActionLogBuilder::new(6);
        for a in 0..3u32 {
            for (u, t) in [(0u32, 0.0), (1, 0.5), (2, 1.0), (3, 1.5), (4, 2.0), (5, 2.5)] {
                if (u + a) % 4 != 3 {
                    b.push(u, a, t);
                }
            }
        }
        let log3 = b.build();
        for policy in [CreditPolicy::Uniform, CreditPolicy::time_aware(&graph, &log)] {
            let full = CdSpreadEvaluator::build(&graph, &log3, &policy);
            for split in 0..=log3.num_actions() {
                let (prefix, delta) = log3.split_at_action(split);
                let mut eval = CdSpreadEvaluator::build(&graph, &prefix, &policy);
                eval.extend(&graph, &delta, &policy).unwrap();
                assert_eq!(eval.num_actions(), full.num_actions());
                for seeds in [vec![0u32], vec![0, 4], vec![2, 3, 5]] {
                    assert_eq!(
                        eval.spread(&seeds).to_bits(),
                        full.spread(&seeds).to_bits(),
                        "split {split}, seeds {seeds:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_rejects_mismatched_deltas() {
        let (graph, log) = figure1();
        let mut eval = CdSpreadEvaluator::build(&graph, &log, &CreditPolicy::Uniform);
        let late = log.delta_range(1, 1); // base 1, evaluator holds 1 action… use wrong base
        let wrong = cdim_actionlog::ActionLogDelta::new(5, late.additions().clone());
        assert!(matches!(
            eval.extend(&graph, &wrong, &CreditPolicy::Uniform),
            Err(crate::incremental::ExtendError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn oracle_interface_agrees() {
        let (graph, log) = figure1();
        let eval = CdSpreadEvaluator::build(&graph, &log, &CreditPolicy::Uniform);
        let via_trait = <CdSpreadEvaluator as SpreadOracle>::spread(&eval, &[0]);
        assert!((via_trait - eval.spread(&[0])).abs() < 1e-15);
        assert_eq!(eval.universe(), 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reference;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// Seeding every user saturates the model: Γ_{S,u}(a) = 1 for all
        /// performers, so σ_cd equals exactly the number of active users.
        #[test]
        fn full_seed_set_spread_is_active_user_count(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..30),
            events in proptest::collection::vec((0u32..8, 0u32..3, 0u64..16), 1..40),
        ) {
            let graph = GraphBuilder::new(8).edges(edges).build();
            let mut b = ActionLogBuilder::new(8);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let eval = CdSpreadEvaluator::build(&graph, &log, &CreditPolicy::Uniform);
            let everyone: Vec<u32> = (0..8).collect();
            let active = (0..8u32).filter(|&u| log.actions_performed_by(u) > 0).count();
            let sigma = eval.spread(&everyone);
            prop_assert!((sigma - active as f64).abs() < 1e-9,
                "σ_cd(V) = {sigma}, active = {active}");
        }

        /// The compiled evaluator must equal the naive reference for random
        /// instances, both policies, arbitrary seed sets.
        #[test]
        fn evaluator_matches_reference(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
            events in proptest::collection::vec((0u32..8, 0u32..3, 0u64..16), 1..40),
            seeds in proptest::sample::subsequence((0u32..8).collect::<Vec<_>>(), 0..5),
            time_aware in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(8).edges(edges).build();
            let mut b = ActionLogBuilder::new(8);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let eval = CdSpreadEvaluator::build(&graph, &log, &policy);
            let fast = eval.spread(&seeds);
            let slow = reference::sigma_cd(&graph, &log, &policy, &seeds);
            prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
        }
    }
}
