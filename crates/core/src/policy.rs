//! Direct-credit assignment policies.
//!
//! When `u` performs `a`, each potential influencer `v ∈ N_in(u, a)` is
//! given direct credit `γ_{v,u}(a)`, with `Σ_v γ_{v,u}(a) ≤ 1` (§4).
//!
//! Two policies from the paper:
//!
//! * [`CreditPolicy::Uniform`] — `γ = 1/d_in(u, a)`, the expository
//!   default used in all worked examples;
//! * [`CreditPolicy::TimeAware`] — Eq 9:
//!   `γ_{v,u}(a) = infl(u)/d_in(u,a) · exp(−(t(u,a) − t(v,a))/τ_{v,u})`,
//!   where `infl(u)` is learned influenceability and `τ_{v,u}` the learned
//!   mean propagation delay; influence decays exponentially with elapsed
//!   time, and less influenceable users hand out less credit.

use cdim_actionlog::PropagationDag;
use cdim_graph::DirectedGraph;
use cdim_learning::TemporalModel;

/// How direct influence credit is assigned.
#[derive(Clone, Debug)]
pub enum CreditPolicy {
    /// Equal credit to every potential influencer: `γ = 1/d_in(u, a)`.
    Uniform,
    /// The time-aware credit of Eq 9, parameterized by learned temporal
    /// parameters.
    TimeAware(TemporalModel),
}

impl CreditPolicy {
    /// Learns a time-aware policy from the training log.
    pub fn time_aware(graph: &DirectedGraph, train: &cdim_actionlog::ActionLog) -> Self {
        CreditPolicy::TimeAware(TemporalModel::learn(graph, train))
    }

    /// Computes `γ` for every propagation edge of `dag`, parallel to the
    /// DAG's flattened parent array (i.e. `parents_of(i)` maps to the same
    /// slice of the returned vector).
    pub fn edge_credits(&self, graph: &DirectedGraph, dag: &PropagationDag) -> Vec<f64> {
        let mut gammas = Vec::with_capacity(dag.num_edges());
        for i in 0..dag.len() {
            let parents = dag.parents_of(i);
            if parents.is_empty() {
                continue;
            }
            let d_in = parents.len() as f64;
            match self {
                CreditPolicy::Uniform => {
                    for _ in parents {
                        gammas.push(1.0 / d_in);
                    }
                }
                CreditPolicy::TimeAware(temporal) => {
                    let u = dag.user(i);
                    let t_u = dag.time(i);
                    let base = temporal.infl(u) / d_in;
                    for &pj in parents {
                        let v = dag.user(pj as usize);
                        let t_v = dag.time(pj as usize);
                        let e = graph
                            .in_edge_position(v, u)
                            .expect("propagation edge must be a social edge");
                        let tau = temporal.tau_at(e);
                        gammas.push(base * (-(t_u - t_v) / tau).exp());
                    }
                }
            }
        }
        debug_assert_eq!(gammas.len(), dag.num_edges());
        gammas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    fn setup() -> (DirectedGraph, cdim_actionlog::ActionLog) {
        // 0 -> 2, 1 -> 2; both 0 and 1 precede 2.
        let graph = GraphBuilder::new(3).edges([(0, 2), (1, 2)]).build();
        let mut b = ActionLogBuilder::new(3);
        b.push(0, 0, 0.0);
        b.push(1, 0, 1.0);
        b.push(2, 0, 2.0);
        let log = b.build();
        (graph, log)
    }

    #[test]
    fn uniform_credit_splits_equally() {
        let (graph, log) = setup();
        let dag = PropagationDag::build(&log, &graph, 0);
        let gammas = CreditPolicy::Uniform.edge_credits(&graph, &dag);
        assert_eq!(gammas.len(), 2);
        assert!(gammas.iter().all(|&g| (g - 0.5).abs() < 1e-12));
    }

    #[test]
    fn uniform_credit_sums_to_one_per_activation() {
        let (graph, log) = setup();
        let dag = PropagationDag::build(&log, &graph, 0);
        let gammas = CreditPolicy::Uniform.edge_credits(&graph, &dag);
        let total: f64 = gammas.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_aware_decays_with_delay() {
        // Edge (0, 1) observed with delays 4 and 2 → τ = 3. The action with
        // the shorter delay must earn more credit: exp(-2/3) > exp(-4/3).
        // (With a single observation per edge, Δ = τ always, so a
        // multi-observation setup is required to see the decay.)
        let graph = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 0.0);
        b.push(1, 0, 4.0);
        b.push(0, 1, 0.0);
        b.push(1, 1, 2.0);
        let log = b.build();
        let policy = CreditPolicy::time_aware(&graph, &log);

        let slow = PropagationDag::build(&log, &graph, 0);
        let fast = PropagationDag::build(&log, &graph, 1);
        let g_slow = policy.edge_credits(&graph, &slow)[0];
        let g_fast = policy.edge_credits(&graph, &fast)[0];
        assert!(g_fast > g_slow, "shorter delay should earn more credit: {g_fast} vs {g_slow}");
        // infl(1) = 1/2: only the delay-2 action is within τ = 3.
        let expected_fast = 0.5 * (-2.0f64 / 3.0).exp();
        let expected_slow = 0.5 * (-4.0f64 / 3.0).exp();
        assert!((g_fast - expected_fast).abs() < 1e-12);
        assert!((g_slow - expected_slow).abs() < 1e-12);
    }

    #[test]
    fn time_aware_credit_bounded_by_one() {
        let (graph, log) = setup();
        let policy = CreditPolicy::time_aware(&graph, &log);
        let dag = PropagationDag::build(&log, &graph, 0);
        let gammas = policy.edge_credits(&graph, &dag);
        let total: f64 = gammas.iter().sum();
        assert!(total <= 1.0 + 1e-12, "sum = {total}");
        assert!(gammas.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn initiators_produce_no_credits() {
        let graph = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 0.0);
        let log = b.build();
        let dag = PropagationDag::build(&log, &graph, 0);
        assert!(CreditPolicy::Uniform.edge_credits(&graph, &dag).is_empty());
    }
}
