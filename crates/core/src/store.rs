//! The UC/SC credit structures of §5.3.
//!
//! `UC[v][u][a]` holds `Γ^{V−S}_{v,u}(a)` — the total credit given to `v`
//! for influencing `u` on action `a`, over paths inside the subgraph
//! induced by non-seeds. `SC[x][a]` holds `Γ_{S,x}(a)` — the credit the
//! *current seed set* earns from `x`. Together they let Theorem 3 compute
//! marginal gains, and Lemmas 2–3 update both stores incrementally when a
//! seed is added.
//!
//! Layout notes. Per action we keep a hash map keyed by the packed `(v,u)`
//! pair plus two adjacency indexes (`v → targets`, `u → sources`).
//! Adjacency entries are pruned eagerly: when a seed update removes a key
//! from the credit map, the matching ids are dropped from both adjacency
//! vectors (order-preserving, so traversal order — and therefore every
//! f64 summation order — is unchanged for the surviving entries). Seeds
//! are added only `k` times and a removal walks only the two affected
//! rows, so the cost is negligible — and `total_entries`/`memory_bytes`
//! stay accurate as the selection shrinks the store.

use cdim_util::{FxHashMap, HeapSize};

/// Packs an ordered user pair into a map key.
#[inline]
pub(crate) fn pair_key(v: u32, u: u32) -> u64 {
    (u64::from(v) << 32) | u64::from(u)
}

/// `(counterparty, credit)` pairs removed by [`ActionCredits::retire`].
pub type RemovedCredits = Vec<(u32, f64)>;

/// Credits of a single action.
#[derive(Clone, Debug, Default)]
pub struct ActionCredits {
    /// `(v, u) → Γ_{v,u}(a)` for stored (≥ λ at insertion time) credits.
    credit: FxHashMap<u64, f64>,
    /// `v → users u` currently receiving credit from `v`.
    out: FxHashMap<u32, Vec<u32>>,
    /// `u → users v` currently giving credit to `u`.
    inc: FxHashMap<u32, Vec<u32>>,
}

impl ActionCredits {
    /// Adds `amount` to `Γ_{v,u}`, creating the entry if absent.
    pub fn add(&mut self, v: u32, u: u32, amount: f64) {
        debug_assert_ne!(v, u, "self-credit is implicit and never stored");
        let key = pair_key(v, u);
        match self.credit.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += amount;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(amount);
                self.out.entry(v).or_default().push(u);
                self.inc.entry(u).or_default().push(v);
            }
        }
    }

    /// `Γ_{v,u}(a)`, or 0 when not stored.
    #[inline]
    pub fn get(&self, v: u32, u: u32) -> f64 {
        self.credit.get(&pair_key(v, u)).copied().unwrap_or(0.0)
    }

    /// Whether `v` currently holds credit over anyone. Exact: adjacency
    /// rows are pruned in lockstep with the credit map.
    pub fn has_influencer(&self, v: u32) -> bool {
        self.out.get(&v).is_some_and(|ts| !ts.is_empty())
    }

    /// Live `(u, Γ_{v,u})` pairs for influencer `v`.
    pub fn targets_of(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.out
            .get(&v)
            .into_iter()
            .flatten()
            .filter_map(move |&u| self.credit.get(&pair_key(v, u)).map(|&c| (u, c)))
    }

    /// Fast check: does `u` currently hold credit from anyone?
    ///
    /// Exact: [`Self::subtract`] and [`Self::retire`] prune the adjacency
    /// rows together with the credit map, so the row exists iff
    /// [`Self::sources_of`] would yield at least one item. The scan uses
    /// it to skip the transitive-relay collection for nodes without
    /// incoming credit.
    #[inline]
    pub fn has_sources(&self, u: u32) -> bool {
        self.inc.get(&u).is_some_and(|vs| !vs.is_empty())
    }

    /// Live `(v, Γ_{v,u})` pairs for target `u`.
    pub fn sources_of(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.inc
            .get(&u)
            .into_iter()
            .flatten()
            .filter_map(move |&v| self.credit.get(&pair_key(v, u)).map(|&c| (v, c)))
    }

    /// Iterates every live credit entry as `(v, u, Γ_{v,u})`, in arbitrary
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.credit.iter().map(|(&key, &c)| ((key >> 32) as u32, key as u32, c))
    }

    /// Iterates the out-adjacency rows as `(v, targets)`, rows in
    /// arbitrary order but each row in its live traversal order (the
    /// order [`Self::targets_of`] walks). Every id in a row is live —
    /// pruning keeps adjacency and the credit map in lockstep — so
    /// per-row credit sums are deterministic for a canonically restored
    /// store even though the row *set* iterates in hash order.
    pub(crate) fn out_rows(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.out.iter().map(|(&v, ts)| (v, ts.as_slice()))
    }

    /// Releases excess capacity in the credit map and every adjacency
    /// row. Called when a store reaches a long-lived resting state (end
    /// of a scan, restore from a dump) so reported memory reflects live
    /// entries, not growth slack.
    pub fn shrink_to_fit(&mut self) {
        self.credit.shrink_to_fit();
        for row in self.out.values_mut() {
            row.shrink_to_fit();
        }
        for row in self.inc.values_mut() {
            row.shrink_to_fit();
        }
        self.out.shrink_to_fit();
        self.inc.shrink_to_fit();
    }

    /// Subtracts `amount` from `Γ_{v,u}` (Lemma 2), clamping at zero.
    /// Entries that become negligible are dropped from the credit map
    /// *and* from both adjacency rows, so entry counts and memory
    /// accounting stay accurate across selection updates. Pruning is
    /// order-preserving: surviving entries keep their traversal (and
    /// therefore f64 summation) order.
    pub fn subtract(&mut self, v: u32, u: u32, amount: f64) {
        let key = pair_key(v, u);
        if let Some(c) = self.credit.get_mut(&key) {
            *c -= amount;
            if *c <= 1e-15 {
                self.credit.remove(&key);
                self.unlink(v, u);
            }
        }
    }

    /// Removes `u` from `v`'s target row and `v` from `u`'s source row,
    /// dropping rows that become empty (so `has_sources`/`has_influencer`
    /// stay exact and [`HeapSize`] reflects only live structure).
    fn unlink(&mut self, v: u32, u: u32) {
        if let Some(targets) = self.out.get_mut(&v) {
            targets.retain(|&t| t != u);
            if targets.is_empty() {
                self.out.remove(&v);
            }
        }
        if let Some(sources) = self.inc.get_mut(&u) {
            sources.retain(|&s| s != v);
            if sources.is_empty() {
                self.inc.remove(&u);
            }
        }
    }

    /// Retires user `x` from this action: removes every credit into or out
    /// of `x` and returns the removed `(targets, sources)` lists, each as
    /// [`RemovedCredits`]. Counterparty adjacency rows are pruned too, so
    /// no dead ids linger anywhere after the call.
    ///
    /// The paper's Algorithm 5 leaves these rows in place; retiring them is
    /// required for correctness of later `computeMG`/`update` calls (see
    /// DESIGN.md §2.2) because `x` no longer belongs to the induced
    /// subgraph `V − S`.
    pub fn retire(&mut self, x: u32) -> (RemovedCredits, RemovedCredits) {
        let gout: RemovedCredits = self
            .out
            .remove(&x)
            .into_iter()
            .flatten()
            .filter_map(|u| self.credit.remove(&pair_key(x, u)).map(|c| (u, c)))
            .collect();
        let gin: RemovedCredits = self
            .inc
            .remove(&x)
            .into_iter()
            .flatten()
            .filter_map(|v| self.credit.remove(&pair_key(v, x)).map(|c| (v, c)))
            .collect();
        // Prune x from the counterparties' rows; the half of each pair
        // already dropped by the `remove(&x)` calls above is a no-op.
        for &(u, _) in &gout {
            self.unlink(x, u);
        }
        for &(v, _) in &gin {
            self.unlink(v, x);
        }
        (gout, gin)
    }

    /// Number of live credit entries.
    pub fn len(&self) -> usize {
        self.credit.len()
    }

    /// Whether the action holds no credits.
    pub fn is_empty(&self) -> bool {
        self.credit.is_empty()
    }
}

impl HeapSize for ActionCredits {
    fn heap_bytes(&self) -> usize {
        self.credit.heap_bytes() + self.out.heap_bytes() + self.inc.heap_bytes()
    }
}

/// The full UC structure plus the per-user indexes Algorithm 3 needs.
#[derive(Clone, Debug)]
pub struct CreditStore {
    /// Per-action credits (`UC[..][..][a]`).
    pub(crate) actions: Vec<ActionCredits>,
    /// Dense action ids each user performed, per user.
    pub(crate) user_actions: Vec<Vec<u32>>,
    /// `1 / A_u` per user (0 when the user performed no action).
    pub(crate) inv_au: Vec<f64>,
    /// Truncation threshold the store was built with.
    pub(crate) lambda: f64,
}

impl CreditStore {
    pub(crate) fn new(num_users: usize, num_actions: usize, lambda: f64) -> Self {
        CreditStore {
            actions: vec![ActionCredits::default(); num_actions],
            user_actions: vec![Vec::new(); num_users],
            inv_au: vec![0.0; num_users],
            lambda,
        }
    }

    /// Number of users in the id space.
    pub fn num_users(&self) -> usize {
        self.user_actions.len()
    }

    /// Number of actions scanned.
    pub fn num_actions(&self) -> usize {
        self.actions.len()
    }

    /// The truncation threshold λ used during the scan.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Total live credit entries across all actions — the memory driver
    /// reported in Fig 8 (right) and Table 4.
    pub fn total_entries(&self) -> usize {
        self.actions.iter().map(ActionCredits::len).sum()
    }

    /// Credits of one action.
    pub fn action(&self, a: u32) -> &ActionCredits {
        &self.actions[a as usize]
    }

    /// Mutable credits of one action.
    pub(crate) fn action_mut(&mut self, a: u32) -> &mut ActionCredits {
        &mut self.actions[a as usize]
    }

    /// Dense action ids user `u` performed.
    pub fn actions_of_user(&self, u: u32) -> &[u32] {
        &self.user_actions[u as usize]
    }

    /// `1 / A_u` (0 for users with no actions).
    #[inline]
    pub fn inv_au(&self, u: u32) -> f64 {
        self.inv_au[u as usize]
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.heap_bytes()
    }

    /// Releases excess capacity across all per-action structures and the
    /// per-user indexes (see [`ActionCredits::shrink_to_fit`]).
    pub fn shrink_to_fit(&mut self) {
        for ac in &mut self.actions {
            ac.shrink_to_fit();
        }
        for actions in &mut self.user_actions {
            actions.shrink_to_fit();
        }
    }
}

impl HeapSize for CreditStore {
    fn heap_bytes(&self) -> usize {
        self.actions.heap_bytes() + self.user_actions.heap_bytes() + self.inv_au.heap_bytes()
    }
}

/// A plain-data image of a [`CreditStore`] — the serialization hook the
/// snapshot format builds on.
///
/// Credit entries are emitted in sorted `(v, u)` order per action, so the
/// dump of a store is canonical: dumping, restoring and dumping again
/// yields identical data (and identical snapshot bytes) regardless of the
/// hash-map iteration order inside the live store.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CreditStoreDump {
    /// Truncation threshold λ the store was built with.
    pub lambda: f64,
    /// Dense action ids each user performed (indexed by user).
    pub user_actions: Vec<Vec<u32>>,
    /// `1 / A_u` per user.
    pub inv_au: Vec<f64>,
    /// Per action, live `(v, u, Γ_{v,u})` triples sorted by `(v, u)`.
    pub credits: Vec<Vec<(u32, u32, f64)>>,
}

impl CreditStore {
    /// Exports the store as plain data (canonical entry order).
    pub fn dump(&self) -> CreditStoreDump {
        let credits = self
            .actions
            .iter()
            .map(|ac| {
                let mut entries: Vec<(u32, u32, f64)> = ac.entries().collect();
                entries.sort_unstable_by_key(|&(v, u, _)| pair_key(v, u));
                entries
            })
            .collect();
        CreditStoreDump {
            lambda: self.lambda,
            user_actions: self.user_actions.clone(),
            inv_au: self.inv_au.clone(),
            credits,
        }
    }

    /// Rebuilds a store from a [`dump`](Self::dump).
    ///
    /// The adjacency indexes are reconstructed by replaying the entries in
    /// the dump's canonical order, so two stores restored from equal dumps
    /// are identical down to iteration order.
    pub fn from_dump(dump: &CreditStoreDump) -> Self {
        let mut store = CreditStore::new(dump.user_actions.len(), dump.credits.len(), dump.lambda);
        store.user_actions.clone_from(&dump.user_actions);
        store.inv_au.clone_from(&dump.inv_au);
        for (a, entries) in dump.credits.iter().enumerate() {
            let ac = &mut store.actions[a];
            for &(v, u, c) in entries {
                ac.add(v, u, c);
            }
        }
        // The dump named the final sizes; drop the growth slack so a
        // restored store's memory accounting reflects live entries only.
        store.shrink_to_fit();
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_get_reads() {
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.25);
        ac.add(1, 2, 0.25);
        assert!((ac.get(1, 2) - 0.5).abs() < 1e-12);
        assert_eq!(ac.get(2, 1), 0.0);
        assert_eq!(ac.len(), 1);
    }

    #[test]
    fn adjacency_iterators_report_live_entries() {
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.add(1, 3, 0.25);
        ac.add(4, 2, 0.125);
        let mut ts: Vec<_> = ac.targets_of(1).collect();
        ts.sort_by_key(|&(u, _)| u);
        assert_eq!(ts, vec![(2, 0.5), (3, 0.25)]);
        let mut ss: Vec<_> = ac.sources_of(2).collect();
        ss.sort_by_key(|&(v, _)| v);
        assert_eq!(ss, vec![(1, 0.5), (4, 0.125)]);
    }

    #[test]
    fn subtract_clamps_and_removes() {
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.subtract(1, 2, 0.2);
        assert!((ac.get(1, 2) - 0.3).abs() < 1e-12);
        ac.subtract(1, 2, 0.3);
        assert_eq!(ac.get(1, 2), 0.0);
        assert!(ac.is_empty());
        // Subtracting a missing entry is a no-op.
        ac.subtract(9, 9, 1.0);
    }

    #[test]
    fn retire_removes_row_and_column() {
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.add(0, 1, 0.25);
        ac.add(3, 4, 0.75);
        let (gout, gin) = ac.retire(1);
        assert_eq!(gout, vec![(2, 0.5)]);
        assert_eq!(gin, vec![(0, 0.25)]);
        assert_eq!(ac.get(1, 2), 0.0);
        assert_eq!(ac.get(0, 1), 0.0);
        assert!((ac.get(3, 4) - 0.75).abs() < 1e-12);
        assert!(!ac.has_influencer(1));
        // Pruned adjacency must not resurrect entries.
        assert_eq!(ac.targets_of(1).count(), 0);
        assert_eq!(ac.sources_of(1).count(), 0);
    }

    #[test]
    fn has_sources_tracks_incoming_credit() {
        let mut ac = ActionCredits::default();
        assert!(!ac.has_sources(2));
        ac.add(1, 2, 0.5);
        assert!(ac.has_sources(2));
        assert!(!ac.has_sources(1));
        // Exact under pruning: removing one of two sources keeps the row,
        // removing the last one drops it.
        ac.add(3, 2, 0.25);
        ac.subtract(1, 2, 0.5);
        assert!(ac.has_sources(2));
        ac.subtract(3, 2, 0.25);
        assert!(!ac.has_sources(2));
    }

    #[test]
    fn subtract_and_retire_prune_adjacency_rows() {
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.add(1, 3, 0.25);
        ac.add(4, 2, 0.125);
        let populated = ac.heap_bytes();

        // Zeroing (1, 2) prunes exactly that id from both rows.
        ac.subtract(1, 2, 0.5);
        assert_eq!(ac.targets_of(1).collect::<Vec<_>>(), vec![(3, 0.25)]);
        assert_eq!(ac.sources_of(2).collect::<Vec<_>>(), vec![(4, 0.125)]);
        assert!(ac.has_influencer(1));
        assert!(ac.has_sources(2));

        // Retiring 4 empties 2's source row entirely; retiring 1 empties
        // everything. No dead ids or empty rows may linger.
        ac.retire(4);
        assert!(!ac.has_sources(2));
        let (gout, gin) = ac.retire(1);
        assert_eq!(gout, vec![(3, 0.25)]);
        assert!(gin.is_empty());
        assert!(ac.is_empty());
        assert_eq!(ac.len(), 0);
        assert!(!ac.has_influencer(1));
        assert!(!ac.has_sources(3));
        // The heap estimate no longer counts the removed rows' contents
        // (map capacity may linger, row payloads must not).
        assert!(ac.heap_bytes() <= populated);
        assert_eq!(ac.entries().count(), 0);
    }

    #[test]
    fn oversubtract_clamps_to_removal_and_prunes() {
        // Lemma 2 can subtract more than is stored when λ truncated the
        // stored value: the entry must drop out entirely (never go
        // negative) and both adjacency rows must prune in lockstep.
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.add(1, 3, 0.25);
        ac.subtract(1, 2, 0.7);
        assert_eq!(ac.get(1, 2), 0.0);
        assert_eq!(ac.len(), 1);
        assert_eq!(ac.targets_of(1).collect::<Vec<_>>(), vec![(3, 0.25)]);
        assert!(!ac.has_sources(2));
        // A second over-subtract of the now-missing entry is a no-op.
        ac.subtract(1, 2, 0.7);
        assert_eq!(ac.len(), 1);
        // No surviving entry is ever negative.
        assert!(ac.entries().all(|(_, _, c)| c > 0.0));
    }

    #[test]
    fn near_zero_residue_is_dropped_not_stored() {
        // Subtracting down to within the 1e-15 floor must remove the
        // entry — a stored near-zero residue would survive a dump/restore
        // round trip and desynchronize adjacency pruning.
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.subtract(1, 2, 0.5 - 1e-16);
        assert_eq!(ac.len(), 0);
        assert!(!ac.has_influencer(1));
        assert!(!ac.has_sources(2));
    }

    #[test]
    fn re_add_after_retire_relinks_adjacency() {
        // A sliding-window cycle can retire a user (seed commit) and
        // later re-encounter them in fresh credits; the vacant-entry path
        // must rebuild both adjacency rows from scratch.
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.add(0, 1, 0.25);
        ac.retire(1);
        assert!(ac.is_empty());

        ac.add(1, 2, 0.125);
        assert_eq!(ac.get(1, 2), 0.125);
        assert!(ac.has_influencer(1));
        assert!(ac.has_sources(2));
        assert_eq!(ac.targets_of(1).collect::<Vec<_>>(), vec![(2, 0.125)]);
        assert_eq!(ac.sources_of(2).collect::<Vec<_>>(), vec![(1, 0.125)]);
        // And the inverse direction: credit INTO the retired user again.
        ac.add(0, 1, 0.0625);
        assert_eq!(ac.sources_of(1).collect::<Vec<_>>(), vec![(0, 0.0625)]);
        assert_eq!(ac.len(), 2);
    }

    #[test]
    fn re_add_after_subtract_removal_accumulates_fresh() {
        // add → subtract-to-zero → add must start from the new amount,
        // not resurrect the old entry, and must not duplicate adjacency
        // ids.
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.subtract(1, 2, 0.5);
        ac.add(1, 2, 0.25);
        ac.add(1, 2, 0.25);
        assert!((ac.get(1, 2) - 0.5).abs() < 1e-12);
        assert_eq!(ac.targets_of(1).count(), 1);
        assert_eq!(ac.sources_of(2).count(), 1);
    }

    #[test]
    fn retire_twice_is_idempotent() {
        let mut ac = ActionCredits::default();
        ac.add(1, 2, 0.5);
        ac.add(0, 1, 0.25);
        ac.retire(1);
        let (gout, gin) = ac.retire(1);
        assert!(gout.is_empty());
        assert!(gin.is_empty());
        assert!(ac.is_empty());
    }

    #[test]
    fn total_entries_stays_accurate_after_updates() {
        let mut store = CreditStore::new(4, 1, 0.0);
        store.action_mut(0).add(0, 1, 0.5);
        store.action_mut(0).add(1, 2, 0.5);
        store.action_mut(0).add(0, 3, 0.5);
        assert_eq!(store.total_entries(), 3);
        store.action_mut(0).retire(0);
        assert_eq!(store.total_entries(), 1);
        store.action_mut(0).subtract(1, 2, 0.5);
        assert_eq!(store.total_entries(), 0);
        assert_eq!(store.action(0).entries().count(), 0);
    }

    #[test]
    fn store_entry_counting() {
        let mut store = CreditStore::new(4, 2, 0.0);
        store.action_mut(0).add(0, 1, 0.5);
        store.action_mut(1).add(2, 3, 0.25);
        store.action_mut(1).add(0, 3, 0.25);
        assert_eq!(store.total_entries(), 3);
        assert!(store.memory_bytes() > 0);
    }
}
