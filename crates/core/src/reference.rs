//! Naive reference implementations of the credit-distribution equations.
//!
//! Everything here favors obviousness over speed: direct dynamic programs
//! over the propagation DAGs, with explicit set arguments and explicit
//! induced-subgraph restrictions. The optimized scan (Alg 2), marginal
//! gains (Theorem 3) and incremental updates (Lemmas 2–3) are all tested
//! against this module; it is also a readable executable specification of
//! §4 for library users.

use crate::policy::CreditPolicy;
use cdim_actionlog::{ActionId, ActionLog, PropagationDag, UserId};
use cdim_graph::DirectedGraph;
use std::collections::BTreeMap;

/// Γ_{v,u}(a) for every pair with nonzero credit, by direct DP over Eq 5.
pub fn pairwise_credit(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    a: ActionId,
) -> BTreeMap<(UserId, UserId), f64> {
    let dag = PropagationDag::build(log, graph, a);
    let gammas = policy.edge_credits(graph, &dag);
    let offsets = edge_offsets(&dag);
    let n = dag.len();
    let mut out = BTreeMap::new();

    // One DP per source v: Γ_{v,·}.
    for src in 0..n {
        let mut credit = vec![0.0f64; n];
        credit[src] = 1.0; // Γ_{v,v} = 1
        for i in 0..n {
            if i == src {
                continue;
            }
            let mut total = 0.0;
            for (k, &pj) in dag.parents_of(i).iter().enumerate() {
                total += credit[pj as usize] * gammas[offsets[i] + k];
            }
            credit[i] = total;
            if total > 0.0 {
                out.insert((dag.user(src), dag.user(i)), total);
            }
        }
    }
    out
}

/// Γ_{S,u}(a) for every performer `u`, with paths restricted to the node
/// subset `within` (pass all users for the unrestricted `Γ_{S,u}`).
///
/// Direct credits γ are always computed on the full propagation graph
/// (§5.1: "the direct credit γ is always assigned considering the whole
/// propagation graph"); the restriction applies to the *relay* nodes.
pub fn set_credit_restricted(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    a: ActionId,
    seeds: &dyn Fn(UserId) -> bool,
    within: &dyn Fn(UserId) -> bool,
) -> BTreeMap<UserId, f64> {
    let dag = PropagationDag::build(log, graph, a);
    let gammas = policy.edge_credits(graph, &dag);
    let offsets = edge_offsets(&dag);
    let n = dag.len();
    let mut credit = vec![0.0f64; n];
    let mut out = BTreeMap::new();
    for i in 0..n {
        let u = dag.user(i);
        credit[i] = if seeds(u) {
            1.0
        } else if !within(u) {
            // Outside the induced subgraph: cannot receive or relay.
            0.0
        } else {
            let mut total = 0.0;
            for (k, &pj) in dag.parents_of(i).iter().enumerate() {
                total += credit[pj as usize] * gammas[offsets[i] + k];
            }
            total
        };
        out.insert(u, credit[i]);
    }
    out
}

/// Γ_{S,u}(a) on the whole propagation graph.
pub fn set_credit(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    a: ActionId,
    seed_set: &[UserId],
) -> BTreeMap<UserId, f64> {
    let seeds: Vec<UserId> = seed_set.to_vec();
    set_credit_restricted(graph, log, policy, a, &move |u| seeds.contains(&u), &|_| true)
}

/// Exact σ_cd(S) = Σ_u (1/A_u) Σ_a Γ_{S,u}(a), by full recomputation.
pub fn sigma_cd(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    seed_set: &[UserId],
) -> f64 {
    let mut total = 0.0;
    for a in log.actions() {
        for (u, credit) in set_credit(graph, log, policy, a, seed_set) {
            let au = log.actions_performed_by(u);
            if au > 0 {
                total += credit / f64::from(au);
            }
        }
    }
    total
}

/// Flattened-parent-array offsets per local node of a DAG.
fn edge_offsets(dag: &PropagationDag) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(dag.len());
    let mut acc = 0usize;
    for i in 0..dag.len() {
        offsets.push(acc);
        acc += dag.in_degree(i);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    /// Same Figure-1 construction as the scan tests.
    fn figure1() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(6)
            .edges([(0, 2), (1, 2), (0, 3), (2, 4), (0, 5), (2, 5), (3, 5), (4, 5)])
            .build();
        let mut b = ActionLogBuilder::new(6);
        for (u, t) in [(0u32, 0.0), (1, 0.5), (2, 1.0), (3, 1.5), (4, 2.0), (5, 2.5)] {
            b.push(u, 0, t);
        }
        (graph, b.build())
    }

    #[test]
    fn pairwise_matches_paper_example() {
        let (graph, log) = figure1();
        let credits = pairwise_credit(&graph, &log, &CreditPolicy::Uniform, 0);
        assert!((credits[&(0, 5)] - 0.75).abs() < 1e-12);
        assert!((credits[&(2, 5)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_credit_matches_paper_lemma1_example() {
        // Paper (§5.2): with S = {v, z}, Γ_{S,u} = 0.875.
        let (graph, log) = figure1();
        let credits = set_credit(&graph, &log, &CreditPolicy::Uniform, 0, &[0, 4]);
        assert!((credits[&5] - 0.875).abs() < 1e-12, "Γ_S,u = {}", credits[&5]);
    }

    #[test]
    fn restricted_credit_ignores_paths_through_excluded_nodes() {
        // Γ^{V−z}_{v,u}: drop relays through z. From the paper's Lemma 1
        // example: Γ^{V−z}_{v,u} = 0.25 + 0.25 + 0.5·0.25 = 0.625.
        let (graph, log) = figure1();
        let credits =
            set_credit_restricted(&graph, &log, &CreditPolicy::Uniform, 0, &|u| u == 0, &|u| {
                u != 4
            });
        assert!((credits[&5] - 0.625).abs() < 1e-12, "got {}", credits[&5]);
    }

    #[test]
    fn lemma1_holds_on_example() {
        // Γ_{S,u} = Σ_{v∈S} Γ^{V−S+v}_{v,u} with S = {v, z}:
        // 0.625 (v, avoiding z) + 0.25 (z, avoiding v) = 0.875.
        let (graph, log) = figure1();
        let policy = CreditPolicy::Uniform;
        let v_side = set_credit_restricted(&graph, &log, &policy, 0, &|u| u == 0, &|u| u != 4);
        let z_side = set_credit_restricted(&graph, &log, &policy, 0, &|u| u == 4, &|u| u != 0);
        let joint = set_credit(&graph, &log, &policy, 0, &[0, 4]);
        assert!((v_side[&5] + z_side[&5] - joint[&5]).abs() < 1e-12);
    }

    #[test]
    fn sigma_counts_seeds_once_per_their_actions() {
        let (graph, log) = figure1();
        // Every user performs exactly one action, so a seed's self-credit
        // contributes exactly 1.
        let s = sigma_cd(&graph, &log, &CreditPolicy::Uniform, &[5]);
        assert!((s - 1.0).abs() < 1e-12, "sink node influences nobody: {s}");
    }

    #[test]
    fn sigma_of_initiators_covers_whole_trace() {
        let (graph, log) = figure1();
        // Seeding all initiators gives Γ = 1 at every performer: σ = 6.
        let s = sigma_cd(&graph, &log, &CreditPolicy::Uniform, &[0, 1]);
        assert!((s - 6.0).abs() < 1e-12, "σ = {s}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    fn random_instance(
        edges: Vec<(u32, u32)>,
        events: Vec<(u32, u32, u64)>,
    ) -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(8).edges(edges).build();
        let mut b = ActionLogBuilder::new(8);
        for (u, a, t) in events {
            b.push(u, a, t as f64);
        }
        (graph, b.build())
    }

    proptest! {
        /// σ_cd is monotone: adding a seed never decreases spread
        /// (Theorem 2, first half).
        #[test]
        fn sigma_is_monotone(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
            events in proptest::collection::vec((0u32..8, 0u32..3, 0u64..16), 1..40),
            order in proptest::sample::subsequence((0u32..8).collect::<Vec<_>>(), 0..8),
        ) {
            let (graph, log) = random_instance(edges, events);
            let policy = CreditPolicy::Uniform;
            let mut seeds: Vec<u32> = Vec::new();
            let mut prev = sigma_cd(&graph, &log, &policy, &seeds);
            for s in order {
                seeds.push(s);
                let cur = sigma_cd(&graph, &log, &policy, &seeds);
                prop_assert!(cur + 1e-9 >= prev, "σ dropped: {prev} -> {cur}");
                prev = cur;
            }
        }

        /// σ_cd is submodular: σ(S+x) − σ(S) ≥ σ(T+x) − σ(T) for S ⊆ T
        /// (Theorem 2, second half).
        #[test]
        fn sigma_is_submodular(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
            events in proptest::collection::vec((0u32..8, 0u32..3, 0u64..16), 1..40),
            s_size in 0usize..3,
            extra in 0usize..3,
            x in 0u32..8,
        ) {
            let (graph, log) = random_instance(edges, events);
            let policy = CreditPolicy::Uniform;
            let small: Vec<u32> = (0..s_size as u32).collect();
            let mut large = small.clone();
            large.extend((s_size as u32..(s_size + extra) as u32).take(extra));
            prop_assume!(!small.contains(&x) && !large.contains(&x));

            let gain_small = sigma_cd(&graph, &log, &policy, &with(&small, x))
                - sigma_cd(&graph, &log, &policy, &small);
            let gain_large = sigma_cd(&graph, &log, &policy, &with(&large, x))
                - sigma_cd(&graph, &log, &policy, &large);
            prop_assert!(gain_small + 1e-9 >= gain_large,
                "submodularity violated: {gain_small} < {gain_large}");
        }

        /// Lemma 1 on random instances: Γ_{S,u} = Σ_{v∈S} Γ^{V−S+v}_{v,u}.
        #[test]
        fn lemma1_random(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
            events in proptest::collection::vec((0u32..8, 0u32..2, 0u64..16), 1..30),
            seeds in proptest::sample::subsequence((0u32..8).collect::<Vec<_>>(), 1..4),
        ) {
            let (graph, log) = random_instance(edges, events);
            let policy = CreditPolicy::Uniform;
            for a in log.actions() {
                let joint = set_credit(&graph, &log, &policy, a, &seeds);
                let mut summed: std::collections::BTreeMap<u32, f64> =
                    joint.keys().map(|&u| (u, 0.0)).collect();
                for &v in &seeds {
                    let seeds_cl = seeds.clone();
                    let part = set_credit_restricted(
                        &graph, &log, &policy, a,
                        &move |u| u == v,
                        &move |u| u == v || !seeds_cl.contains(&u),
                    );
                    for (u, c) in part {
                        *summed.get_mut(&u).unwrap() += c;
                    }
                }
                for (u, &c) in &joint {
                    // Seeds themselves: joint = 1; the sum may differ (the
                    // lemma is about non-seed nodes reachable via relays).
                    if seeds.contains(u) {
                        continue;
                    }
                    prop_assert!((summed[u] - c).abs() < 1e-9,
                        "action {a} node {u}: {} vs {c}", summed[u]);
                }
            }
        }
    }

    fn with(set: &[u32], x: u32) -> Vec<u32> {
        let mut v = set.to_vec();
        v.push(x);
        v
    }
}
