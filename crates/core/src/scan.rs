//! Algorithm 2 — the one-pass scan of the action log.
//!
//! The log is processed action by action, chronologically within each
//! action (the [`cdim_actionlog::ActionLog`] invariant). For each
//! activation `(u, a, t_u)` the scan assigns direct credit `γ_{v,u}` to
//! each potential influencer and propagates total credit transitively:
//!
//! ```text
//! UC[v][u][a] += γ_{v,u}                        (direct,      if γ ≥ λ)
//! UC[w][u][a] += γ_{v,u} · UC[w][v][a]          (transitive,  if term ≥ λ)
//! ```
//!
//! Credits into `v` are final before any later user activates, because a
//! node only receives credit at its own activation — so a single pass
//! computes the full recursive total credit of Eq 5 exactly (up to the λ
//! truncation, whose accuracy/memory trade-off Table 4 quantifies).
//!
//! ## The three-stage pipeline
//!
//! Credit assignment never crosses an action boundary: each action's
//! [`PropagationDag`] and [`ActionCredits`] touch no shared state. The
//! scan exploits that as a pipeline:
//!
//! 1. **kernel** — [`scan_action`] computes one action's full
//!    [`ActionCredits`], a pure function of `(graph, log, policy, λ, a)`;
//! 2. **parallel driver** — [`scan_with`] shards the action range over
//!    [`cdim_util::pool`] workers ([`Parallelism`] controls how many),
//!    each shard writing its `ActionCredits` values into their slots;
//! 3. **merge** — the slots are concatenated in action order into the
//!    [`CreditStore`].
//!
//! Because every slot is produced by the same kernel with the same
//! accumulation order, and the merge is a plain ordered concatenation,
//! the resulting store — and its canonical [`CreditStoreDump`] — is
//! **bit-identical for every thread count**.
//!
//! [`CreditStoreDump`]: crate::store::CreditStoreDump

use crate::policy::CreditPolicy;
use crate::store::{ActionCredits, CreditStore};
use crate::telemetry::ScanTelemetry;
use cdim_actionlog::{ActionId, ActionLog, PropagationDag};
use cdim_graph::DirectedGraph;
use cdim_util::pool::{parallel_map_shards, Parallelism};
use cdim_util::Timer;

/// Input validation failures of [`scan`].
///
/// The scan is the entry point a long-lived service feeds untrusted
/// retraining requests into, so bad inputs must surface as values, not
/// process aborts.
#[derive(Clone, Debug, PartialEq)]
pub enum ScanError {
    /// The truncation threshold was negative or NaN.
    InvalidLambda {
        /// The offending λ.
        lambda: f64,
    },
    /// Graph and log disagree on the user universe, so user ids cannot be
    /// shared between them.
    UserUniverseMismatch {
        /// Nodes in the social graph.
        graph_nodes: usize,
        /// Users in the action log.
        log_users: usize,
    },
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::InvalidLambda { lambda } => {
                write!(f, "truncation threshold must be a non-negative number, got {lambda}")
            }
            ScanError::UserUniverseMismatch { graph_nodes, log_users } => write!(
                f,
                "graph and log must share a user universe ({graph_nodes} nodes vs {log_users} users)"
            ),
        }
    }
}

impl std::error::Error for ScanError {}

/// Stage-1 kernel: computes the full credits of a single action.
///
/// A pure function of its arguments — it reads no state outside the
/// action `a` and builds the [`ActionCredits`] from scratch, which is
/// what makes the action-sharded parallel scan of [`scan_with`] exact:
/// running this kernel on any thread, in any order, yields the same
/// credits as the sequential loop, down to the f64 accumulation order.
///
/// `scratch` is a reusable buffer for the transitive-relay collection
/// (callers iterating many actions pass the same buffer to avoid
/// reallocating per action; its contents on entry are irrelevant).
pub fn scan_action(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    lambda: f64,
    a: ActionId,
    scratch: &mut Vec<(u32, f64)>,
) -> ActionCredits {
    let dag = PropagationDag::build(log, graph, a);
    let gammas = policy.edge_credits(graph, &dag);
    let mut credits = ActionCredits::default();
    let mut edge_idx = 0usize;
    for i in 0..dag.len() {
        let u = dag.user(i);
        for &pj in dag.parents_of(i) {
            let v = dag.user(pj as usize);
            let gamma = gammas[edge_idx];
            edge_idx += 1;
            if gamma <= 0.0 {
                continue;
            }
            if gamma >= lambda {
                credits.add(v, u, gamma);
            }
            // Transitive credit: everyone upstream of v relays through
            // this activation. Skip the whole collection when v holds no
            // incoming credit (the common case for shallow DAGs).
            if !credits.has_sources(v) {
                continue;
            }
            // Truncation predicate, hoisted: `c ≥ λ/γ` with one division
            // per edge instead of one multiply per source. In exact
            // arithmetic this equals `c·γ ≥ λ`; in f64 the two can differ
            // by one ulp at the λ boundary, which truncation tolerates by
            // design (λ itself is a coarse accuracy/memory dial, §5.3).
            // What matters is that the predicate is a pure function of
            // `(c, γ, λ)` — identical on every thread.
            let bound = lambda / gamma;
            // Collect first — we cannot mutate while iterating the same
            // action's map.
            scratch.clear();
            scratch.extend(credits.sources_of(v).filter(|&(w, c)| w != u && c >= bound));
            for &(w, c) in scratch.iter() {
                credits.add(w, u, c * gamma);
            }
        }
    }
    credits
}

/// Scans `log` and builds the [`CreditStore`] using all available cores.
///
/// `lambda` is the truncation threshold (§5.3): credit increments below it
/// are discarded, bounding memory at a quantified cost in accuracy. Pass
/// `0.0` for the exact store.
///
/// Equivalent to [`scan_with`] under [`Parallelism::auto`] — the result
/// does not depend on the thread count.
pub fn scan(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    lambda: f64,
) -> Result<CreditStore, ScanError> {
    scan_with(graph, log, policy, lambda, Parallelism::auto())
}

/// Scans `log` with an explicit thread budget.
///
/// Stage 2 of the pipeline: the action range is split into one contiguous
/// chunk per worker (deterministically — see
/// [`cdim_util::pool::split_ranges`]), each worker runs the
/// [`scan_action`] kernel over its chunk with a thread-local scratch
/// buffer, and the per-action results are concatenated in action order.
/// Since actions share no credit state, the merged store is **bit-identical
/// to the sequential scan for every `parallelism`** — callers choose a
/// thread count for speed, never for semantics.
pub fn scan_with(
    graph: &DirectedGraph,
    log: &ActionLog,
    policy: &CreditPolicy,
    lambda: f64,
    parallelism: Parallelism,
) -> Result<CreditStore, ScanError> {
    if lambda.is_nan() || lambda < 0.0 {
        return Err(ScanError::InvalidLambda { lambda });
    }
    if graph.num_nodes() != log.num_users() {
        return Err(ScanError::UserUniverseMismatch {
            graph_nodes: graph.num_nodes(),
            log_users: log.num_users(),
        });
    }
    let mut store = CreditStore::new(log.num_users(), log.num_actions(), lambda);

    // Per-user action membership and 1/A_u.
    for a in log.actions() {
        for &u in log.users_of(a) {
            store.user_actions[u as usize].push(a);
        }
    }
    for u in 0..log.num_users() {
        let au = log.actions_performed_by(u as u32);
        store.inv_au[u] = if au > 0 { 1.0 / f64::from(au) } else { 0.0 };
    }

    // Stages 2 + 3: fan the kernel out over action chunks, merge in order.
    // Timing wraps the shard loop and the parallel section as a whole —
    // never the per-action kernel — so instrumentation cannot perturb the
    // model bytes and adds nothing to the hot path.
    let wall = Timer::start();
    let shards = parallel_map_shards(parallelism, log.num_actions(), |_, range| {
        let shard_timer = Timer::start();
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        let credits = range
            .map(|a| scan_action(graph, log, policy, lambda, a as ActionId, &mut scratch))
            .collect::<Vec<_>>();
        (credits, shard_timer.secs())
    });
    let wall_secs = wall.secs();
    let shard_secs: Vec<f64> = shards.iter().map(|(_, s)| *s).collect();
    ScanTelemetry::get().record_scan(wall_secs, &shard_secs);
    let mut actions = Vec::with_capacity(log.num_actions());
    for (shard, _) in shards {
        actions.extend(shard);
    }
    store.actions = actions;
    // The push-grown per-user and per-action Vecs can hold up to 2×
    // their length in capacity; a freshly-scanned store is read far more
    // than it is extended, so hand the slack back before returning.
    store.shrink_to_fit();

    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    /// The running example of §4 (Figure 1), reconstructed so that the
    /// paper's hand-computed credits hold:
    ///
    /// users: v=0, q=1, t=2, w=3, z=4, u=5
    /// edges: v→t, q→t, v→w, t→z, w→z is absent…
    ///
    /// We need: d_in(t)=2 with parents {v, q}; d_in(w)=1 parent {v};
    /// d_in(z)=1 parent {t}; d_in(u)=4 parents {v, t, w, z}.
    /// Then Γ_{v,t} = 0.5, Γ_{v,w} = 1, Γ_{v,z} = 0.5, and
    /// Γ_{v,u} = 1·0.25 + 0.5·0.25 + 1·0.25 + 0.5·0.25 = 0.75 — the
    /// paper's worked value.
    fn figure1() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(6)
            .edges([
                (0, 2), // v -> t
                (1, 2), // q -> t
                (0, 3), // v -> w
                (2, 4), // t -> z
                (0, 5), // v -> u
                (2, 5), // t -> u
                (3, 5), // w -> u
                (4, 5), // z -> u
            ])
            .build();
        let mut b = ActionLogBuilder::new(6);
        b.push(0, 0, 0.0); // v
        b.push(1, 0, 0.5); // q
        b.push(2, 0, 1.0); // t
        b.push(3, 0, 1.5); // w
        b.push(4, 0, 2.0); // z
        b.push(5, 0, 2.5); // u
        (graph, b.build())
    }

    #[test]
    fn reproduces_paper_worked_example() {
        let (graph, log) = figure1();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let ac = store.action(0);
        assert!((ac.get(0, 2) - 0.5).abs() < 1e-12, "Γ_v,t");
        assert!((ac.get(0, 3) - 1.0).abs() < 1e-12, "Γ_v,w");
        assert!((ac.get(0, 4) - 0.5).abs() < 1e-12, "Γ_v,z");
        assert!((ac.get(0, 5) - 0.75).abs() < 1e-12, "Γ_v,u = 0.75");
        // And the other influencers of u each hold their direct share.
        assert!((ac.get(3, 5) - 0.25).abs() < 1e-12, "Γ_w,u");
        assert!((ac.get(4, 5) - 0.25).abs() < 1e-12, "Γ_z,u");
        // t relays credit to z and u: Γ_t,u = γ_t,u + Γ_t,z·γ_z,u.
        assert!((ac.get(2, 5) - 0.5).abs() < 1e-12, "Γ_t,u");
    }

    #[test]
    fn initiators_receive_all_flow() {
        let (graph, log) = figure1();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let ac = store.action(0);
        // Initiators have no in-edges, so no path passes through one:
        // Γ_{Initiators,u} = Σ_{v ∈ Initiators} Γ_{v,u}, and under the
        // uniform policy every unit of credit flows back to initiators.
        let total: f64 = [0u32, 1].iter().map(|&v| ac.get(v, 5)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total = {total}");
    }

    #[test]
    fn truncation_drops_small_credits() {
        let (graph, log) = figure1();
        let exact = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let truncated = scan(&graph, &log, &CreditPolicy::Uniform, 0.3).unwrap();
        assert!(truncated.total_entries() < exact.total_entries());
        // γ = 0.25 edges into u are below λ = 0.3 and must be gone.
        assert_eq!(truncated.action(0).get(3, 5), 0.0);
        // γ = 0.5 direct credit survives.
        assert!(truncated.action(0).get(0, 2) > 0.0);
    }

    #[test]
    fn au_bookkeeping() {
        let (graph, log) = figure1();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        assert_eq!(store.actions_of_user(0), &[0]);
        assert!((store.inv_au(0) - 1.0).abs() < 1e-12);
        assert_eq!(store.inv_au(5), 1.0);
    }

    #[test]
    fn empty_log_produces_empty_store() {
        let graph = GraphBuilder::new(3).edges([(0, 1)]).build();
        let log = ActionLogBuilder::new(3).build();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        assert_eq!(store.total_entries(), 0);
        assert_eq!(store.num_actions(), 0);
        assert_eq!(store.inv_au(0), 0.0);
        // The parallel driver must also accept a zero-action log.
        let store =
            scan_with(&graph, &log, &CreditPolicy::Uniform, 0.0, Parallelism::fixed(4)).unwrap();
        assert_eq!(store.num_actions(), 0);
    }

    #[test]
    fn kernel_matches_full_scan_per_action() {
        let (graph, log) = figure1();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        let mut scratch = Vec::new();
        let credits = scan_action(&graph, &log, &CreditPolicy::Uniform, 0.0, 0, &mut scratch);
        let mut from_kernel: Vec<_> = credits.entries().collect();
        let mut from_scan: Vec<_> = store.action(0).entries().collect();
        from_kernel.sort_by_key(|&(v, u, _)| (v, u));
        from_scan.sort_by_key(|&(v, u, _)| (v, u));
        assert_eq!(from_kernel, from_scan);
    }

    #[test]
    fn thread_count_never_changes_the_dump() {
        let (graph, log) = figure1();
        for lambda in [0.0, 0.3] {
            let baseline =
                scan_with(&graph, &log, &CreditPolicy::Uniform, lambda, Parallelism::single())
                    .unwrap()
                    .dump();
            for threads in [2usize, 3, 8] {
                let dump = scan_with(
                    &graph,
                    &log,
                    &CreditPolicy::Uniform,
                    lambda,
                    Parallelism::fixed(threads),
                )
                .unwrap()
                .dump();
                assert_eq!(dump, baseline, "threads = {threads}, lambda = {lambda}");
            }
        }
    }

    #[test]
    fn multiple_actions_are_independent() {
        let graph = GraphBuilder::new(2).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 0.0);
        b.push(1, 0, 1.0);
        b.push(0, 1, 0.0);
        b.push(1, 1, 1.0);
        let log = b.build();
        let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
        assert!((store.action(0).get(0, 1) - 1.0).abs() < 1e-12);
        assert!((store.action(1).get(0, 1) - 1.0).abs() < 1e-12);
        assert!((store.inv_au(1) - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::reference;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// On random instances, the λ=0 scan must equal the naive DP
        /// evaluation of Eq 5 for every stored (v, u) pair, under both
        /// credit policies.
        #[test]
        fn scan_matches_reference_dp(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
            events in proptest::collection::vec((0u32..8, 0u32..3, 0u64..16), 1..40),
            time_aware in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(8).edges(edges).build();
            let mut b = ActionLogBuilder::new(8);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let store = scan(&graph, &log, &policy, 0.0).unwrap();

            for a in log.actions() {
                let expected = reference::pairwise_credit(&graph, &log, &policy, a);
                let ac = store.action(a);
                let mut stored = 0usize;
                for (&(v, u), &c) in &expected {
                    prop_assert!(
                        (ac.get(v, u) - c).abs() < 1e-9,
                        "action {a} credit ({v},{u}): scan {} vs dp {c}",
                        ac.get(v, u)
                    );
                    if c > 0.0 { stored += 1; }
                }
                // No phantom credits beyond the expected support.
                prop_assert!(ac.len() <= stored + expected.len());
            }
        }

        /// Flow conservation under the uniform policy: since every
        /// activation hands out exactly one unit of direct credit and all
        /// relayed credit terminates at initiators (which no path can
        /// cross), each performer's total credit from the initiator set is
        /// exactly 1.
        #[test]
        fn uniform_credit_flow_conserves(
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..40),
            events in proptest::collection::vec((0u32..8, 0u32..2, 0u64..16), 1..40),
        ) {
            let graph = GraphBuilder::new(8).edges(edges).build();
            let mut b = ActionLogBuilder::new(8);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let store = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
            for a in log.actions() {
                let dag = cdim_actionlog::PropagationDag::build(&log, &graph, a);
                let initiators = dag.initiators();
                let ac = store.action(a);
                for (i, &u) in dag.users().iter().enumerate() {
                    let incoming: f64 =
                        initiators.iter().map(|&v| ac.get(v, u)).sum();
                    let expected = if dag.in_degree(i) == 0 { 0.0 } else { 1.0 };
                    prop_assert!(
                        (incoming - expected).abs() < 1e-9,
                        "action {a} user {u}: initiator credit {incoming}"
                    );
                }
            }
        }

        /// The determinism guarantee of the parallel driver: for every
        /// tested thread count, both credit policies and λ ∈ {0, 0.001},
        /// the canonical dump is byte-identical to the single-threaded
        /// scan's. (CreditStoreDump comparison is exact f64 equality on
        /// entries emitted in canonical sorted order — the same bytes the
        /// snapshot codec would write.)
        #[test]
        fn parallel_scan_is_bit_identical_for_every_thread_count(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..60),
            events in proptest::collection::vec((0u32..10, 0u32..6, 0u64..24), 1..80),
            time_aware in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(10).edges(edges).build();
            let mut b = ActionLogBuilder::new(10);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            for lambda in [0.0, 0.001] {
                let baseline =
                    scan_with(&graph, &log, &policy, lambda, Parallelism::single())
                        .unwrap()
                        .dump();
                for threads in [1usize, 2, 3, 8] {
                    let dump = scan_with(
                        &graph,
                        &log,
                        &policy,
                        lambda,
                        Parallelism::fixed(threads),
                    )
                    .unwrap()
                    .dump();
                    prop_assert!(
                        dump == baseline,
                        "threads {threads}, lambda {lambda}: dump diverged"
                    );
                }
            }
        }

        /// λ-truncated credits never exceed the exact ones and the entry
        /// count shrinks monotonically with λ.
        #[test]
        fn truncation_is_conservative(
            events in proptest::collection::vec((0u32..6, 0u32..2, 0u64..12), 1..30),
        ) {
            let graph = GraphBuilder::new(6)
                .edges((0..6u32).flat_map(|u| (0..6u32).map(move |v| (u, v))))
                .build();
            let mut b = ActionLogBuilder::new(6);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let exact = scan(&graph, &log, &CreditPolicy::Uniform, 0.0).unwrap();
            let mut prev_entries = exact.total_entries();
            for lambda in [0.01, 0.1, 0.5] {
                let trunc = scan(&graph, &log, &CreditPolicy::Uniform, lambda).unwrap();
                prop_assert!(trunc.total_entries() <= prev_entries);
                prev_entries = trunc.total_entries();
                for a in log.actions() {
                    for &u in log.users_of(a) {
                        for &v in log.users_of(a) {
                            if v != u {
                                prop_assert!(
                                    trunc.action(a).get(v, u)
                                        <= exact.action(a).get(v, u) + 1e-9
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
