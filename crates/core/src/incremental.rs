//! Incremental retraining — the streaming half of Algorithm 2: append
//! new actions ([`CreditStore::apply_delta`]) and expire old ones
//! ([`CreditStore::retract_delta`]).
//!
//! The credit assignment of the one-pass scan never crosses an action
//! boundary, so a batch of *new* actions ([`ActionLogDelta`]) can be
//! scanned in isolation and appended to an existing [`CreditStore`]:
//!
//! * the new actions' [`ActionCredits`] come from the very same
//!   [`scan_action`] kernel the full scan runs, fanned out over the
//!   shared worker pool ([`parallel_map_shards`]) — incremental updates
//!   parallelize exactly like full training;
//! * per-user action memberships gain the new dense ids at the tail
//!   (ids only grow, so the vectors stay in full-scan order);
//! * `1/A_u` is re-derived for touched users with the same single
//!   division the full scan performs.
//!
//! **Equivalence contract.** For any prefix/delta split of a log, any
//! thread count and a fixed credit policy, extending the prefix's store
//! produces a [`CreditStoreDump`] *byte-identical* to a from-scratch
//! [`scan`](crate::scan::scan) of the combined log. The same holds one
//! level up: extending a [`CdSelector`] with committed seeds equals
//! scanning the combined log and replaying the seed updates in order
//! (per-action seed algebra is action-local, see
//! [`CdSelector::update`]). The `tests/golden.rs` suite and the
//! proptests below enforce the contract.
//!
//! **Retraction.** The same action-locality makes the inverse exact: a
//! prefix of expired actions can be cut away
//! ([`CreditStore::retract_delta`], fed by
//! `ActionLog::split_off_prefix`) leaving state byte-identical to a
//! from-scratch scan of just the surviving window — dense ids renumber
//! down, `1/A_u` is one division off the surviving count, and SC entries
//! are per-(action, user). Appends and retractions compose freely, which
//! is what a sliding window is: retract at the front, extend at the
//! back, never rescan the middle.
//!
//! What a delta deliberately does **not** do: re-learn the time-aware
//! policy parameters (`τ`, `infl`). The policy a model was trained with
//! stays fixed across [`CdModel::extend`](crate::CdModel::extend) calls —
//! refreshing it changes credits of *old* actions too and therefore
//! requires a full retrain. Production deployments interleave cheap delta
//! refreshes with occasional full retrains.
//!
//! [`ActionCredits`]: crate::store::ActionCredits
//! [`CreditStoreDump`]: crate::store::CreditStoreDump

use crate::celf::CdSelector;
use crate::policy::CreditPolicy;
use crate::scan::scan_action;
use crate::store::{pair_key, ActionCredits, CreditStore};
use cdim_actionlog::{ActionId, ActionLogDelta};
use cdim_graph::DirectedGraph;
use cdim_util::pool::{parallel_map_shards, Parallelism};

/// Why an append-only delta could not be applied to a trained state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtendError {
    /// The delta was cut against a different action count than the store
    /// holds — applying it would mis-assign dense action ids.
    BaseMismatch {
        /// Actions already in the store.
        store_actions: usize,
        /// Actions the delta expects the store to hold.
        delta_base: usize,
    },
    /// Store and delta disagree on the user universe.
    UserUniverseMismatch {
        /// Users in the trained store.
        store_users: usize,
        /// Users in the delta's log.
        delta_users: usize,
    },
    /// Graph and store disagree on the user universe.
    GraphMismatch {
        /// Nodes in the social graph.
        graph_nodes: usize,
        /// Users in the trained store.
        store_users: usize,
    },
    /// The expired batch is not a retractable prefix of the trained
    /// state: it must be based at 0 and no longer than the store.
    WindowMismatch {
        /// Actions the store holds.
        store_actions: usize,
        /// Base the expired delta was cut against (must be 0).
        expired_base: usize,
        /// Actions the expired delta wants to retract.
        expired_actions: usize,
    },
    /// An expired action's recomputed credits disagree with the stored
    /// prefix — the caller's expired batch is not the data the store was
    /// trained on.
    PrefixMismatch {
        /// Dense id of the first divergent action.
        action: u32,
    },
    /// A user's membership count below the expiry boundary disagrees with
    /// the expired batch.
    MembershipMismatch {
        /// The divergent user.
        user: u32,
        /// Prefix memberships the expired batch claims for the user.
        expected: u32,
        /// Prefix memberships the trained state actually holds.
        got: u32,
    },
}

impl std::fmt::Display for ExtendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtendError::BaseMismatch { store_actions, delta_base } => write!(
                f,
                "delta base mismatch: store holds {store_actions} actions, delta expects \
                 {delta_base}"
            ),
            ExtendError::UserUniverseMismatch { store_users, delta_users } => write!(
                f,
                "store and delta must share a user universe ({store_users} vs {delta_users} users)"
            ),
            ExtendError::GraphMismatch { graph_nodes, store_users } => write!(
                f,
                "graph and store must share a user universe ({graph_nodes} nodes vs \
                 {store_users} users)"
            ),
            ExtendError::WindowMismatch { store_actions, expired_base, expired_actions } => write!(
                f,
                "expired batch is not a store prefix: base {expired_base} (must be 0), \
                 {expired_actions} actions to retract, store holds {store_actions}"
            ),
            ExtendError::PrefixMismatch { action } => write!(
                f,
                "expired action {action} disagrees with the trained prefix (recomputed credits \
                 are not bit-identical to the stored ones)"
            ),
            ExtendError::MembershipMismatch { user, expected, got } => write!(
                f,
                "user {user} membership mismatch below the expiry boundary: expired batch \
                 claims {expected}, trained state holds {got}"
            ),
        }
    }
}

impl std::error::Error for ExtendError {}

/// Validates that `delta` lines up with a trained state of
/// `(num_users, num_actions)`.
fn validate(
    graph: &DirectedGraph,
    delta: &ActionLogDelta,
    num_users: usize,
    num_actions: usize,
) -> Result<(), ExtendError> {
    if graph.num_nodes() != num_users {
        return Err(ExtendError::GraphMismatch {
            graph_nodes: graph.num_nodes(),
            store_users: num_users,
        });
    }
    if delta.num_users() != num_users {
        return Err(ExtendError::UserUniverseMismatch {
            store_users: num_users,
            delta_users: delta.num_users(),
        });
    }
    if delta.base_actions() != num_actions {
        return Err(ExtendError::BaseMismatch {
            store_actions: num_actions,
            delta_base: delta.base_actions(),
        });
    }
    Ok(())
}

impl CreditStore {
    /// Appends an action batch to the store: scans each new action with
    /// the [`scan_action`] kernel (in parallel, under `parallelism`) and
    /// updates the per-user membership index and `1/A_u` — without
    /// touching any already-scanned action.
    ///
    /// `policy` must be the policy the store was trained with for the
    /// byte-identity contract to be meaningful (the store itself retains
    /// only λ). The resulting [`dump`](CreditStore::dump) is
    /// byte-identical to a from-scratch scan of the combined log for
    /// every `parallelism`.
    pub fn apply_delta(
        &mut self,
        graph: &DirectedGraph,
        delta: &ActionLogDelta,
        policy: &CreditPolicy,
        parallelism: Parallelism,
    ) -> Result<(), ExtendError> {
        validate(graph, delta, self.num_users(), self.num_actions())?;
        let additions = delta.additions();
        let lambda = self.lambda();

        // The same stage-2/3 shape as the full scan: kernel over action
        // chunks, ordered concatenation — bit-identical for every thread
        // count because each action's credits are computed wholesale.
        let shards = parallel_map_shards(parallelism, additions.num_actions(), |_, range| {
            let mut scratch: Vec<(u32, f64)> = Vec::new();
            range
                .map(|a| scan_action(graph, additions, policy, lambda, a as ActionId, &mut scratch))
                .collect::<Vec<_>>()
        });
        self.actions.reserve(additions.num_actions());
        for shard in shards {
            self.actions.extend(shard);
        }

        // Membership + 1/A_u. New ids exceed every stored id, so pushing
        // in delta order reproduces the full scan's per-user vectors; the
        // division matches the full scan's `1.0 / f64::from(A_u)` bit for
        // bit.
        for a in additions.actions() {
            let global = delta.global_id(a);
            for &u in additions.users_of(a) {
                let row = &mut self.user_actions[u as usize];
                row.push(global);
                self.inv_au[u as usize] = 1.0 / f64::from(row.len() as u32);
            }
        }
        Ok(())
    }

    /// Retracts an expired action prefix — the exact inverse of
    /// [`apply_delta`](Self::apply_delta). `expired` must be the first
    /// `expired.num_new_actions()` actions the store was trained on,
    /// packaged as a delta **based at 0** (see
    /// `ActionLog::split_off_prefix`).
    ///
    /// The expired actions' credits are recomputed with the same
    /// [`scan_action`] kernel on the shared worker pool and compared
    /// bit-for-bit against the stored prefix; any disagreement returns
    /// [`ExtendError::PrefixMismatch`] with the store untouched — a caller
    /// cannot silently retract data the model was not trained on. On
    /// success the prefix is dropped, surviving actions are renumbered
    /// down by the prefix length, and per-user memberships and `1/A_u`
    /// are rebuilt with the same single division the scan performs — so
    /// the resulting [`dump`](CreditStore::dump) is byte-identical to a
    /// from-scratch scan of just the surviving window, for every
    /// `parallelism`.
    pub fn retract_delta(
        &mut self,
        graph: &DirectedGraph,
        expired: &ActionLogDelta,
        policy: &CreditPolicy,
        parallelism: Parallelism,
    ) -> Result<(), ExtendError> {
        let k = self.validate_retract(graph, expired)?;
        let additions = expired.additions();
        let lambda = self.lambda();

        // Recompute the prefix with the scan kernel (same shard shape as
        // apply_delta) and demand bitwise agreement with the stored
        // actions before mutating anything.
        let shards = parallel_map_shards(parallelism, k, |_, range| {
            let mut scratch: Vec<(u32, f64)> = Vec::new();
            range
                .map(|a| scan_action(graph, additions, policy, lambda, a as ActionId, &mut scratch))
                .collect::<Vec<_>>()
        });
        let mut a = 0u32;
        for shard in &shards {
            for recomputed in shard {
                if credit_bits(recomputed) != credit_bits(self.action(a)) {
                    return Err(ExtendError::PrefixMismatch { action: a });
                }
                a += 1;
            }
        }
        self.drop_prefix(k);
        Ok(())
    }

    /// Read-only structural validation for a retraction: the expired
    /// batch must be a prefix anchored at action 0, no longer than the
    /// store, over the same user universe — and each user's membership
    /// count below the boundary must match the expired log's. Returns the
    /// prefix length.
    pub(crate) fn validate_retract(
        &self,
        graph: &DirectedGraph,
        expired: &ActionLogDelta,
    ) -> Result<usize, ExtendError> {
        if graph.num_nodes() != self.num_users() {
            return Err(ExtendError::GraphMismatch {
                graph_nodes: graph.num_nodes(),
                store_users: self.num_users(),
            });
        }
        if expired.num_users() != self.num_users() {
            return Err(ExtendError::UserUniverseMismatch {
                store_users: self.num_users(),
                delta_users: expired.num_users(),
            });
        }
        let k = expired.num_new_actions();
        if expired.base_actions() != 0 || k > self.num_actions() {
            return Err(ExtendError::WindowMismatch {
                store_actions: self.num_actions(),
                expired_base: expired.base_actions(),
                expired_actions: k,
            });
        }
        for (u, &expected) in expired.additions().actions_per_user().iter().enumerate() {
            let got = self.user_actions[u].partition_point(|&a| (a as usize) < k) as u32;
            if got != expected {
                return Err(ExtendError::MembershipMismatch { user: u as u32, expected, got });
            }
        }
        Ok(k)
    }

    /// Drops the first `k` actions and renumbers the survivors down by
    /// `k`. Membership rows are sorted, so the expired ids form a prefix
    /// of each row; `1/A_u` is re-derived for shrunken rows with the
    /// scan's own division (exact for any history, since it depends only
    /// on the surviving count).
    pub(crate) fn drop_prefix(&mut self, k: usize) {
        if k == 0 {
            return;
        }
        self.actions.drain(..k);
        for (u, row) in self.user_actions.iter_mut().enumerate() {
            let cut = row.partition_point(|&a| (a as usize) < k);
            if cut > 0 {
                row.drain(..cut);
            }
            for a in row.iter_mut() {
                *a -= k as u32;
            }
            if cut > 0 {
                self.inv_au[u] =
                    if row.is_empty() { 0.0 } else { 1.0 / f64::from(row.len() as u32) };
            }
        }
    }
}

/// Canonical bit image of one action's credits: `(packed key, Γ bits)`
/// sorted by key. Two [`ActionCredits`] are the same trained value iff
/// their images are equal, independent of hash-map iteration order.
fn credit_bits(ac: &ActionCredits) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> =
        ac.entries().map(|(v, u, c)| (pair_key(v, u), c.to_bits())).collect();
    out.sort_unstable_by_key(|&(key, _)| key);
    out
}

impl CdSelector {
    /// Extends the selector's trained state with an action batch,
    /// preserving any committed seeds: the store is extended via
    /// [`CreditStore::apply_delta`], then every committed seed is
    /// replayed — in commitment order — over the *new* actions only
    /// (old actions already reflect the seeds; the per-action Lemma 2/3
    /// algebra never crosses an action boundary).
    ///
    /// Equivalent, dump-for-dump, to scanning the combined log from
    /// scratch and calling [`CdSelector::update`] for each seed in the
    /// original order.
    pub fn extend(
        &mut self,
        graph: &DirectedGraph,
        delta: &ActionLogDelta,
        policy: &CreditPolicy,
        parallelism: Parallelism,
    ) -> Result<(), ExtendError> {
        let base = self.store.num_actions();
        self.store.apply_delta(graph, delta, policy, parallelism)?;
        let seeds = self.seeds.clone();
        for x in seeds {
            // Only actions appended by this delta; the membership index
            // is sorted, so the new ids form a suffix.
            let start = self.store.actions_of_user(x).partition_point(|&a| (a as usize) < base);
            let fresh: Vec<u32> = self.store.actions_of_user(x)[start..].to_vec();
            for a in fresh {
                self.apply_seed_to_action(a, x);
            }
        }
        Ok(())
    }

    /// Retracts an expired action prefix from the selector, preserving
    /// any committed seeds: the store drops the prefix and SC entries for
    /// expired actions are discarded (survivors renumber down). The
    /// per-action Lemma 2/3 algebra never crosses an action boundary, so
    /// the result equals a fresh selector over the surviving window with
    /// the same seed sequence replayed in order.
    ///
    /// With no committed seeds the store-level kernel recomputation of
    /// [`CreditStore::retract_delta`] applies in full; once seeds are
    /// committed the prefix credits have been rewritten in place (Lemmas
    /// 2–3), so validation falls back to the structural checks and the
    /// prefix is dropped without the bitwise replay.
    pub fn retract(
        &mut self,
        graph: &DirectedGraph,
        expired: &ActionLogDelta,
        policy: &CreditPolicy,
        parallelism: Parallelism,
    ) -> Result<(), ExtendError> {
        let k = if self.seeds.is_empty() {
            let k = expired.num_new_actions();
            self.store.retract_delta(graph, expired, policy, parallelism)?;
            k
        } else {
            let k = self.store.validate_retract(graph, expired)?;
            self.store.drop_prefix(k);
            k
        };
        self.retract_sc_prefix(k as u32);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan, scan_with};
    use cdim_actionlog::{ActionLog, ActionLogBuilder};
    use cdim_graph::{DirectedGraph, GraphBuilder};

    fn instance() -> (DirectedGraph, ActionLog) {
        let graph = GraphBuilder::new(6)
            .edges([(0, 2), (1, 2), (0, 3), (2, 4), (0, 5), (2, 5), (3, 5), (4, 5), (5, 1)])
            .build();
        let mut b = ActionLogBuilder::new(6);
        for a in 0..5u32 {
            let mut t = 0.0;
            for u in 0..6u32 {
                if (u + a) % 5 != 4 {
                    b.push(u, a, t);
                    t += 0.5;
                }
            }
        }
        (graph, b.build())
    }

    #[test]
    fn extend_matches_full_scan_at_every_split() {
        let (graph, log) = instance();
        for policy in [CreditPolicy::Uniform, CreditPolicy::time_aware(&graph, &log)] {
            for lambda in [0.0, 0.001] {
                let full = scan(&graph, &log, &policy, lambda).unwrap().dump();
                for split in 0..=log.num_actions() {
                    let (prefix, delta) = log.split_at_action(split);
                    let mut store = scan(&graph, &prefix, &policy, lambda).unwrap();
                    store.apply_delta(&graph, &delta, &policy, Parallelism::fixed(3)).unwrap();
                    assert!(store.dump() == full, "split {split}, lambda {lambda}");
                }
            }
        }
    }

    #[test]
    fn empty_and_full_deltas_are_exact() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let full = scan(&graph, &log, &policy, 0.0).unwrap().dump();

        // Empty delta: a no-op extend.
        let (prefix, empty) = log.split_at_action(log.num_actions());
        let mut store = scan(&graph, &prefix, &policy, 0.0).unwrap();
        store.apply_delta(&graph, &empty, &policy, Parallelism::auto()).unwrap();
        assert!(store.dump() == full);

        // All-in-delta: training entirely through the incremental path.
        let (nothing, everything) = log.split_at_action(0);
        let mut store = scan(&graph, &nothing, &policy, 0.0).unwrap();
        store.apply_delta(&graph, &everything, &policy, Parallelism::fixed(2)).unwrap();
        assert!(store.dump() == full);
    }

    #[test]
    fn chained_deltas_compose() {
        let (graph, log) = instance();
        let policy = CreditPolicy::time_aware(&graph, &log);
        let full = scan(&graph, &log, &policy, 0.001).unwrap().dump();
        let (prefix, _) = log.split_at_action(1);
        let mut store = scan(&graph, &prefix, &policy, 0.001).unwrap();
        for (start, end) in [(1usize, 2usize), (2, 4), (4, 5)] {
            let delta = log.delta_range(start, end);
            store.apply_delta(&graph, &delta, &policy, Parallelism::fixed(2)).unwrap();
        }
        assert!(store.dump() == full);
    }

    #[test]
    fn selector_extend_replays_committed_seeds() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let (prefix, delta) = log.split_at_action(3);

        // Incremental: commit two seeds on the prefix, then extend.
        let mut incremental = CdSelector::new(scan(&graph, &prefix, &policy, 0.0).unwrap());
        incremental.update(0);
        incremental.update(2);
        incremental.extend(&graph, &delta, &policy, Parallelism::fixed(2)).unwrap();

        // Reference: full scan, then the same seed sequence.
        let mut reference = CdSelector::new(scan(&graph, &log, &policy, 0.0).unwrap());
        reference.update(0);
        reference.update(2);

        assert_eq!(incremental.dump(), reference.dump());
        // And the next marginal gains agree bit-for-bit.
        for x in 0..6u32 {
            assert_eq!(
                incremental.compute_mg(x).to_bits(),
                reference.compute_mg(x).to_bits(),
                "user {x}"
            );
        }
    }

    #[test]
    fn seedless_selector_extend_is_store_extend() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let (prefix, delta) = log.split_at_action(2);
        let mut sel = CdSelector::new(scan(&graph, &prefix, &policy, 0.0).unwrap());
        sel.extend(&graph, &delta, &policy, Parallelism::single()).unwrap();
        let full = scan(&graph, &log, &policy, 0.0).unwrap();
        assert_eq!(sel.dump().store, full.dump());
        assert!(sel.seeds().is_empty());
    }

    #[test]
    fn mismatches_are_rejected_as_values() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let (prefix, delta) = log.split_at_action(2);
        let mut store = scan(&graph, &prefix, &policy, 0.0).unwrap();

        // Wrong base: a delta cut for a longer prefix.
        let late = log.delta_range(4, 5);
        assert_eq!(
            store.apply_delta(&graph, &late, &policy, Parallelism::auto()),
            Err(ExtendError::BaseMismatch { store_actions: 2, delta_base: 4 })
        );

        // Wrong universe: a delta over a different user id space.
        let foreign = ActionLogDelta::new(2, ActionLogBuilder::new(9).build());
        assert_eq!(
            store.apply_delta(&graph, &foreign, &policy, Parallelism::auto()),
            Err(ExtendError::UserUniverseMismatch { store_users: 6, delta_users: 9 })
        );

        // Wrong graph.
        let small_graph = GraphBuilder::new(3).edges([(0, 1)]).build();
        assert_eq!(
            store.apply_delta(&small_graph, &delta, &policy, Parallelism::auto()),
            Err(ExtendError::GraphMismatch { graph_nodes: 3, store_users: 6 })
        );

        // Failed applies leave the store untouched.
        let before = store.dump();
        assert!(store.apply_delta(&graph, &late, &policy, Parallelism::auto()).is_err());
        assert!(store.dump() == before);
    }

    #[test]
    fn errors_are_descriptive() {
        let e = ExtendError::BaseMismatch { store_actions: 7, delta_base: 9 };
        assert!(e.to_string().contains("7 actions"));
        let e = ExtendError::UserUniverseMismatch { store_users: 2, delta_users: 3 };
        assert!(e.to_string().contains("user universe"));
        let e = ExtendError::GraphMismatch { graph_nodes: 4, store_users: 5 };
        assert!(e.to_string().contains("4 nodes"));
        let e =
            ExtendError::WindowMismatch { store_actions: 3, expired_base: 1, expired_actions: 2 };
        assert!(e.to_string().contains("not a store prefix"));
        let e = ExtendError::PrefixMismatch { action: 6 };
        assert!(e.to_string().contains("action 6"));
        let e = ExtendError::MembershipMismatch { user: 2, expected: 3, got: 1 };
        assert!(e.to_string().contains("user 2"));
    }

    #[test]
    fn retract_matches_window_scan_at_every_cut() {
        let (graph, log) = instance();
        for policy in [CreditPolicy::Uniform, CreditPolicy::time_aware(&graph, &log)] {
            for lambda in [0.0, 0.001] {
                for expire in 0..=log.num_actions() {
                    let (expired, window) = log.split_off_prefix(expire);
                    let mut store = scan(&graph, &log, &policy, lambda).unwrap();
                    store.retract_delta(&graph, &expired, &policy, Parallelism::fixed(3)).unwrap();
                    let fresh = scan(&graph, &window, &policy, lambda).unwrap();
                    assert!(store.dump() == fresh.dump(), "expire {expire}, lambda {lambda}");
                }
            }
        }
    }

    #[test]
    fn retract_then_extend_composes() {
        // The sliding-window motion itself: expire at the front, append
        // at the back, land exactly on the window-only scan.
        let (graph, log) = instance();
        let policy = CreditPolicy::time_aware(&graph, &log);
        let n = log.num_actions();
        let (head, tail_delta) = log.split_at_action(3);
        let mut store = scan(&graph, &head, &policy, 0.001).unwrap();
        // Expire the first 2 of the 3 scanned actions…
        let expired = ActionLogDelta::new(0, log.delta_range(0, 2).additions().clone());
        store.retract_delta(&graph, &expired, &policy, Parallelism::fixed(2)).unwrap();
        // …then append the rest, rebased against the shrunken store.
        let appended = ActionLogDelta::new(1, tail_delta.additions().clone());
        store.apply_delta(&graph, &appended, &policy, Parallelism::fixed(2)).unwrap();
        let window = log.split_off_prefix(2).1;
        let fresh = scan(&graph, &window, &policy, 0.001).unwrap();
        assert!(store.dump() == fresh.dump());
        assert_eq!(store.num_actions(), n - 2);
    }

    #[test]
    fn retract_everything_leaves_an_empty_trainable_store() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let (everything, empty) = log.split_off_prefix(log.num_actions());
        let mut store = scan(&graph, &log, &policy, 0.0).unwrap();
        store.retract_delta(&graph, &everything, &policy, Parallelism::auto()).unwrap();
        assert_eq!(store.num_actions(), 0);
        assert_eq!(store.total_entries(), 0);
        assert!(store.dump() == scan(&graph, &empty, &policy, 0.0).unwrap().dump());
        // The emptied store trains again through the incremental path.
        let refill = ActionLogDelta::new(0, log.clone());
        store.apply_delta(&graph, &refill, &policy, Parallelism::fixed(2)).unwrap();
        assert!(store.dump() == scan(&graph, &log, &policy, 0.0).unwrap().dump());
    }

    #[test]
    fn retract_mismatches_are_rejected_as_values() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let mut store = scan(&graph, &log, &policy, 0.0).unwrap();
        let before = store.dump();

        // Not a prefix: the expired delta must be based at 0.
        let mid = log.delta_range(1, 3);
        assert_eq!(
            store.retract_delta(&graph, &mid, &policy, Parallelism::auto()),
            Err(ExtendError::WindowMismatch {
                store_actions: 5,
                expired_base: 1,
                expired_actions: 2
            })
        );

        // Longer than the store.
        let mut b = ActionLogBuilder::new(6);
        for a in 0..6u32 {
            b.push(0, a, 0.0);
        }
        let too_long = ActionLogDelta::new(0, b.build());
        assert!(matches!(
            store.retract_delta(&graph, &too_long, &policy, Parallelism::auto()),
            Err(ExtendError::WindowMismatch { store_actions: 5, expired_actions: 6, .. })
        ));

        // Wrong universe.
        let foreign = ActionLogDelta::new(0, ActionLogBuilder::new(9).build());
        assert_eq!(
            store.retract_delta(&graph, &foreign, &policy, Parallelism::auto()),
            Err(ExtendError::UserUniverseMismatch { store_users: 6, delta_users: 9 })
        );

        // Wrong membership: a prefix claiming different performers than
        // the real one (user 0 acted in the real action 0, the claimed
        // prefix says they did not).
        let mut b = ActionLogBuilder::new(6);
        b.push(4, 0, 0.0);
        let wrong_user = ActionLogDelta::new(0, b.build());
        assert_eq!(
            store.retract_delta(&graph, &wrong_user, &policy, Parallelism::auto()),
            Err(ExtendError::MembershipMismatch { user: 0, expected: 0, got: 1 })
        );

        // Right membership counts, wrong data: reversing the activation
        // order flips the propagation DAG, so the kernel replay disagrees
        // bitwise with the stored credits.
        let mut b = ActionLogBuilder::new(6);
        for &u in log.users_of(0) {
            b.push(u, 0, f64::from(5 - u));
        }
        let wrong_order = ActionLogDelta::new(0, b.build());
        assert_eq!(
            store.retract_delta(&graph, &wrong_order, &policy, Parallelism::auto()),
            Err(ExtendError::PrefixMismatch { action: 0 })
        );

        // Every failure left the store untouched.
        assert!(store.dump() == before);
    }

    #[test]
    fn retract_is_the_exact_inverse_of_the_kernel() {
        // The recomputed prefix credits cancel the stored ones through
        // ActionCredits::subtract exactly: subtracting each recomputed
        // entry empties the stored action completely.
        let (graph, log) = instance();
        let policy = CreditPolicy::time_aware(&graph, &log);
        let store = scan(&graph, &log, &policy, 0.001).unwrap();
        let expired = log.split_off_prefix(2).0;
        let additions = expired.additions();
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for a in 0..2u32 {
            let recomputed = scan_action(&graph, additions, &policy, 0.001, a, &mut scratch);
            let mut stored = store.action(a).clone();
            for (v, u, c) in recomputed.entries() {
                stored.subtract(v, u, c);
            }
            assert!(stored.is_empty(), "action {a} did not cancel");
        }
    }

    #[test]
    fn selector_retract_preserves_committed_seeds() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let (expired, window) = log.split_off_prefix(2);

        // Incremental: train on everything, commit seeds, expire the front.
        let mut incremental = CdSelector::new(scan(&graph, &log, &policy, 0.0).unwrap());
        incremental.update(0);
        incremental.update(2);
        incremental.retract(&graph, &expired, &policy, Parallelism::fixed(2)).unwrap();

        // Reference: window-only scan, same seed sequence replayed.
        let mut reference = CdSelector::new(scan(&graph, &window, &policy, 0.0).unwrap());
        reference.update(0);
        reference.update(2);

        assert_eq!(incremental.dump(), reference.dump());
        for x in 0..6u32 {
            assert_eq!(
                incremental.compute_mg(x).to_bits(),
                reference.compute_mg(x).to_bits(),
                "user {x}"
            );
        }
    }

    #[test]
    fn seedless_selector_retract_is_store_retract() {
        let (graph, log) = instance();
        let policy = CreditPolicy::Uniform;
        let (expired, window) = log.split_off_prefix(3);
        let mut sel = CdSelector::new(scan(&graph, &log, &policy, 0.0).unwrap());
        sel.retract(&graph, &expired, &policy, Parallelism::single()).unwrap();
        let fresh = scan(&graph, &window, &policy, 0.0).unwrap();
        assert_eq!(sel.dump().store, fresh.dump());
        assert!(sel.seeds().is_empty());
        // The seedless path keeps the bitwise kernel check: foreign data
        // is refused.
        let mut sel = CdSelector::new(scan(&graph, &log, &policy, 0.0).unwrap());
        let mut b = ActionLogBuilder::new(6);
        for &u in log.users_of(0) {
            b.push(u, 0, f64::from(u) * 7.0);
        }
        let wrong = ActionLogDelta::new(0, b.build());
        assert_eq!(
            sel.retract(
                &graph,
                &wrong,
                &CreditPolicy::time_aware(&graph, &log),
                Parallelism::single()
            ),
            Err(ExtendError::PrefixMismatch { action: 0 })
        );
    }

    #[test]
    fn delta_parallelism_never_changes_the_dump() {
        let (graph, log) = instance();
        let policy = CreditPolicy::time_aware(&graph, &log);
        let (prefix, delta) = log.split_at_action(2);
        let baseline = {
            let mut s = scan_with(&graph, &prefix, &policy, 0.001, Parallelism::single()).unwrap();
            s.apply_delta(&graph, &delta, &policy, Parallelism::single()).unwrap();
            s.dump()
        };
        for threads in [2usize, 3, 8] {
            let mut s =
                scan_with(&graph, &prefix, &policy, 0.001, Parallelism::fixed(threads)).unwrap();
            s.apply_delta(&graph, &delta, &policy, Parallelism::fixed(threads)).unwrap();
            assert!(s.dump() == baseline, "threads = {threads}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::scan::scan_with;
    use cdim_actionlog::ActionLogBuilder;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// The load-bearing contract of the incremental subsystem: for a
        /// random log split into a prefix plus 1..=4 append-only deltas
        /// (empty segments — including an empty prefix — occur when
        /// boundaries collide), and for every tested thread count, the
        /// incrementally extended store dumps byte-identically to a
        /// from-scratch scan of the full log. Both policies, λ ∈
        /// {0, 0.001}.
        #[test]
        fn prefix_plus_deltas_equals_full_scan(
            edges in proptest::collection::vec((0u32..9, 0u32..9), 0..45),
            events in proptest::collection::vec((0u32..9, 0u32..6, 0u64..20), 1..70),
            cuts in proptest::collection::vec(0usize..7, 1..5),
            time_aware in proptest::bool::ANY,
            lambda_on in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(9).edges(edges).build();
            let mut b = ActionLogBuilder::new(9);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let lambda = if lambda_on { 0.001 } else { 0.0 };

            // Sorted, clamped segment boundaries over the action range.
            let n = log.num_actions();
            let mut bounds: Vec<usize> =
                cuts.iter().map(|&c| c.min(n)).collect();
            bounds.sort_unstable();

            let full = scan_with(&graph, &log, &policy, lambda, Parallelism::single())
                .unwrap()
                .dump();
            for threads in [1usize, 2, 8] {
                let par = Parallelism::fixed(threads);
                let (prefix, _) = log.split_at_action(bounds[0]);
                let mut store = scan_with(&graph, &prefix, &policy, lambda, par).unwrap();
                let mut done = bounds[0];
                for &cut in &bounds[1..] {
                    store
                        .apply_delta(&graph, &log.delta_range(done, cut), &policy, par)
                        .unwrap();
                    done = cut;
                }
                store.apply_delta(&graph, &log.delta_range(done, n), &policy, par).unwrap();
                prop_assert!(
                    store.dump() == full,
                    "threads {threads}, bounds {bounds:?}, lambda {lambda}: dump diverged"
                );
            }
        }

        /// The sliding-window contract: a random interleaving of
        /// apply_delta (grow at the back) and retract_delta (expire at
        /// the front) leaves the store byte-identical to a from-scratch
        /// scan of just the surviving window — at threads {1, 2, 8},
        /// both policies, λ ∈ {0, 0.001}. Shrink amounts may empty the
        /// window entirely and grow amounts may exhaust the log, so the
        /// empty-window and retract-everything edges occur naturally.
        #[test]
        fn window_walk_equals_window_scan(
            edges in proptest::collection::vec((0u32..9, 0u32..9), 0..45),
            events in proptest::collection::vec((0u32..9, 0u32..6, 0u64..20), 1..70),
            ops in proptest::collection::vec((proptest::bool::ANY, 0usize..5), 1..8),
            time_aware in proptest::bool::ANY,
            lambda_on in proptest::bool::ANY,
        ) {
            let graph = GraphBuilder::new(9).edges(edges).build();
            let mut b = ActionLogBuilder::new(9);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            // The policy is learned from (or independent of) the full
            // log and stays FIXED across every grow/shrink — the same
            // object scans the reference window, so both sides see
            // identical γ values (re-learning per window is a full
            // retrain, not a slide).
            let policy = if time_aware {
                CreditPolicy::time_aware(&graph, &log)
            } else {
                CreditPolicy::Uniform
            };
            let lambda = if lambda_on { 0.001 } else { 0.0 };
            let n = log.num_actions();

            for threads in [1usize, 2, 8] {
                let par = Parallelism::fixed(threads);
                // Start from an empty window and walk it over the log.
                let empty = ActionLogBuilder::new(9).build();
                let mut store =
                    scan_with(&graph, &empty, &policy, lambda, par).unwrap();
                let (mut lo, mut hi) = (0usize, 0usize);
                for &(shrink, amount) in &ops {
                    if shrink {
                        let cut = (lo + amount).min(hi);
                        let expired = ActionLogDelta::new(
                            0,
                            log.delta_range(lo, cut).additions().clone(),
                        );
                        store.retract_delta(&graph, &expired, &policy, par).unwrap();
                        lo = cut;
                    } else {
                        let end = (hi + amount).min(n);
                        let delta = ActionLogDelta::new(
                            hi - lo,
                            log.delta_range(hi, end).additions().clone(),
                        );
                        store.apply_delta(&graph, &delta, &policy, par).unwrap();
                        hi = end;
                    }
                }
                let window = log.split_at_action(hi).0.split_off_prefix(lo).1;
                let fresh =
                    scan_with(&graph, &window, &policy, lambda, Parallelism::single())
                        .unwrap();
                prop_assert!(
                    store.dump() == fresh.dump(),
                    "threads {threads}, window [{lo}, {hi}), lambda {lambda}: dump diverged"
                );
            }
        }

        /// Selector-level window equivalence with committed seeds: a
        /// full-trained selector with seeds committed, after expiring a
        /// random prefix, equals a window-only selector with the same
        /// seeds replayed in order.
        #[test]
        fn seeded_selector_retract_equals_window_rescan_plus_replay(
            edges in proptest::collection::vec((0u32..7, 0u32..7), 0..30),
            events in proptest::collection::vec((0u32..7, 0u32..4, 0u64..14), 1..45),
            expire in 0usize..5,
            seeds in proptest::sample::subsequence((0u32..7).collect::<Vec<_>>(), 0..3),
        ) {
            let graph = GraphBuilder::new(7).edges(edges).build();
            let mut b = ActionLogBuilder::new(7);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = CreditPolicy::Uniform;
            let expire = expire.min(log.num_actions());
            let (expired, window) = log.split_off_prefix(expire);

            let mut incremental =
                CdSelector::new(scan_with(&graph, &log, &policy, 0.0,
                    Parallelism::single()).unwrap());
            for &s in &seeds {
                incremental.update(s);
            }
            incremental.retract(&graph, &expired, &policy, Parallelism::fixed(2)).unwrap();

            let mut reference =
                CdSelector::new(scan_with(&graph, &window, &policy, 0.0,
                    Parallelism::single()).unwrap());
            for &s in &seeds {
                reference.update(s);
            }
            prop_assert_eq!(incremental.dump(), reference.dump());
        }

        /// Selector-level equivalence with committed seeds: extending a
        /// mid-selection state equals a full scan plus an in-order seed
        /// replay, down to the canonical dump.
        #[test]
        fn selector_extend_equals_rescan_plus_replay(
            edges in proptest::collection::vec((0u32..7, 0u32..7), 0..30),
            events in proptest::collection::vec((0u32..7, 0u32..4, 0u64..14), 1..45),
            split in 0usize..5,
            seeds in proptest::sample::subsequence((0u32..7).collect::<Vec<_>>(), 0..3),
        ) {
            let graph = GraphBuilder::new(7).edges(edges).build();
            let mut b = ActionLogBuilder::new(7);
            for &(u, a, t) in &events {
                b.push(u, a, t as f64);
            }
            let log = b.build();
            let policy = CreditPolicy::Uniform;
            let split = split.min(log.num_actions());
            let (prefix, delta) = log.split_at_action(split);

            let mut incremental =
                CdSelector::new(scan_with(&graph, &prefix, &policy, 0.0,
                    Parallelism::single()).unwrap());
            for &s in &seeds {
                incremental.update(s);
            }
            incremental.extend(&graph, &delta, &policy, Parallelism::fixed(2)).unwrap();

            let mut reference =
                CdSelector::new(scan_with(&graph, &log, &policy, 0.0,
                    Parallelism::single()).unwrap());
            for &s in &seeds {
                reference.update(s);
            }
            prop_assert_eq!(incremental.dump(), reference.dump());
        }
    }
}
