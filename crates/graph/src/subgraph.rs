//! Induced subgraphs with id remapping.
//!
//! The paper's *Small* datasets are single communities sampled from the
//! *Large* crawls; everything downstream (action logs, probability models)
//! must be re-indexed consistently, so the mapping in both directions is
//! kept alongside the new graph.

use crate::csr::{DirectedGraph, NodeId};
use crate::GraphBuilder;
use cdim_util::FxHashMap;

/// A node-induced subgraph plus the id mappings linking it to its parent.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph over dense ids `0..nodes.len()`.
    pub graph: DirectedGraph,
    /// `new_to_old[new_id] = old_id` (sorted ascending by old id).
    pub new_to_old: Vec<NodeId>,
    /// `old_to_new[old_id] = new_id`.
    pub old_to_new: FxHashMap<NodeId, NodeId>,
}

impl InducedSubgraph {
    /// Builds the subgraph of `parent` induced by `nodes`.
    ///
    /// Duplicate ids in `nodes` are ignored; ids out of range panic.
    pub fn new(parent: &DirectedGraph, nodes: &[NodeId]) -> Self {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut old_to_new = FxHashMap::default();
        old_to_new.reserve(sorted.len());
        for (new_id, &old_id) in sorted.iter().enumerate() {
            assert!((old_id as usize) < parent.num_nodes(), "node {old_id} out of range");
            old_to_new.insert(old_id, new_id as NodeId);
        }
        let mut builder = GraphBuilder::new(sorted.len());
        for &old_u in &sorted {
            let new_u = old_to_new[&old_u];
            for &old_v in parent.out_neighbors(old_u) {
                if let Some(&new_v) = old_to_new.get(&old_v) {
                    builder.push_edge(new_u, new_v);
                }
            }
        }
        InducedSubgraph { graph: builder.build(), new_to_old: sorted, old_to_new }
    }

    /// Translates an old id into the subgraph, if the node was kept.
    pub fn to_new(&self, old: NodeId) -> Option<NodeId> {
        self.old_to_new.get(&old).copied()
    }

    /// Translates a subgraph id back to the parent graph.
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.new_to_old[new as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_internal_edges_only() {
        let parent = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).build();
        let sub = InducedSubgraph::new(&parent, &[0, 1, 2]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 2); // 0->1, 1->2
        assert!(sub.graph.has_edge(sub.to_new(0).unwrap(), sub.to_new(1).unwrap()));
        assert!(!sub.graph.has_edge(sub.to_new(2).unwrap(), sub.to_new(0).unwrap()));
    }

    #[test]
    fn mapping_round_trips() {
        let parent = GraphBuilder::new(10).edges([(7, 9), (9, 3)]).build();
        let sub = InducedSubgraph::new(&parent, &[9, 3, 7]);
        for new_id in 0..sub.graph.num_nodes() as NodeId {
            let old = sub.to_old(new_id);
            assert_eq!(sub.to_new(old), Some(new_id));
        }
        assert_eq!(sub.to_new(5), None);
    }

    #[test]
    fn duplicates_are_ignored() {
        let parent = GraphBuilder::new(4).edges([(0, 1)]).build();
        let sub = InducedSubgraph::new(&parent, &[1, 1, 0, 0]);
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_nodes() {
        let parent = GraphBuilder::new(2).edges([(0, 1)]).build();
        let _ = InducedSubgraph::new(&parent, &[0, 5]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every subgraph edge corresponds to a parent edge between kept
        /// nodes, and every parent edge between kept nodes survives.
        #[test]
        fn edge_preservation(
            raw in proptest::collection::vec((0u32..25, 0u32..25), 0..150),
            keep in proptest::collection::vec(0u32..25, 1..25),
        ) {
            let parent = GraphBuilder::new(25).edges(raw).build();
            let sub = InducedSubgraph::new(&parent, &keep);

            for (nu, nv) in sub.graph.edges() {
                prop_assert!(parent.has_edge(sub.to_old(nu), sub.to_old(nv)));
            }
            let kept: std::collections::HashSet<u32> =
                sub.new_to_old.iter().copied().collect();
            let mut expected = 0usize;
            for (u, v) in parent.edges() {
                if kept.contains(&u) && kept.contains(&v) {
                    expected += 1;
                }
            }
            prop_assert_eq!(sub.graph.num_edges(), expected);
        }
    }
}
