#![warn(missing_docs)]
//! Directed social-graph substrate for the `cdim` workspace.
//!
//! The paper's input is an unweighted directed graph G = (V, E) of social
//! ties. This crate provides:
//!
//! * [`DirectedGraph`] — a compressed-sparse-row digraph storing both
//!   adjacency directions (out-neighbors for forward propagation,
//!   in-neighbors for credit assignment / in-degree probability models);
//! * [`GraphBuilder`] — edge-list ingestion with de-duplication;
//! * [`subgraph`] — induced subgraphs with id remapping (used to carve the
//!   *Small* community datasets out of the *Large* ones);
//! * [`traversal`] — BFS reachability (the live-edge possible-world spread);
//! * [`pagerank`] — the PageRank baseline seed selector of Fig 6;
//! * [`components`] — weakly-connected components;
//! * [`cluster`] — label-propagation clustering, our stand-in for the
//!   Graclus partitioning the paper uses to sample communities;
//! * [`stats`] — the degree statistics reported in Table 1.

pub mod builder;
pub mod cluster;
pub mod components;
pub mod csr;
pub mod pagerank;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{DirectedGraph, NodeId};
pub use subgraph::InducedSubgraph;
