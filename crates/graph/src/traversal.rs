//! Breadth-first reachability.
//!
//! Spread in a sampled possible world is exactly the set of nodes reachable
//! from the seed set over live edges (Eq. 2 of the paper), so BFS is the
//! inner loop of every Monte-Carlo estimator.

use crate::csr::{DirectedGraph, NodeId};

/// Reusable BFS scratch space.
///
/// Monte-Carlo estimation performs tens of thousands of traversals; reusing
/// the visited epochs and queue avoids an O(n) clear per simulation.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    visited_epoch: Vec<u32>,
    epoch: u32,
    queue: Vec<NodeId>,
}

impl BfsScratch {
    /// Creates scratch space for graphs with up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        BfsScratch { visited_epoch: vec![0; num_nodes], epoch: 0, queue: Vec::new() }
    }

    /// Starts a new traversal: clears the visited set in O(1).
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped around: hard-reset to stay sound.
            self.visited_epoch.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Marks `u` visited; returns `true` if it was new.
    #[inline]
    fn visit(&mut self, u: NodeId) -> bool {
        let slot = &mut self.visited_epoch[u as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `u` has been visited in the current traversal.
    #[inline]
    pub fn is_visited(&self, u: NodeId) -> bool {
        self.visited_epoch[u as usize] == self.epoch
    }
}

/// Counts nodes reachable from `seeds` following edges for which
/// `live(out_edge_position)` returns `true`.
///
/// The closure receives the *out-aligned edge position*, so a sampled
/// possible world can be represented as a bitmask or probability draw over
/// [`DirectedGraph::out_targets`].
pub fn reachable_count(
    graph: &DirectedGraph,
    seeds: &[NodeId],
    scratch: &mut BfsScratch,
    mut live: impl FnMut(usize) -> bool,
) -> usize {
    scratch.begin();
    let mut count = 0usize;
    for &s in seeds {
        if scratch.visit(s) {
            count += 1;
            scratch.queue.push(s);
        }
    }
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        let range = graph.out_range(u);
        let targets = graph.out_targets();
        for pos in range {
            if live(pos) {
                let v = targets[pos];
                if scratch.visit(v) {
                    count += 1;
                    scratch.queue.push(v);
                }
            }
        }
    }
    count
}

/// Returns the full set of nodes reachable from `seeds` over all edges.
pub fn reachable_set(graph: &DirectedGraph, seeds: &[NodeId]) -> Vec<NodeId> {
    let mut scratch = BfsScratch::new(graph.num_nodes());
    reachable_count(graph, seeds, &mut scratch, |_| true);
    scratch.queue.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn chain() -> DirectedGraph {
        GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build()
    }

    #[test]
    fn full_reachability_on_chain() {
        let g = chain();
        let mut s = BfsScratch::new(g.num_nodes());
        assert_eq!(reachable_count(&g, &[0], &mut s, |_| true), 5);
        assert_eq!(reachable_count(&g, &[3], &mut s, |_| true), 2);
        assert_eq!(reachable_count(&g, &[4], &mut s, |_| true), 1);
    }

    #[test]
    fn dead_edges_block_propagation() {
        let g = chain();
        let mut s = BfsScratch::new(g.num_nodes());
        // Kill the edge out of node 1 (position 1 in out-aligned order).
        let blocked = g.out_edge_position(1, 2).unwrap();
        let n = reachable_count(&g, &[0], &mut s, |pos| pos != blocked);
        assert_eq!(n, 2); // {0, 1}
    }

    #[test]
    fn multiple_seeds_deduplicate() {
        let g = chain();
        let mut s = BfsScratch::new(g.num_nodes());
        assert_eq!(reachable_count(&g, &[0, 1, 0], &mut s, |_| true), 5);
    }

    #[test]
    fn scratch_reuse_is_clean_across_runs() {
        let g = chain();
        let mut s = BfsScratch::new(g.num_nodes());
        assert_eq!(reachable_count(&g, &[0], &mut s, |_| true), 5);
        // Second run from a sink must not see stale visited marks.
        assert_eq!(reachable_count(&g, &[4], &mut s, |_| true), 1);
    }

    #[test]
    fn reachable_set_contents() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build();
        let mut set = reachable_set(&g, &[0]);
        set.sort_unstable();
        assert_eq!(set, vec![0, 1]);
    }

    #[test]
    fn epoch_wraparound_resets() {
        let g = chain();
        let mut s = BfsScratch::new(g.num_nodes());
        s.epoch = u32::MAX - 1;
        assert_eq!(reachable_count(&g, &[0], &mut s, |_| true), 5);
        assert_eq!(reachable_count(&g, &[0], &mut s, |_| true), 5); // wraps
        assert_eq!(reachable_count(&g, &[4], &mut s, |_| true), 1);
    }
}
