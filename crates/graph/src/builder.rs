//! Edge-list ingestion.

use crate::csr::{DirectedGraph, NodeId};

/// Accumulates edges and produces a sanitized [`DirectedGraph`].
///
/// Sanitization drops self-loops and duplicate parallel edges: neither
/// carries meaning for influence propagation (a user does not influence
/// itself, and the social tie either exists or not).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `num_nodes` nodes (ids `0..n`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(num_nodes <= u32::MAX as usize, "node ids are u32; got {num_nodes} nodes");
        GraphBuilder { num_nodes, edges: Vec::new() }
    }

    /// Adds one directed edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.push_edge(u, v);
        self
    }

    /// Adds many directed edges.
    pub fn edges(mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        for (u, v) in it {
            self.push_edge(u, v);
        }
        self
    }

    /// Adds one edge in place (non-consuming variant for loops).
    pub fn push_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((u, v));
    }

    /// Adds the reciprocal pair `u -> v` and `v -> u`.
    pub fn push_undirected(&mut self, u: NodeId, v: NodeId) {
        self.push_edge(u, v);
        self.push_edge(v, u);
    }

    /// Number of edges currently buffered (before sanitization).
    pub fn buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, dropping self-loops and duplicates.
    pub fn build(self) -> DirectedGraph {
        let mut edges = self.edges;
        edges.retain(|&(u, v)| u != v);
        edges.sort_unstable();
        edges.dedup();
        DirectedGraph::from_clean_edges(self.num_nodes, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g =
            GraphBuilder::new(3).edges([(0, 1), (0, 1), (1, 1), (1, 2), (2, 0), (0, 1)]).build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn undirected_inserts_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.push_undirected(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = GraphBuilder::new(2).edge(0, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The CSR structure must agree with a naive adjacency-set oracle,
        /// in both directions, for arbitrary messy edge lists.
        #[test]
        fn csr_matches_naive_oracle(
            raw in proptest::collection::vec((0u32..30, 0u32..30), 0..200)
        ) {
            let n = 30usize;
            let g = GraphBuilder::new(n).edges(raw.iter().copied()).build();

            let mut out_sets = vec![std::collections::BTreeSet::new(); n];
            let mut in_sets = vec![std::collections::BTreeSet::new(); n];
            for &(u, v) in &raw {
                if u != v {
                    out_sets[u as usize].insert(v);
                    in_sets[v as usize].insert(u);
                }
            }
            let expected_edges: usize = out_sets.iter().map(|s| s.len()).sum();
            prop_assert_eq!(g.num_edges(), expected_edges);

            for u in 0..n as u32 {
                let out: Vec<u32> = out_sets[u as usize].iter().copied().collect();
                let inn: Vec<u32> = in_sets[u as usize].iter().copied().collect();
                prop_assert_eq!(g.out_neighbors(u), &out[..]);
                prop_assert_eq!(g.in_neighbors(u), &inn[..]);
            }
        }

        /// Alignment permutation is a bijection linking the two directions.
        #[test]
        fn alignment_is_bijective(
            raw in proptest::collection::vec((0u32..20, 0u32..20), 0..100)
        ) {
            let g = GraphBuilder::new(20).edges(raw).build();
            let mut seen = vec![false; g.num_edges()];
            for pos in 0..g.num_edges() {
                let ip = g.out_pos_to_in_pos(pos);
                prop_assert!(!seen[ip]);
                seen[ip] = true;
            }
        }
    }
}
