//! Weakly-connected components via union–find.
//!
//! The dataset generator and the community sampler need component structure:
//! synthetic "Small" datasets are carved from a single community, mirroring
//! the paper's Graclus-based sampling of one connected cluster.

use crate::csr::{DirectedGraph, NodeId};

/// Union–find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Labels every node with a dense component id; returns `(labels, count)`.
pub fn weakly_connected_components(graph: &DirectedGraph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v) in graph.edges() {
        uf.union(u, v);
    }
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n as NodeId {
        let root = uf.find(u);
        if labels[root as usize] == u32::MAX {
            labels[root as usize] = next;
            next += 1;
        }
        labels[u as usize] = labels[root as usize];
    }
    (labels, next as usize)
}

/// Returns the nodes of the largest weakly-connected component.
pub fn largest_component(graph: &DirectedGraph) -> Vec<NodeId> {
    let (labels, count) = weakly_connected_components(graph);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = sizes.iter().enumerate().max_by_key(|&(_, &s)| s).map(|(i, _)| i as u32).unwrap();
    labels.iter().enumerate().filter(|&(_, &l)| l == best).map(|(i, _)| i as NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn separates_disconnected_pieces() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (3, 4)]).build();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn direction_is_ignored() {
        let g = GraphBuilder::new(3).edges([(2, 0), (1, 0)]).build();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn largest_component_is_found() {
        let g = GraphBuilder::new(7).edges([(0, 1), (1, 2), (2, 3), (4, 5)]).build();
        let mut comp = largest_component(&g);
        comp.sort_unstable();
        assert_eq!(comp, vec![0, 1, 2, 3]);
    }

    #[test]
    fn union_find_sizes() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_size(1), 4);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let (labels, count) = weakly_connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert!(largest_component(&g).is_empty());
    }
}
