//! PageRank by power iteration.
//!
//! Fig 6 of the paper includes a PageRank heuristic that seeds the top-k
//! nodes by score. We use the standard damped formulation with uniform
//! teleport and dangling-mass redistribution.

use crate::csr::DirectedGraph;

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link). Default `0.85`.
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, tolerance: 1e-9, max_iterations: 100 }
    }
}

/// Computes PageRank scores (summing to 1) for every node.
///
/// Returns the score vector and the number of iterations performed.
pub fn pagerank(graph: &DirectedGraph, config: PageRankConfig) -> (Vec<f64>, usize) {
    let n = graph.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    let d = config.damping;

    for iter in 0..config.max_iterations {
        let mut dangling_mass = 0.0;
        for u in graph.nodes() {
            let deg = graph.out_degree(u);
            if deg == 0 {
                dangling_mass += rank[u as usize];
            }
        }
        let base = (1.0 - d) * uniform + d * dangling_mass * uniform;
        next.fill(base);
        for u in graph.nodes() {
            let deg = graph.out_degree(u);
            if deg > 0 {
                let share = d * rank[u as usize] / deg as f64;
                for &v in graph.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let delta: f64 = rank.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            return (rank, iter + 1);
        }
    }
    let iters = config.max_iterations;
    (rank, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn scores_sum_to_one() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 0), (2, 3)]).build();
        let (pr, iters) = pagerank(&g, PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(iters > 0);
    }

    #[test]
    fn hub_outranks_leaves() {
        // Star pointing inward: everyone links to 0.
        let g = GraphBuilder::new(5).edges([(1, 0), (2, 0), (3, 0), (4, 0)]).build();
        let (pr, _) = pagerank(&g, PageRankConfig::default());
        for leaf in 1..5 {
            assert!(pr[0] > pr[leaf], "hub {} vs leaf {}", pr[0], pr[leaf]);
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2), (2, 0)]).build();
        let (pr, _) = pagerank(&g, PageRankConfig::default());
        for &x in &pr {
            assert!((x - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let g = GraphBuilder::new(3).edges([(0, 1), (0, 2)]).build();
        let (pr, _) = pagerank(&g, PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        let (pr, iters) = pagerank(&g, PageRankConfig::default());
        assert!(pr.is_empty());
        assert_eq!(iters, 0);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2), (2, 0)]).build();
        let cfg = PageRankConfig { max_iterations: 1, tolerance: 0.0, ..Default::default() };
        let (_, iters) = pagerank(&g, cfg);
        assert_eq!(iters, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// On arbitrary digraphs (dangling nodes, sinks, disconnected
        /// parts): scores are a probability distribution and every node
        /// keeps at least the teleport mass.
        #[test]
        fn pagerank_is_a_distribution(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..60),
        ) {
            let g = GraphBuilder::new(12).edges(edges).build();
            let (pr, _) = pagerank(&g, PageRankConfig::default());
            let sum: f64 = pr.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
            let teleport_floor = (1.0 - 0.85) / 12.0;
            for (u, &x) in pr.iter().enumerate() {
                prop_assert!(x >= teleport_floor - 1e-12, "node {u}: {x}");
            }
        }
    }
}
