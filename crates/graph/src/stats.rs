//! Degree statistics (the graph half of Table 1).

use crate::csr::DirectedGraph;

/// Summary statistics of a directed graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Average out-degree (= average in-degree = edges / nodes).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Fraction of edges whose reverse edge also exists.
    pub reciprocity: f64,
}

/// Computes [`GraphStats`] for `graph`.
pub fn graph_stats(graph: &DirectedGraph) -> GraphStats {
    let nodes = graph.num_nodes();
    let edges = graph.num_edges();
    let mut max_out = 0;
    let mut max_in = 0;
    let mut reciprocal = 0usize;
    for u in graph.nodes() {
        max_out = max_out.max(graph.out_degree(u));
        max_in = max_in.max(graph.in_degree(u));
        for &v in graph.out_neighbors(u) {
            if graph.has_edge(v, u) {
                reciprocal += 1;
            }
        }
    }
    GraphStats {
        nodes,
        edges,
        avg_degree: if nodes == 0 { 0.0 } else { edges as f64 / nodes as f64 },
        max_out_degree: max_out,
        max_in_degree: max_in,
        reciprocity: if edges == 0 { 0.0 } else { reciprocal as f64 / edges as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn counts_are_correct() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 0), (1, 2), (1, 3)]).build();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.reciprocity - 0.5).abs() < 1e-12); // 0<->1 reciprocal
    }

    #[test]
    fn empty_graph_has_zero_stats() {
        let s = graph_stats(&GraphBuilder::new(0).build());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.reciprocity, 0.0);
    }

    #[test]
    fn full_reciprocity() {
        let mut b = GraphBuilder::new(3);
        b.push_undirected(0, 1);
        b.push_undirected(1, 2);
        let s = graph_stats(&b.build());
        assert!((s.reciprocity - 1.0).abs() < 1e-12);
    }
}
