//! Label-propagation clustering.
//!
//! The paper carves its *Small* datasets out of the full crawls by taking
//! "a unique community, obtained by means of graph clustering performed
//! using Graclus" (§3). Graclus itself is a closed research code; label
//! propagation is a standard lightweight alternative that likewise finds
//! dense communities. We make it deterministic (fixed sweep order, smallest
//! label wins ties) so dataset presets are reproducible.

use crate::csr::{DirectedGraph, NodeId};
use cdim_util::FxHashMap;

/// Configuration for label propagation.
#[derive(Clone, Copy, Debug)]
pub struct LabelPropagationConfig {
    /// Maximum sweeps over all nodes.
    pub max_sweeps: usize,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        LabelPropagationConfig { max_sweeps: 20 }
    }
}

/// Runs label propagation over the undirected view of `graph`.
///
/// Returns dense cluster labels (`0..num_clusters`) and the cluster count.
pub fn label_propagation(
    graph: &DirectedGraph,
    config: LabelPropagationConfig,
) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();

    for _ in 0..config.max_sweeps {
        let mut changed = false;
        for u in 0..n as NodeId {
            counts.clear();
            for &v in graph.out_neighbors(u) {
                *counts.entry(labels[v as usize]).or_insert(0) += 1;
            }
            for &v in graph.in_neighbors(u) {
                *counts.entry(labels[v as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            // Most frequent label; ties go to the smallest label so the
            // result is independent of hash iteration order.
            let mut best = (0usize, u32::MAX);
            for (&label, &c) in counts.iter() {
                if c > best.0 || (c == best.0 && label < best.1) {
                    best = (c, label);
                }
            }
            if best.1 != labels[u as usize] {
                labels[u as usize] = best.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Densify labels.
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    let mut next = 0u32;
    for l in labels.iter_mut() {
        let dense = *remap.entry(*l).or_insert_with(|| {
            let d = next;
            next += 1;
            d
        });
        *l = dense;
    }
    (labels, next as usize)
}

/// Returns the member nodes of every cluster, largest first.
pub fn clusters_by_size(labels: &[u32], num_clusters: usize) -> Vec<Vec<NodeId>> {
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_clusters];
    for (node, &label) in labels.iter().enumerate() {
        members[label as usize].push(node as NodeId);
    }
    members.sort_by_key(|c| std::cmp::Reverse(c.len()));
    members
}

/// Picks the community whose size is closest to `target_size`.
///
/// This mimics the paper's sampling of one Graclus community of the desired
/// scale for the *Small* datasets.
pub fn community_near_size(
    graph: &DirectedGraph,
    target_size: usize,
    config: LabelPropagationConfig,
) -> Vec<NodeId> {
    let (labels, count) = label_propagation(graph, config);
    if count == 0 {
        return Vec::new();
    }
    clusters_by_size(&labels, count)
        .into_iter()
        .min_by_key(|c| c.len().abs_diff(target_size))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Two dense cliques joined by a single bridge edge.
    fn two_cliques() -> DirectedGraph {
        let mut b = GraphBuilder::new(10);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    b.push_edge(u, v);
                }
            }
        }
        for u in 5..10u32 {
            for v in 5..10u32 {
                if u != v {
                    b.push_edge(u, v);
                }
            }
        }
        b.push_edge(0, 5);
        b.build()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let (labels, count) = label_propagation(&g, LabelPropagationConfig::default());
        assert!(count >= 2, "count = {count}");
        // All of clique A share a label; all of clique B share a label.
        for u in 1..5 {
            assert_eq!(labels[0], labels[u]);
        }
        for u in 6..10 {
            assert_eq!(labels[5], labels[u]);
        }
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn labels_are_dense() {
        let g = two_cliques();
        let (labels, count) = label_propagation(&g, LabelPropagationConfig::default());
        let max = *labels.iter().max().unwrap() as usize;
        assert_eq!(max + 1, count);
    }

    #[test]
    fn clusters_sorted_by_size() {
        let labels = vec![0, 0, 0, 1, 1, 2];
        let groups = clusters_by_size(&labels, 3);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 2);
        assert_eq!(groups[2].len(), 1);
    }

    #[test]
    fn community_near_size_picks_reasonably() {
        let g = two_cliques();
        let community = community_near_size(&g, 5, LabelPropagationConfig::default());
        assert_eq!(community.len(), 5);
    }

    #[test]
    fn isolated_nodes_keep_own_cluster() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 0)]).build();
        let (labels, count) = label_propagation(&g, LabelPropagationConfig::default());
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[2], labels[0]);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_cliques();
        let (a, _) = label_propagation(&g, LabelPropagationConfig::default());
        let (b, _) = label_propagation(&g, LabelPropagationConfig::default());
        assert_eq!(a, b);
    }
}
