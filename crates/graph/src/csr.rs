//! Compressed-sparse-row directed graph.
//!
//! Both adjacency directions are materialized: forward propagation (IC/LT
//! simulation) walks out-neighbors, while credit assignment and the
//! weighted-cascade model walk in-neighbors. Node ids are dense `u32`
//! indices; edge positions within each direction's arrays are stable, so
//! overlays (influence probabilities, delays) can be stored as parallel
//! `Vec<f64>`s aligned to [`DirectedGraph::out_targets`] /
//! [`DirectedGraph::in_sources`].

use cdim_util::HeapSize;

/// Dense node identifier (`0..n`).
pub type NodeId = u32;

/// Immutable CSR digraph with both adjacency directions.
///
/// ```
/// use cdim_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
///     .build();
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.out_neighbors(0), &[1, 2]);
/// assert_eq!(g.in_neighbors(3), &[1, 2]);
/// assert!(g.has_edge(1, 3) && !g.has_edge(3, 1));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DirectedGraph {
    out_offsets: Box<[usize]>,
    out_targets: Box<[NodeId]>,
    in_offsets: Box<[usize]>,
    in_sources: Box<[NodeId]>,
    /// For each out-edge position, the position of the same edge in the
    /// in-direction arrays. Lets overlays convert between alignments.
    out_to_in: Box<[u32]>,
}

impl DirectedGraph {
    /// Builds a graph from a deduplicated, self-loop-free edge list.
    ///
    /// Prefer [`crate::GraphBuilder`], which sanitizes arbitrary input.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_nodes` (builder guarantees this).
    pub(crate) fn from_clean_edges(num_nodes: usize, mut edges: Vec<(NodeId, NodeId)>) -> Self {
        let n = num_nodes;
        let m = edges.len();

        // Out direction: sort by (src, dst).
        edges.sort_unstable();
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();

        // In direction: counting sort by dst, then order sources within each
        // bucket. Also record the out-position of each edge to build the
        // alignment permutation.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v) in &edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_to_out = vec![0u32; m];
        for (pos, &(u, v)) in edges.iter().enumerate() {
            let slot = cursor[v as usize];
            in_sources[slot] = u;
            in_to_out[slot] = pos as u32;
            cursor[v as usize] += 1;
        }
        // Sources within a bucket arrive in (src, dst) order, i.e. already
        // sorted by src because the edge list is globally sorted.
        let mut out_to_in = vec![0u32; m];
        for (in_pos, &out_pos) in in_to_out.iter().enumerate() {
            out_to_in[out_pos as usize] = in_pos as u32;
        }

        DirectedGraph {
            out_offsets: out_offsets.into_boxed_slice(),
            out_targets: out_targets.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_sources: in_sources.into_boxed_slice(),
            out_to_in: out_to_in.into_boxed_slice(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Out-neighbors of `u` (sorted ascending).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_range(u)]
    }

    /// In-neighbors of `u` (sorted ascending).
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.in_sources[self.in_range(u)]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_range(u).len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_range(u).len()
    }

    /// Positions of `u`'s out-edges within the out-aligned arrays.
    #[inline]
    pub fn out_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.out_offsets[u as usize]..self.out_offsets[u as usize + 1]
    }

    /// Positions of `u`'s in-edges within the in-aligned arrays.
    #[inline]
    pub fn in_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.in_offsets[u as usize]..self.in_offsets[u as usize + 1]
    }

    /// Raw out-aligned target array (parallel to any out-edge overlay).
    #[inline]
    pub fn out_targets(&self) -> &[NodeId] {
        &self.out_targets
    }

    /// Raw in-aligned source array (parallel to any in-edge overlay).
    #[inline]
    pub fn in_sources(&self) -> &[NodeId] {
        &self.in_sources
    }

    /// Maps an out-edge position to the same edge's in-edge position.
    #[inline]
    pub fn out_pos_to_in_pos(&self, out_pos: usize) -> usize {
        self.out_to_in[out_pos] as usize
    }

    /// Whether the edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_edge_position(u, v).is_some()
    }

    /// Position of edge `(u, v)` in the out-aligned arrays, if present.
    #[inline]
    pub fn out_edge_position(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let range = self.out_range(u);
        let nbrs = &self.out_targets[range.clone()];
        nbrs.binary_search(&v).ok().map(|i| range.start + i)
    }

    /// Position of edge `(u, v)` in the in-aligned arrays, if present.
    #[inline]
    pub fn in_edge_position(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let range = self.in_range(v);
        let srcs = &self.in_sources[range.clone()];
        srcs.binary_search(&u).ok().map(|i| range.start + i)
    }

    /// Iterator over all edges as `(src, dst)` in (src, dst) order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }
}

impl HeapSize for DirectedGraph {
    fn heap_bytes(&self) -> usize {
        self.out_offsets.heap_bytes()
            + self.out_targets.heap_bytes()
            + self.in_offsets.heap_bytes()
            + self.in_sources.heap_bytes()
            + self.out_to_in.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> super::DirectedGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build()
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[] as &[u32]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.out_edge_position(2, 3).is_some());
        assert!(g.in_edge_position(2, 3).is_some());
        assert_eq!(g.out_edge_position(0, 3), None);
    }

    #[test]
    fn out_in_alignment_is_consistent() {
        let g = diamond();
        for u in g.nodes() {
            for (k, &v) in g.out_neighbors(u).iter().enumerate() {
                let out_pos = g.out_range(u).start + k;
                let in_pos = g.out_pos_to_in_pos(out_pos);
                assert_eq!(g.in_sources()[in_pos], u);
                // in_pos must be inside v's in-range.
                let r = g.in_range(v);
                assert!(r.contains(&in_pos));
            }
        }
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let g = GraphBuilder::new(5).edges([(0, 1)]).build();
        for u in 2..5 {
            assert_eq!(g.out_degree(u), 0);
            assert_eq!(g.in_degree(u), 0);
        }
    }
}
