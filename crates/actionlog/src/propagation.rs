//! Per-action propagation graphs G(a).
//!
//! "We say that a propagates from node u to v iff u and v are socially
//! linked, and u performs a before v" (§4). The resulting graph is a DAG
//! because edges always point forward in time; ties in time produce *no*
//! edge (the strict inequality of the paper).

use crate::log::{ActionId, ActionLog, Timestamp, UserId};
use cdim_graph::DirectedGraph;
use cdim_util::FxHashMap;

/// The propagation DAG of one action.
///
/// Performers are stored in chronological order; `parents_of(i)` returns
/// *local* indices (all strictly smaller than `i`), so any forward pass over
/// `0..len` is automatically a topological traversal.
#[derive(Clone, Debug)]
pub struct PropagationDag {
    /// Dense action id this DAG belongs to.
    pub action: ActionId,
    users: Vec<UserId>,
    times: Vec<Timestamp>,
    parent_offsets: Vec<usize>,
    parents: Vec<u32>,
}

impl PropagationDag {
    /// Builds G(a) for action `a` from the log and the social graph.
    pub fn build(log: &ActionLog, graph: &DirectedGraph, a: ActionId) -> Self {
        let users = log.users_of(a);
        let times = log.times_of(a);
        // user -> (local index) for performers seen so far.
        let mut seen: FxHashMap<UserId, u32> = FxHashMap::default();
        seen.reserve(users.len());

        let mut parent_offsets = Vec::with_capacity(users.len() + 1);
        parent_offsets.push(0usize);
        let mut parents: Vec<u32> = Vec::new();

        for (i, (&u, &t)) in users.iter().zip(times.iter()).enumerate() {
            // Social in-neighbors of u who performed a strictly earlier.
            for &v in graph.in_neighbors(u) {
                if let Some(&j) = seen.get(&v) {
                    if times[j as usize] < t {
                        parents.push(j);
                    }
                }
            }
            parent_offsets.push(parents.len());
            seen.insert(u, i as u32);
        }

        PropagationDag {
            action: a,
            users: users.to_vec(),
            times: times.to_vec(),
            parent_offsets,
            parents,
        }
    }

    /// Number of performers `|V(a)|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether nobody performed the action.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The performers in chronological order.
    #[inline]
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Timestamps parallel to [`Self::users`].
    #[inline]
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// User at local index `i`.
    #[inline]
    pub fn user(&self, i: usize) -> UserId {
        self.users[i]
    }

    /// Time at local index `i`.
    #[inline]
    pub fn time(&self, i: usize) -> Timestamp {
        self.times[i]
    }

    /// Local indices of `i`'s potential influencers `N_in(u, a)`.
    #[inline]
    pub fn parents_of(&self, i: usize) -> &[u32] {
        &self.parents[self.parent_offsets[i]..self.parent_offsets[i + 1]]
    }

    /// `d_in(u, a)`: number of potential influencers of the performer at
    /// local index `i`.
    #[inline]
    pub fn in_degree(&self, i: usize) -> usize {
        self.parent_offsets[i + 1] - self.parent_offsets[i]
    }

    /// Local indices of the action's *initiators* (performers with no
    /// potential influencer).
    pub fn initiator_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.in_degree(i) == 0).collect()
    }

    /// User ids of the action's initiators.
    pub fn initiators(&self) -> Vec<UserId> {
        self.initiator_indices().into_iter().map(|i| self.users[i]).collect()
    }

    /// Total number of propagation edges `|E(a)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.parents.len()
    }
}

/// Builds the propagation DAG of every action in the log.
pub fn all_dags(log: &ActionLog, graph: &DirectedGraph) -> Vec<PropagationDag> {
    log.actions().map(|a| PropagationDag::build(log, graph, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ActionLogBuilder;
    use cdim_graph::GraphBuilder;

    /// Figure-1-like setup: v -> t, v -> u, t -> u, w -> u, z -> u, t -> z.
    /// Users: v=0, t=1, w=2, z=3, u=4.
    fn figure1() -> (DirectedGraph, ActionLog) {
        let graph =
            GraphBuilder::new(5).edges([(0, 1), (0, 4), (1, 4), (2, 4), (3, 4), (1, 3)]).build();
        let mut b = ActionLogBuilder::new(5);
        // Chronology: v, w, t, z, u.
        b.push(0, 0, 1.0);
        b.push(2, 0, 2.0);
        b.push(1, 0, 3.0);
        b.push(3, 0, 4.0);
        b.push(4, 0, 5.0);
        (graph, b.build())
    }

    #[test]
    fn parents_follow_social_links_and_time() {
        let (graph, log) = figure1();
        let dag = PropagationDag::build(&log, &graph, 0);
        assert_eq!(dag.len(), 5);
        // Local order: v(0), w(1), t(2), z(3), u(4).
        assert_eq!(dag.user(0), 0);
        assert_eq!(dag.parents_of(0), &[] as &[u32]);
        assert_eq!(dag.parents_of(1), &[] as &[u32]); // w has no in-edge from v
        assert_eq!(dag.parents_of(2), &[0]); // t <- v
        assert_eq!(dag.parents_of(3), &[2]); // z <- t

        // u's potential influencers: v, t, w, z (all four).
        let mut parents: Vec<u32> = dag.parents_of(4).to_vec();
        parents.sort_unstable();
        assert_eq!(parents, vec![0, 1, 2, 3]);
        assert_eq!(dag.in_degree(4), 4);
    }

    #[test]
    fn initiators_have_no_parents() {
        let (graph, log) = figure1();
        let dag = PropagationDag::build(&log, &graph, 0);
        let mut inits = dag.initiators();
        inits.sort_unstable();
        assert_eq!(inits, vec![0, 2]); // v and w
    }

    #[test]
    fn simultaneous_actions_do_not_propagate() {
        let graph = GraphBuilder::new(2).edges([(0, 1), (1, 0)]).build();
        let mut b = ActionLogBuilder::new(2);
        b.push(0, 0, 1.0);
        b.push(1, 0, 1.0);
        let log = b.build();
        let dag = PropagationDag::build(&log, &graph, 0);
        assert_eq!(dag.num_edges(), 0);
        assert_eq!(dag.initiators().len(), 2);
    }

    #[test]
    fn non_friends_do_not_propagate() {
        let graph = GraphBuilder::new(3).edges([(0, 1)]).build();
        let mut b = ActionLogBuilder::new(3);
        b.push(2, 0, 1.0); // stranger first
        b.push(1, 0, 2.0);
        let log = b.build();
        let dag = PropagationDag::build(&log, &graph, 0);
        assert_eq!(dag.num_edges(), 0);
    }

    #[test]
    fn edges_always_point_forward_in_time() {
        let (graph, log) = figure1();
        let dag = PropagationDag::build(&log, &graph, 0);
        for i in 0..dag.len() {
            for &p in dag.parents_of(i) {
                assert!((p as usize) < i);
                assert!(dag.time(p as usize) < dag.time(i));
            }
        }
    }

    #[test]
    fn all_dags_covers_every_action() {
        let (graph, log) = figure1();
        let dags = all_dags(&log, &graph);
        assert_eq!(dags.len(), log.num_actions());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::log::ActionLogBuilder;
    use cdim_graph::GraphBuilder;
    use proptest::prelude::*;

    proptest! {
        /// For random graphs and logs: an edge (v, u) exists in G(a) iff
        /// (v, u) ∈ E and t(v, a) < t(u, a) — the paper's definition —
        /// and the result is acyclic by local-index ordering.
        #[test]
        fn dag_matches_definition(
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..60),
            events in proptest::collection::vec((0u32..10, 0u64..20), 1..40),
        ) {
            let graph = GraphBuilder::new(10).edges(edges).build();
            let mut b = ActionLogBuilder::new(10);
            for &(u, t) in &events {
                b.push(u, 0, t as f64);
            }
            let log = b.build();
            let dag = PropagationDag::build(&log, &graph, 0);

            // Oracle edge set.
            let mut expected = std::collections::BTreeSet::new();
            for i in 0..dag.len() {
                for j in 0..dag.len() {
                    let (v, u) = (dag.user(j), dag.user(i));
                    if graph.has_edge(v, u) && dag.time(j) < dag.time(i) {
                        expected.insert((j as u32, i));
                    }
                }
            }
            let mut actual = std::collections::BTreeSet::new();
            for i in 0..dag.len() {
                for &p in dag.parents_of(i) {
                    prop_assert!((p as usize) < i, "acyclicity violated");
                    actual.insert((p, i));
                }
            }
            prop_assert_eq!(actual, expected);
        }
    }
}
