//! Append-only action-log deltas — the unit of incremental retraining.
//!
//! A production deployment never retrains from a frozen log: new
//! propagation traces keep arriving. Because the credit assignment of
//! Algorithm 2 never crosses an action boundary, a batch of *new* actions
//! can be scanned on its own and appended to an existing credit store
//! without touching anything already learned. [`ActionLogDelta`] is that
//! batch: a self-contained [`ActionLog`] of the new actions plus the
//! number of actions the consumer has already scanned, which pins where
//! the new dense ids start.
//!
//! The split/apply pair round-trips exactly:
//!
//! ```
//! use cdim_actionlog::ActionLogBuilder;
//!
//! let mut b = ActionLogBuilder::new(3);
//! b.push(0, 10, 0.0);
//! b.push(1, 10, 1.0);
//! b.push(2, 20, 0.5);
//! let log = b.build();
//!
//! let (prefix, delta) = log.split_at_action(1);
//! assert_eq!(prefix.num_actions(), 1);
//! assert_eq!(delta.num_new_actions(), 1);
//! assert_eq!(delta.base_actions(), 1);
//! // Re-applying the delta reconstructs the original log exactly.
//! assert_eq!(delta.apply_to(&prefix).unwrap(), log);
//! ```

use crate::log::{ActionId, ActionLog, ActionLogBuilder};

/// Why a delta could not be combined with a base log or model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta was cut for a different number of already-scanned actions
    /// than the base provides — applying it would assign wrong dense ids.
    BaseMismatch {
        /// Actions the delta expects the base to hold.
        expected: usize,
        /// Actions the base actually holds.
        got: usize,
    },
    /// Base and delta disagree on the user universe.
    UserUniverseMismatch {
        /// Users in the base.
        expected: usize,
        /// Users in the delta.
        got: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, got } => {
                write!(f, "delta expects a base of {expected} actions, found {got}")
            }
            DeltaError::UserUniverseMismatch { expected, got } => {
                write!(f, "delta user universe mismatch ({expected} vs {got} users)")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An append-only batch of new actions on top of an already-scanned log.
///
/// The batch is an ordinary [`ActionLog`] whose dense ids run `0..d`
/// locally; globally the actions take ids `base_actions..base_actions + d`,
/// appended after everything the consumer has scanned. Deltas carry whole
/// new actions only — they never add tuples to an action that was already
/// scanned (credit into a user is final at its activation, so extending an
/// old trace would invalidate stored credits; ship such data as a fresh
/// trace or do a full retrain).
#[derive(Clone, Debug, PartialEq)]
pub struct ActionLogDelta {
    base_actions: usize,
    additions: ActionLog,
}

impl ActionLogDelta {
    /// Wraps `additions` as the batch appended after `base_actions`
    /// already-scanned actions.
    pub fn new(base_actions: usize, additions: ActionLog) -> Self {
        ActionLogDelta { base_actions, additions }
    }

    /// Dense actions the consumer must already hold before this delta.
    #[inline]
    pub fn base_actions(&self) -> usize {
        self.base_actions
    }

    /// Number of new actions in the batch.
    #[inline]
    pub fn num_new_actions(&self) -> usize {
        self.additions.num_actions()
    }

    /// Number of new `(user, action, time)` tuples in the batch.
    #[inline]
    pub fn num_new_tuples(&self) -> usize {
        self.additions.num_tuples()
    }

    /// Users in the delta's id space (shared with the base log and graph).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.additions.num_users()
    }

    /// Whether the batch holds no new actions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.additions.num_actions() == 0
    }

    /// The new actions as a standalone log (dense ids `0..d`).
    #[inline]
    pub fn additions(&self) -> &ActionLog {
        &self.additions
    }

    /// Global dense id of local delta action `local`.
    #[inline]
    pub fn global_id(&self, local: ActionId) -> ActionId {
        (self.base_actions + local as usize) as ActionId
    }

    /// Dense action count after the delta is applied.
    #[inline]
    pub fn end_actions(&self) -> usize {
        self.base_actions + self.additions.num_actions()
    }

    /// Concatenates `prefix` and the delta into one combined log — the log
    /// a from-scratch retrain would scan. Action order is exactly prefix
    /// actions followed by delta actions, so the incremental-equivalence
    /// contract ("extend = full scan of `apply_to(prefix)`") is
    /// well-defined. External ids are carried through for provenance.
    pub fn apply_to(&self, prefix: &ActionLog) -> Result<ActionLog, DeltaError> {
        if prefix.num_actions() != self.base_actions {
            return Err(DeltaError::BaseMismatch {
                expected: self.base_actions,
                got: prefix.num_actions(),
            });
        }
        if prefix.num_users() != self.additions.num_users() {
            return Err(DeltaError::UserUniverseMismatch {
                expected: prefix.num_users(),
                got: self.additions.num_users(),
            });
        }
        let mut builder = ActionLogBuilder::new(prefix.num_users());
        for a in prefix.actions() {
            let users = prefix.users_of(a);
            let times = prefix.times_of(a);
            for (&u, &t) in users.iter().zip(times) {
                builder.push_with_external(u, a, prefix.external_id(a), t);
            }
        }
        for a in self.additions.actions() {
            let users = self.additions.users_of(a);
            let times = self.additions.times_of(a);
            for (&u, &t) in users.iter().zip(times) {
                builder.push_with_external(u, self.global_id(a), self.additions.external_id(a), t);
            }
        }
        Ok(builder.build())
    }
}

impl ActionLog {
    /// Extracts dense actions `start..end` as an [`ActionLogDelta`] based
    /// on the first `start` actions. Tuples are carried over verbatim
    /// (same users, times, external ids, per-action order), so scanning
    /// the delta locally is identical to scanning those actions in place.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > num_actions()`.
    pub fn delta_range(&self, start: usize, end: usize) -> ActionLogDelta {
        assert!(
            start <= end && end <= self.num_actions(),
            "delta range {start}..{end} out of bounds for {} actions",
            self.num_actions()
        );
        let keep: Vec<ActionId> = (start..end).map(|a| a as ActionId).collect();
        ActionLogDelta::new(start, self.project_actions(&keep))
    }

    /// Splits the log into the first `split` actions and a delta holding
    /// the rest: `(prefix, delta)` with `delta.apply_to(&prefix)`
    /// reconstructing `self` exactly.
    ///
    /// # Panics
    /// Panics if `split > num_actions()`.
    pub fn split_at_action(&self, split: usize) -> (ActionLog, ActionLogDelta) {
        let keep: Vec<ActionId> = (0..split).map(|a| a as ActionId).collect();
        (self.project_actions(&keep), self.delta_range(split, self.num_actions()))
    }

    /// Cuts the first `expire` actions off the front: `(expired, rest)`.
    ///
    /// The mirror of [`split_at_action`](Self::split_at_action) for the
    /// sliding-window path. The expired prefix comes back as an
    /// [`ActionLogDelta`] **based at 0** — exactly the shape
    /// `CreditStore::retract_delta` consumes to unwind those actions —
    /// and the remainder is re-densified so its actions run `0..n-expire`
    /// (external ids and per-action tuples carried through verbatim).
    /// Scanning the remainder from scratch is therefore the window-only
    /// rescan the retraction contract is proved against.
    ///
    /// # Panics
    /// Panics if `expire > num_actions()`.
    pub fn split_off_prefix(&self, expire: usize) -> (ActionLogDelta, ActionLog) {
        let expired = self.delta_range(0, expire);
        let keep: Vec<ActionId> = (expire..self.num_actions()).map(|a| a as ActionId).collect();
        (expired, self.project_actions(&keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> ActionLog {
        let mut b = ActionLogBuilder::new(4);
        b.push(0, 10, 1.0);
        b.push(1, 10, 2.0);
        b.push(2, 20, 0.5);
        b.push(0, 20, 1.5);
        b.push(3, 30, 0.0);
        b.build()
    }

    #[test]
    fn split_then_apply_round_trips() {
        let log = sample_log();
        for split in 0..=log.num_actions() {
            let (prefix, delta) = log.split_at_action(split);
            assert_eq!(prefix.num_actions(), split);
            assert_eq!(delta.base_actions(), split);
            assert_eq!(delta.num_new_actions(), log.num_actions() - split);
            assert_eq!(delta.end_actions(), log.num_actions());
            assert_eq!(delta.apply_to(&prefix).unwrap(), log, "split = {split}");
        }
    }

    #[test]
    fn delta_actions_match_source_slices() {
        let log = sample_log();
        let delta = log.delta_range(1, 3);
        assert_eq!(delta.num_new_actions(), 2);
        assert_eq!(delta.num_new_tuples(), 3);
        for local in 0..2u32 {
            let global = delta.global_id(local);
            assert_eq!(delta.additions().users_of(local), log.users_of(global));
            assert_eq!(delta.additions().times_of(local), log.times_of(global));
            assert_eq!(delta.additions().external_id(local), log.external_id(global));
        }
    }

    #[test]
    fn empty_and_full_deltas() {
        let log = sample_log();
        let (prefix, empty) = log.split_at_action(log.num_actions());
        assert!(empty.is_empty());
        assert_eq!(empty.apply_to(&prefix).unwrap(), log);

        let (nothing, everything) = log.split_at_action(0);
        assert_eq!(nothing.num_actions(), 0);
        assert_eq!(everything.num_new_actions(), log.num_actions());
        assert_eq!(everything.apply_to(&nothing).unwrap(), log);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let log = sample_log();
        let (_, delta) = log.split_at_action(2);
        let (short_prefix, _) = log.split_at_action(1);
        assert_eq!(
            delta.apply_to(&short_prefix),
            Err(DeltaError::BaseMismatch { expected: 2, got: 1 })
        );
    }

    #[test]
    fn apply_rejects_wrong_universe() {
        let log = sample_log();
        let (prefix, _) = log.split_at_action(2);
        let foreign = ActionLogBuilder::new(9).build();
        let delta = ActionLogDelta::new(2, foreign);
        assert_eq!(
            delta.apply_to(&prefix),
            Err(DeltaError::UserUniverseMismatch { expected: 4, got: 9 })
        );
    }

    #[test]
    fn errors_are_descriptive() {
        let base = DeltaError::BaseMismatch { expected: 5, got: 3 };
        assert!(base.to_string().contains("5 actions"));
        let users = DeltaError::UserUniverseMismatch { expected: 4, got: 9 };
        assert!(users.to_string().contains("user universe"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn delta_range_checks_bounds() {
        sample_log().delta_range(1, 99);
    }

    #[test]
    fn split_off_prefix_renumbers_the_remainder() {
        let log = sample_log();
        for expire in 0..=log.num_actions() {
            let (expired, rest) = log.split_off_prefix(expire);
            assert_eq!(expired.base_actions(), 0, "expire = {expire}");
            assert_eq!(expired.num_new_actions(), expire);
            assert_eq!(rest.num_actions(), log.num_actions() - expire);
            // The expired prefix matches the front of the log verbatim.
            for a in 0..expire as ActionId {
                assert_eq!(expired.additions().users_of(a), log.users_of(a));
                assert_eq!(expired.additions().times_of(a), log.times_of(a));
                assert_eq!(expired.additions().external_id(a), log.external_id(a));
            }
            // The remainder is the back of the log, re-densified to 0..
            for a in 0..rest.num_actions() as ActionId {
                let src = a + expire as ActionId;
                assert_eq!(rest.users_of(a), log.users_of(src), "expire = {expire}");
                assert_eq!(rest.times_of(a), log.times_of(src));
                assert_eq!(rest.external_id(a), log.external_id(src));
            }
        }
    }

    #[test]
    fn split_off_prefix_edges() {
        let log = sample_log();
        let (none, all) = log.split_off_prefix(0);
        assert!(none.is_empty());
        assert_eq!(all, log);
        let (everything, empty) = log.split_off_prefix(log.num_actions());
        assert_eq!(everything.num_new_actions(), log.num_actions());
        assert_eq!(empty.num_actions(), 0);
        assert_eq!(empty.num_users(), log.num_users());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_off_prefix_checks_bounds() {
        sample_log().split_off_prefix(99);
    }
}
