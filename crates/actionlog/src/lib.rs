#![warn(missing_docs)]
//! The action log `L(User, Action, Time)` — the paper's central data model.
//!
//! A tuple `(u, a, t)` records that user `u` performed action `a` at time
//! `t` (§4 "Data Model"). The log, combined with the social graph, induces
//! one *propagation graph* `G(a)` per action: a DAG whose edge `(v, u)`
//! means `v` and `u` are socially linked and `v` performed `a` strictly
//! before `u`.
//!
//! Modules:
//! * [`log`] — the columnar, action-partitioned [`ActionLog`] store;
//! * [`delta`] — append-only [`ActionLogDelta`] batches for incremental
//!   retraining;
//! * [`propagation`] — per-action propagation DAGs and initiators;
//! * [`split`] — the paper's 80/20 size-stratified train/test split;
//! * [`stats`] — the action-log half of Table 1;
//! * [`storage`] — buffered TSV persistence.

pub mod delta;
pub mod log;
pub mod propagation;
pub mod split;
pub mod stats;
pub mod storage;

pub use delta::{ActionLogDelta, DeltaError};
pub use log::{
    ActionId, ActionLog, ActionLogBuilder, ActionTuple, LogBuildError, Timestamp, UserId,
};
pub use propagation::PropagationDag;
pub use split::{train_test_split, TrainTestSplit};
pub use storage::{RawTuple, StorageError, TupleDecoder};
