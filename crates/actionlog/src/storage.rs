//! Buffered TSV persistence for action logs and edge lists.
//!
//! Format: one record per line, `user \t action \t time` (and `src \t dst`
//! for graphs). Plain text keeps the datasets inspectable with shell tools
//! and avoids a serialization dependency; readers and writers are buffered
//! per the workspace I/O guidance.

use crate::log::{ActionLog, ActionLogBuilder};
use cdim_graph::{DirectedGraph, GraphBuilder, NodeId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised by the TSV codecs.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, StorageError> {
    let raw = field
        .ok_or_else(|| StorageError::Parse { line, message: format!("missing {what} field") })?;
    raw.parse()
        .map_err(|_| StorageError::Parse { line, message: format!("invalid {what}: {raw:?}") })
}

/// One raw `(user, action, time)` line as parsed from the TSV grammar —
/// syntactically valid, but not yet admitted into any log (user-universe
/// and finiteness validation belong to [`ActionLogBuilder`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawTuple {
    /// Acting user.
    pub user: u32,
    /// External action id.
    pub action: u32,
    /// Event time, exactly as written (may be non-finite — the builder
    /// rejects it with a typed error).
    pub time: f64,
}

/// Incremental line→tuple decoder: the action-log TSV grammar in exactly
/// one place.
///
/// Both consumers drive the same decoder: [`read_action_log`] feeds it
/// every line of a complete file, and the live-ingest follower feeds it
/// complete `\n`-terminated lines as they appear at the end of a growing
/// file. The decoder tracks the 1-based line number itself, so
/// [`StorageError::Parse`] diagnostics stay line-addressed no matter how
/// the lines arrive — and a restarted follower can resume the numbering
/// from a checkpoint via [`TupleDecoder::resume`].
#[derive(Clone, Debug, Default)]
pub struct TupleDecoder {
    line_no: usize,
}

impl TupleDecoder {
    /// A decoder starting at line 1.
    pub fn new() -> Self {
        TupleDecoder { line_no: 0 }
    }

    /// A decoder that has already consumed `lines` lines (checkpoint
    /// resume: diagnostics keep pointing at true file lines).
    pub fn resume(lines: usize) -> Self {
        TupleDecoder { line_no: lines }
    }

    /// Lines consumed so far (= the line number of the last decoded line).
    pub fn lines_consumed(&self) -> usize {
        self.line_no
    }

    /// Decodes one complete line (with or without its trailing newline).
    /// Returns `Ok(None)` for blank lines and `#` comments.
    pub fn decode_line(&mut self, line: &str) -> Result<Option<RawTuple>, StorageError> {
        self.line_no += 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut fields = line.split('\t');
        let user: u32 = parse_field(fields.next(), self.line_no, "user")?;
        let action: u32 = parse_field(fields.next(), self.line_no, "action")?;
        let time: f64 = parse_field(fields.next(), self.line_no, "time")?;
        Ok(Some(RawTuple { user, action, time }))
    }
}

/// Writes `log` as TSV (`user \t external_action_id \t time`).
pub fn write_action_log<W: Write>(log: &ActionLog, out: W) -> Result<(), StorageError> {
    let mut w = BufWriter::new(out);
    for t in log.tuples() {
        writeln!(w, "{}\t{}\t{}", t.user, log.external_id(t.action), t.time)?;
    }
    w.flush()?;
    Ok(())
}

/// Drives the shared [`TupleDecoder`] over a whole stream into `builder`.
fn read_into_builder<R: io::Read>(
    input: R,
    mut builder: ActionLogBuilder,
) -> Result<ActionLog, StorageError> {
    let mut reader = BufReader::new(input);
    let mut decoder = TupleDecoder::new();
    let mut line_buf = String::new();
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        let Some(raw) = decoder.decode_line(&line_buf)? else {
            continue;
        };
        // `"NaN"`/`"inf"` parse fine via `f64::from_str`; the builder's
        // typed validation is what keeps them out of the log (they would
        // silently corrupt the chronological-order invariant the scan
        // relies on). Same for out-of-range users.
        builder.try_push(raw.user, raw.action, raw.time).map_err(|e| StorageError::Parse {
            line: decoder.lines_consumed(),
            message: e.to_string(),
        })?;
    }
    Ok(builder.build())
}

/// Reads a TSV action log. `num_users` fixes the user-id universe.
pub fn read_action_log<R: io::Read>(input: R, num_users: usize) -> Result<ActionLog, StorageError> {
    read_into_builder(input, ActionLogBuilder::new(num_users))
}

/// Reads a TSV action log without a pre-declared user universe: the
/// universe auto-grows to `max user id + 1` (see
/// [`ActionLogBuilder::growing`]), so callers need not pre-scan the file
/// just to size it. Widen the result with [`ActionLog::widen_users`] when
/// an external artifact (the social graph) pins a larger universe.
pub fn read_action_log_growing<R: io::Read>(input: R) -> Result<ActionLog, StorageError> {
    read_into_builder(input, ActionLogBuilder::growing())
}

/// Writes a graph edge list as TSV (`src \t dst`), preceded by a header
/// comment recording the node count.
pub fn write_graph<W: Write>(graph: &DirectedGraph, out: W) -> Result<(), StorageError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# nodes\t{}", graph.num_nodes())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a TSV edge list written by [`write_graph`].
pub fn read_graph<R: io::Read>(input: R) -> Result<DirectedGraph, StorageError> {
    let mut reader = BufReader::new(input);
    let mut line_buf = String::new();
    let mut line_no = 0usize;
    let mut num_nodes: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# nodes\t") {
            num_nodes = Some(parse_field(Some(rest), line_no, "node count")?);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let u: u32 = parse_field(fields.next(), line_no, "src")?;
        let v: u32 = parse_field(fields.next(), line_no, "dst")?;
        edges.push((u, v));
    }
    let n = num_nodes
        .unwrap_or_else(|| edges.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0));
    Ok(GraphBuilder::new(n).edges(edges).build())
}

/// Convenience: writes `log` to a file path.
pub fn save_action_log(log: &ActionLog, path: &Path) -> Result<(), StorageError> {
    write_action_log(log, File::create(path)?)
}

/// Convenience: reads a log from a file path.
pub fn load_action_log(path: &Path, num_users: usize) -> Result<ActionLog, StorageError> {
    read_action_log(File::open(path)?, num_users)
}

/// Convenience: writes `graph` to a file path.
pub fn save_graph(graph: &DirectedGraph, path: &Path) -> Result<(), StorageError> {
    write_graph(graph, File::create(path)?)
}

/// Convenience: reads a graph from a file path.
pub fn load_graph(path: &Path) -> Result<DirectedGraph, StorageError> {
    read_graph(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ActionLogBuilder;

    fn sample_log() -> ActionLog {
        let mut b = ActionLogBuilder::new(4);
        b.push(0, 7, 1.5);
        b.push(1, 7, 2.0);
        b.push(2, 9, 0.5);
        b.build()
    }

    #[test]
    fn log_round_trip() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_action_log(&log, &mut buf).unwrap();
        let restored = read_action_log(&buf[..], 4).unwrap();
        assert_eq!(restored, log);
    }

    #[test]
    fn graph_round_trip() {
        let g = GraphBuilder::new(5).edges([(0, 1), (3, 2), (4, 0)]).build();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let restored = read_graph(&buf[..]).unwrap();
        assert_eq!(restored, g);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let data = "# a comment\n\n0\t3\t1.0\n";
        let log = read_action_log(data.as_bytes(), 2).unwrap();
        assert_eq!(log.num_tuples(), 1);
    }

    #[test]
    fn reports_malformed_line_numbers() {
        let data = "0\t1\t1.0\nbogus line\n";
        let err = read_action_log(data.as_bytes(), 2).unwrap_err();
        match err {
            StorageError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_out_of_range_user() {
        let data = "9\t1\t1.0\n";
        assert!(read_action_log(data.as_bytes(), 2).is_err());
    }

    #[test]
    fn rejects_non_finite_time() {
        // `f64::from_str` happily parses every one of these spellings, so
        // the reader must reject them itself — with the line number and a
        // message naming the problem.
        for (raw, line) in [("0\t1\tinf\n", 1), ("0\t1\t1.0\n0\t2\tNaN\n", 2)] {
            let err = read_action_log(raw.as_bytes(), 2).unwrap_err();
            match err {
                StorageError::Parse { line: l, message } => {
                    assert_eq!(l, line, "{raw:?}");
                    assert!(message.contains("non-finite"), "{message}");
                }
                other => panic!("expected parse error, got {other}"),
            }
        }
        assert!(read_action_log("0\t1\t-inf\n".as_bytes(), 2).is_err());
    }

    #[test]
    fn growing_reader_matches_fixed_reader() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_action_log(&log, &mut buf).unwrap();
        let grown = read_action_log_growing(&buf[..]).unwrap();
        // sample_log's universe is 4 but only ids 0..=2 appear; the
        // growing reader discovers 3 and widening restores equality.
        assert_eq!(grown.num_users(), 3);
        assert_eq!(grown.widen_users(4), log);
    }

    #[test]
    fn decoder_is_incremental_and_line_addressed() {
        let mut d = TupleDecoder::new();
        assert_eq!(d.decode_line("# header\n").unwrap(), None);
        assert_eq!(
            d.decode_line("3\t9\t1.5").unwrap(),
            Some(RawTuple { user: 3, action: 9, time: 1.5 })
        );
        assert_eq!(d.decode_line("").unwrap(), None);
        let err = d.decode_line("3\tnope\t1.0\n").unwrap_err();
        match err {
            StorageError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("action"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        assert_eq!(d.lines_consumed(), 4);
        // Resuming from a checkpointed line count keeps diagnostics true.
        let mut resumed = TupleDecoder::resume(10);
        let err = resumed.decode_line("bogus").unwrap_err();
        assert!(matches!(err, StorageError::Parse { line: 11, .. }));
    }

    #[test]
    fn graph_without_header_infers_node_count() {
        let data = "0\t4\n2\t1\n";
        let g = read_graph(data.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cdim_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("log.tsv");
        let graph_path = dir.join("graph.tsv");

        let log = sample_log();
        save_action_log(&log, &log_path).unwrap();
        assert_eq!(load_action_log(&log_path, 4).unwrap(), log);

        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        save_graph(&g, &graph_path).unwrap();
        assert_eq!(load_graph(&graph_path).unwrap(), g);

        std::fs::remove_dir_all(&dir).ok();
    }
}
