//! Action-log statistics — the propagation half of Table 1.

use crate::log::ActionLog;

/// Summary statistics of an action log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogStats {
    /// Number of propagation traces (#propagations in Table 1).
    pub propagations: usize,
    /// Number of tuples (#tuples in Table 1).
    pub tuples: usize,
    /// Mean propagation size.
    pub avg_size: f64,
    /// Largest propagation size.
    pub max_size: usize,
    /// Number of distinct users appearing in the log.
    pub active_users: usize,
    /// Mean number of actions per active user.
    pub avg_actions_per_active_user: f64,
}

/// Computes [`LogStats`] for `log`.
pub fn log_stats(log: &ActionLog) -> LogStats {
    let propagations = log.num_actions();
    let tuples = log.num_tuples();
    let max_size = log.actions().map(|a| log.action_size(a)).max().unwrap_or(0);
    let active_users = log.actions_per_user().iter().filter(|&&c| c > 0).count();
    LogStats {
        propagations,
        tuples,
        avg_size: if propagations == 0 { 0.0 } else { tuples as f64 / propagations as f64 },
        max_size,
        active_users,
        avg_actions_per_active_user: if active_users == 0 {
            0.0
        } else {
            tuples as f64 / active_users as f64
        },
    }
}

/// Histogram of propagation sizes with fixed-width bins (used for the
/// size-stratified RMSE plots — bins "at multiples of 100" etc., §3).
pub fn size_histogram(log: &ActionLog, bin_width: usize) -> Vec<(usize, usize)> {
    assert!(bin_width > 0);
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for a in log.actions() {
        let bin = (log.action_size(a) / bin_width) * bin_width;
        *counts.entry(bin).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ActionLogBuilder;

    fn log() -> ActionLog {
        let mut b = ActionLogBuilder::new(6);
        for (u, a, t) in
            [(0, 0, 1.0), (1, 0, 2.0), (2, 0, 3.0), (3, 1, 1.0), (0, 1, 2.0), (5, 2, 1.0)]
        {
            b.push(u, a, t);
        }
        b.build()
    }

    #[test]
    fn stats_fields() {
        let s = log_stats(&log());
        assert_eq!(s.propagations, 3);
        assert_eq!(s.tuples, 6);
        assert!((s.avg_size - 2.0).abs() < 1e-12);
        assert_eq!(s.max_size, 3);
        assert_eq!(s.active_users, 5); // user 4 never acts
        assert!((s.avg_actions_per_active_user - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_log_stats() {
        let s = log_stats(&ActionLogBuilder::new(3).build());
        assert_eq!(s.propagations, 0);
        assert_eq!(s.avg_size, 0.0);
        assert_eq!(s.max_size, 0);
    }

    #[test]
    fn histogram_bins() {
        let h = size_histogram(&log(), 2);
        // Sizes 3, 2, 1 -> bins 2, 2, 0.
        assert_eq!(h, vec![(0, 1), (2, 2)]);
    }
}
